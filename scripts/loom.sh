#!/usr/bin/env bash
# Runs the model-checking layer locally, mirroring the `loom` CI job:
#   1. the snn-loom self-test suite (std build — the checker checking
#      itself on known-racy and known-correct fixtures), then
#   2. the gpu-device models (crates/gpu-device/src/loom_tests.rs) with
#      RUSTFLAGS="--cfg loom", which swaps crate::sync over to the
#      snn-loom shims and explores worker-pool/fused-launch interleavings
#      exhaustively (or preemption-bounded where noted in the tests), then
#   3. the snn-serve models (crates/snn-serve/src/loom_tests.rs), which
#      interleave the serving queue's enqueue/steal/drain/poison protocol
#      and the ticket slot's panic hand-off (DESIGN.md §12.4).
#
# In the offline container, use the shadow build instead:
#   bash target/scratch/shadow/build.sh loom && \
#     target/scratch/shadow/snn_loom_selftest && \
#     target/scratch/shadow/gpu_device_loom_tests
set -euo pipefail
cd "$(dirname "$0")/.."

export SNN_LOOM_MAX_ITER="${SNN_LOOM_MAX_ITER:-500000}"
cargo test --release -p snn-loom
env RUSTFLAGS="--cfg loom" cargo test --release -p gpu-device --lib
exec env RUSTFLAGS="--cfg loom" cargo test --release -p snn-serve --lib
