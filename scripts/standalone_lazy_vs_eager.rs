//! Standalone, dependency-free replica of the eager vs lazy plasticity
//! paths, used to generate `results/BENCH_lazy_plasticity.json` in an
//! offline environment where the cargo registry is unreachable and the
//! workspace (which depends on crossbeam/serde/etc.) cannot be built.
//!
//! Everything behaviour-relevant is copied verbatim from the workspace
//! sources so the measurement is faithful:
//!   * Philox4x32-10            <- crates/gpu-device/src/philox.rs
//!   * stochastic STDP rule     <- crates/snn-core/src/stdp/stochastic.rs
//!   * Querlioz update math     <- crates/snn-core/src/config.rs (FullPrecision preset)
//!   * stream keying + phases   <- crates/snn-core/src/sim/engine.rs
//!   * pool dispatch semantics  <- crates/gpu-device/src/device.rs
//!     (persistent workers, inline below min_parallel_items = 4096)
//!
//! Workload: the ISSUE's sparse-activity shape — 784 inputs -> 1000
//! excitatory neurons, rate-coded digits in the 1-22 Hz range, WTA-style
//! rare post spikes with a 10 ms inhibition window. Post spikes are driven
//! by a synthetic (but Philox-deterministic) winner process shared by both
//! paths, so the replica isolates exactly the plasticity path the bench
//! bin times via the device profiler.
//!
//! Build & run:  rustc --edition 2021 -O scripts/standalone_lazy_vs_eager.rs && ./standalone_lazy_vs_eager

use std::time::{Duration, Instant};

/// The workspace's own paired-measurement scaffold (`bench::harness`),
/// mounted by path so this dependency-free replica and the bench bins
/// share one implementation (the module itself is pure `std`). Each
/// generator uses the scaffold entry point its measurement shape needs.
#[allow(dead_code)]
#[path = "../crates/bench/src/measure.rs"]
mod measure;

// ---------------------------------------------------------------- Philox

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

#[derive(Clone, Copy)]
struct Philox {
    key: [u32; 2],
}

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

impl Philox {
    fn new(seed: u64) -> Self {
        Philox { key: [seed as u32, (seed >> 32) as u32] }
    }

    fn block(&self, counter: [u32; 4]) -> [u32; 4] {
        let mut ctr = counter;
        let mut key = self.key;
        for _ in 0..10 {
            let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
            let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
            ctr = [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0];
            key[0] = key[0].wrapping_add(PHILOX_W0);
            key[1] = key[1].wrapping_add(PHILOX_W1);
        }
        ctr
    }

    #[inline]
    fn at(&self, stream: u64, index: u64, word: usize) -> u32 {
        let ctr =
            [index as u32, (index >> 32) as u32, stream as u32, (stream >> 32) as u32];
        self.block(ctr)[word]
    }

    #[inline]
    fn uniform(&self, stream: u64, index: u64) -> f64 {
        f64::from(self.at(stream, index, 0)) / (u64::from(u32::MAX) + 1) as f64
    }

}

// -------------------------------------------- rule + update (FullPrecision)

const STREAM_INPUT: u64 = 1 << 40;
const STREAM_SYNAPSE: u64 = 2 << 40;

// FullPrecision preset: gamma_pot 0.9, tau_pot 30 ms, gamma_dep 0.9
// (gamma_dep_scale = 1.0), tau_dep 10 ms; Querlioz magnitudes
// alpha_p 0.01 / beta_p 3 / alpha_d 0.005 / beta_d 3; G in [0, 1], float
// storage (no quantizer => rounding draw elided on the lazy path).
const GAMMA_POT: f64 = 0.9;
const TAU_POT: f64 = 30.0;
const GAMMA_DEP: f64 = 0.9;
const TAU_DEP: f64 = 10.0;
const G_MIN: f64 = 0.0;
const G_MAX: f64 = 1.0;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Pot,
    Dep,
}

#[derive(Clone, Copy, PartialEq)]
enum Rule {
    /// StochasticStdp: acceptance-draw-consuming (Eqs. 6-7).
    Stochastic,
    /// DeterministicStdp (ltp_window_ms = 20.0): ignores the draw, so the
    /// lazy settle path elides the acceptance Philox block entirely.
    Deterministic,
}

const LTP_WINDOW_MS: f64 = 20.0;

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::Stochastic => "stochastic",
            Rule::Deterministic => "deterministic",
        }
    }

    fn consumes_acceptance_draw(self) -> bool {
        self == Rule::Stochastic
    }
}

#[inline]
fn on_post_spike(rule: Rule, dt_ms: f64, uniform: f64) -> Option<Kind> {
    if rule == Rule::Deterministic {
        return Some(if dt_ms <= LTP_WINDOW_MS { Kind::Pot } else { Kind::Dep });
    }
    let p_pot = if dt_ms.is_finite() { GAMMA_POT * (-dt_ms / TAU_POT).exp() } else { 0.0 };
    if uniform < p_pot {
        return Some(Kind::Pot);
    }
    let p_dep = if dt_ms.is_finite() {
        GAMMA_DEP * (1.0 - (-dt_ms / TAU_DEP).exp())
    } else {
        GAMMA_DEP
    };
    if uniform < p_pot + p_dep {
        Some(Kind::Dep)
    } else {
        None
    }
}

#[inline]
fn updated(g: f64, kind: Kind) -> f64 {
    let span = G_MAX - G_MIN;
    let candidate = match kind {
        Kind::Pot => g + 0.01 * (-3.0 * (g - G_MIN) / span).exp(),
        Kind::Dep => g - 0.005 * (-3.0 * (G_MAX - g) / span).exp(),
    };
    candidate.clamp(G_MIN, G_MAX)
}

// --------------------------------------------------- worker pool (device)

type Job = Box<dyn FnOnce() + Send>;

const MIN_PARALLEL_ITEMS: usize = 4096;

/// The container exposes a single CPU core, so running the device's worker
/// pool for real would only add scheduler noise without parallel speedup.
/// Instead each launch's per-worker partitions (built exactly as the
/// workspace device partitions rows) execute inline, individually timed:
/// the *sum* is the serial 1-core cost, the *max* is the launch's critical
/// path — the wall time the same partitioning yields when each partition
/// has its own core. Pool dispatch overhead is excluded from both, which
/// favours the eager baseline (it launches ~10x more kernels).
fn run_jobs(jobs: Vec<Job>) -> (Duration, Duration) {
    let (mut sum, mut max) = (Duration::ZERO, Duration::ZERO);
    for job in jobs {
        let started = Instant::now();
        job();
        let d = started.elapsed();
        sum += d;
        max = max.max(d);
    }
    (sum, max)
}

/// Send-able raw view over a buffer whose rows each launch partitions
/// disjointly across workers (the device's SharedMut idiom).
struct RawMut<T>(*mut T);
unsafe impl<T> Send for RawMut<T> {}
impl<T> Clone for RawMut<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawMut<T> {}
struct Raw<T>(*const T);
unsafe impl<T> Send for Raw<T> {}
impl<T> Clone for Raw<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Raw<T> {}

// ------------------------------------------------------------- workload

const N_PRE: usize = 784;
const N_POST: usize = 1000;
const DT_MS: f64 = 0.5;
const STEPS_PER_IMAGE: u64 = 300; // 150 ms
const N_IMAGES: usize = 10;
const T_INH_STEPS: u64 = 20; // 10 ms WTA inhibition window
const SEED: u64 = 2019;

/// Per-pixel rates: digit-like sparse images, ink at f_max = 22 Hz,
/// background at f_min = 1 Hz.
fn rates_for(image: usize) -> Vec<f64> {
    (0..N_PRE)
        .map(|i| {
            let (x, y) = (i % 28, i / 28);
            if (x * 31 + y * 17 + image * 13) % 97 < 15 {
                22.0
            } else {
                1.0
            }
        })
        .collect()
}

/// Synthetic WTA winner stream: Philox-deterministic, shared by both
/// paths; at most one winner per step, silenced for t_inh after a spike.
fn winners() -> Vec<Option<u32>> {
    let philox = Philox::new(777);
    let total = STEPS_PER_IMAGE * N_IMAGES as u64;
    let mut inhibited_until = 0u64;
    (0..total)
        .map(|step| {
            if step < inhibited_until || philox.uniform(3 << 40, step) >= 0.08 {
                return None;
            }
            inhibited_until = step + T_INH_STEPS;
            Some((philox.at((3 << 40) | 1, step, 0) % N_POST as u32) as u32)
        })
        .collect()
}

fn initial_g() -> Vec<f64> {
    // SynapseMatrix::new_random: init stream seed ^ 0x5eed1eaf, uniform in
    // [0.3, 0.8] of the [G_MIN, G_MAX] span, no quantizer at FullPrecision.
    let philox = Philox::new(SEED ^ 0x5e_ed_1e_af);
    (0..N_PRE * N_POST)
        .map(|idx| {
            let u = philox.uniform(idx as u64, 0);
            0.3 + u * (0.8 - 0.3)
        })
        .collect()
}

struct RunOut {
    g: Vec<f64>,
    /// Serial 1-core plasticity kernel cost (sum over all partitions).
    /// Mirrors the bench bin's metric: the device profiler times kernel
    /// launches, so engine-side ledger bookkeeping is NOT part of this.
    plasticity: Duration,
    /// Critical-path kernel cost with SIM_WORKERS-way block-cyclic row
    /// partitioning (max partition per launch; inline work counts in full).
    plasticity_par: Duration,
    /// Engine-side ledger bookkeeping outside any kernel (the flush's
    /// outstanding-updates counter + ledger clear). Reported separately
    /// for transparency; zero on the eager path.
    bookkeeping: Duration,
    /// Number of launches routed through the worker pool (>= the inline
    /// threshold), each of which costs a dispatch on real hardware.
    pooled_launches: u64,
    wall: Duration,
    deferred: u64,
    skipped: u64,
    settled_at_flush: u64,
}

/// Worker count the critical-path measurement simulates (the bench bin's
/// default on CI-class hardware).
const SIM_WORKERS: usize = 8;

/// Pool dispatch cost per POOLED launch, from the device's own
/// documentation (`DeviceConfig::min_parallel_items`: "pool dispatch costs
/// ~10 us, so tiny kernels are faster serial"). The bench bin's profiler
/// metric wraps dispatch, and a 1-core container cannot measure 8-worker
/// dispatch, so it is modelled at the documented value and reported as a
/// separate JSON field. Inline (sub-threshold) launches dispatch nothing.
const DISPATCH_US: f64 = 10.0;
/// Rows per launch block for dense row launches:
/// `LaunchDims::cover(n, block_size / 32)` with the default block_size of
/// 256. Workers take blocks round-robin.
const BLOCK_ROWS: usize = 8;

/// Row block for a gather launch over `n` rows: capped so a small
/// data-dependent active set still spreads across every worker
/// (mirrors `Device::launch_gather_rows_mut`).
fn gather_block(n: usize) -> usize {
    BLOCK_ROWS.min(1.max(n.div_ceil(4 * SIM_WORKERS)))
}

/// The eager reference: phase-6 dense `stdp_post` launch on every spiking
/// step (work hint n_post * n_pre -> always pool-dispatched; non-spiking
/// rows exit on the flag check, exactly like the workspace kernel).
fn run_eager(rule: Rule, winner_by_step: &[Option<u32>]) -> RunOut {
    let philox = Philox::new(SEED);
    let mut g = initial_g();
    let mut last_pre = vec![f64::NEG_INFINITY; N_PRE];
    let mut spiked = vec![false; N_POST];
    let mut plasticity = Duration::ZERO;
    let mut plasticity_par = Duration::ZERO;
    let mut pooled_launches = 0u64;
    let wall_start = Instant::now();
    let mut step = 0u64;
    for image in 0..N_IMAGES {
        let p_spike: Vec<f64> = rates_for(image).iter().map(|f| f * DT_MS / 1000.0).collect();
        last_pre.fill(f64::NEG_INFINITY);
        for _ in 0..STEPS_PER_IMAGE {
            let t = step as f64 * DT_MS;
            for i in 0..N_PRE {
                if philox.uniform(STREAM_INPUT | i as u64, step) < p_spike[i] {
                    last_pre[i] = t;
                }
            }
            if let Some(w) = winner_by_step[step as usize] {
                spiked[w as usize] = true;
                // Dense launch: row blocks taken round-robin by the
                // (simulated) pool, as `launch_rows_mut` does. The one
                // spiking row lands in a single block on a single worker,
                // so the critical path barely improves on serial — eager's
                // parallelism is wasted on flag checks under sparse WTA
                // activity.
                let n_blocks = N_POST.div_ceil(BLOCK_ROWS);
                let gp = RawMut(g.as_mut_ptr());
                let lp = Raw(last_pre.as_ptr());
                let sp = Raw(spiked.as_ptr());
                let jobs: Vec<Job> = (0..SIM_WORKERS)
                    .map(|w| {
                        Box::new(move || {
                            // Rebind whole wrappers: edition-2021 closures
                            // otherwise capture the raw-pointer fields.
                            let (gp, lp, sp) = (gp, lp, sp);
                            let mut block = w;
                            while block < n_blocks {
                                let lo = block * BLOCK_ROWS;
                                let hi = (lo + BLOCK_ROWS).min(N_POST);
                                for j in lo..hi {
                                unsafe {
                                    if !*sp.0.add(j) {
                                        continue;
                                    }
                                    for i in 0..N_PRE {
                                        let dt_pair = t - *lp.0.add(i);
                                        let syn = j * N_PRE + i;
                                        let stream = STREAM_SYNAPSE | syn as u64;
                                        let u = philox.uniform(stream, step);
                                        if let Some(kind) = on_post_spike(rule, dt_pair, u) {
                                            // Eager computes the rounding draw
                                            // inside the accept branch (word 2
                                            // of a fresh block); FullPrecision
                                            // ignores its value but pays for it.
                                            let _u_round = f64::from(philox.at(stream, step, 2))
                                                / (u64::from(u32::MAX) + 1) as f64;
                                            let cell = gp.0.add(syn);
                                            *cell = updated(*cell, kind);
                                        }
                                    }
                                }
                                }
                                block += SIM_WORKERS;
                            }
                        }) as Job
                    })
                    .collect();
                let (sum, max) = run_jobs(jobs);
                plasticity += sum;
                plasticity_par += max;
                pooled_launches += 1; // work hint n_post*n_pre >= threshold
                spiked[w as usize] = false;
            }
            step += 1;
        }
    }
    RunOut {
        g,
        plasticity,
        plasticity_par,
        bookkeeping: Duration::ZERO,
        pooled_launches,
        wall: wall_start.elapsed(),
        deferred: 0,
        skipped: 0,
        settled_at_flush: 0,
    }
}

struct Ledger {
    events: Vec<Vec<(u64, f64)>>,
    applied: Vec<u32>,
    active: Vec<u32>,
    is_active: Vec<bool>,
}

#[inline]
fn settle_synapse(
    rule: Rule,
    philox: &Philox,
    g: &mut f64,
    applied: &mut u32,
    events: &[(u64, f64)],
    syn: usize,
    last_pre: f64,
) {
    let start = *applied as usize;
    if start >= events.len() {
        return;
    }
    let stream = STREAM_SYNAPSE | syn as u64;
    let accept_draws = rule.consumes_acceptance_draw();
    for &(ev_step, ev_t) in &events[start..] {
        let u = if accept_draws { philox.uniform(stream, ev_step) } else { 0.0 };
        if let Some(kind) = on_post_spike(rule, ev_t - last_pre, u) {
            // round_draws elided: no quantizer at FullPrecision.
            *g = updated(*g, kind);
        }
    }
    *applied = events.len() as u32;
}

/// The lazy path: touch-time settles + event recording + coincident
/// settles per step, full row-parallel flush at presentation end.
fn run_lazy(rule: Rule, winner_by_step: &[Option<u32>]) -> RunOut {
    let philox = Philox::new(SEED);
    let mut g = initial_g();
    let mut last_pre = vec![f64::NEG_INFINITY; N_PRE];
    let mut ledger = Ledger {
        events: vec![Vec::new(); N_POST],
        applied: vec![0u32; N_PRE * N_POST],
        active: Vec::new(),
        is_active: vec![false; N_POST],
    };
    let mut spiking_inputs: Vec<u32> = Vec::new();
    let (mut deferred, mut skipped, mut settled_at_flush) = (0u64, 0u64, 0u64);
    let mut plasticity = Duration::ZERO;
    let mut plasticity_par = Duration::ZERO;
    let mut bookkeeping = Duration::ZERO;
    let mut pooled_launches = 0u64;
    let wall_start = Instant::now();
    let mut step = 0u64;
    for image in 0..N_IMAGES {
        let p_spike: Vec<f64> = rates_for(image).iter().map(|f| f * DT_MS / 1000.0).collect();
        last_pre.fill(f64::NEG_INFINITY);
        for _ in 0..STEPS_PER_IMAGE {
            let t = step as f64 * DT_MS;
            spiking_inputs.clear();
            for i in 0..N_PRE {
                if philox.uniform(STREAM_INPUT | i as u64, step) < p_spike[i] {
                    spiking_inputs.push(i as u32);
                }
            }
            // (1b) touch-time settle before the timestamps change; work
            // is active_rows x spiking_cols < MIN_PARALLEL_ITEMS -> inline.
            if !ledger.active.is_empty() && !spiking_inputs.is_empty() {
                let started = Instant::now();
                for &j in &ledger.active {
                    let j = j as usize;
                    let evs = &ledger.events[j];
                    for &i in &spiking_inputs {
                        let syn = j * N_PRE + i as usize;
                        settle_synapse(
                            rule,
                            &philox,
                            &mut g[syn],
                            &mut ledger.applied[syn],
                            evs,
                            syn,
                            last_pre[i as usize],
                        );
                    }
                }
                let d = started.elapsed();
                plasticity += d;
                plasticity_par += d; // inline: fully on the critical path
            }
            for &i in &spiking_inputs {
                last_pre[i as usize] = t;
            }
            // (6) record + coincident settle.
            if let Some(w) = winner_by_step[step as usize] {
                let started = Instant::now();
                let j = w as usize;
                if !ledger.is_active[j] {
                    ledger.is_active[j] = true;
                    ledger.active.push(w);
                }
                ledger.events[j].push((step, t));
                deferred += N_PRE as u64;
                skipped += (N_POST * N_PRE) as u64;
                for &i in &spiking_inputs {
                    let syn = j * N_PRE + i as usize;
                    settle_synapse(
                        rule,
                        &philox,
                        &mut g[syn],
                        &mut ledger.applied[syn],
                        &ledger.events[j],
                        syn,
                        last_pre[i as usize],
                    );
                }
                let d = started.elapsed();
                plasticity += d;
                plasticity_par += d; // inline: fully on the critical path
            }
            step += 1;
        }
        // flush_plasticity(): settle every active row, row-parallel when
        // the work hint clears the inline threshold.
        if !ledger.active.is_empty() {
            // Ledger bookkeeping (`outstanding_updates` + `clear_settled`
            // below) runs on the engine thread OUTSIDE any kernel, exactly
            // like `flush_plasticity`; the bench bin's plasticity-path
            // metric is built from device-profiler *kernel* stats, so it
            // lands in `bookkeeping`, not `plasticity`.
            let bk_start = Instant::now();
            settled_at_flush += ledger
                .active
                .iter()
                .map(|&j| {
                    let j = j as usize;
                    (0..N_PRE)
                        .map(|i| {
                            ledger.events[j].len() as u64
                                - u64::from(ledger.applied[j * N_PRE + i])
                        })
                        .sum::<u64>()
                })
                .sum::<u64>();
            bookkeeping += bk_start.elapsed();
            let pool_path = ledger.active.len() * N_PRE >= MIN_PARALLEL_ITEMS;
            let started = Instant::now();
            if pool_path {
                let gp = RawMut(g.as_mut_ptr());
                let ap = RawMut(ledger.applied.as_mut_ptr());
                let lp = Raw(last_pre.as_ptr());
                let evp = Raw(ledger.events.as_ptr());
                let rows = Raw(ledger.active.as_ptr());
                let n_rows = ledger.active.len();
                let block_rows = gather_block(n_rows);
                let n_blocks = n_rows.div_ceil(block_rows);
                let jobs: Vec<Job> = (0..SIM_WORKERS)
                    .map(|w| {
                        Box::new(move || {
                            let (gp, ap, lp, evp, rows) = (gp, ap, lp, evp, rows);
                            let philox = Philox::new(SEED);
                            let mut block = w;
                            while block < n_blocks {
                                let lo = block * block_rows;
                                let hi = (lo + block_rows).min(n_rows);
                                for k in lo..hi {
                                    unsafe {
                                        let j = *rows.0.add(k) as usize;
                                        let evs: &Vec<(u64, f64)> = &*evp.0.add(j);
                                        for i in 0..N_PRE {
                                            let syn = j * N_PRE + i;
                                            settle_synapse(
                                                rule,
                                                &philox,
                                                &mut *gp.0.add(syn),
                                                &mut *ap.0.add(syn),
                                                evs,
                                                syn,
                                                *lp.0.add(i),
                                            );
                                        }
                                    }
                                }
                                block += SIM_WORKERS;
                            }
                        }) as Job
                    })
                    .collect();
                let setup = started.elapsed();
                plasticity += setup;
                plasticity_par += setup;
                let (sum, max) = run_jobs(jobs);
                plasticity += sum;
                plasticity_par += max; // rows settle in parallel at flush
                pooled_launches += 1;
            } else {
                for k in 0..ledger.active.len() {
                    let j = ledger.active[k] as usize;
                    for i in 0..N_PRE {
                        let syn = j * N_PRE + i;
                        let evs = &ledger.events[j];
                        settle_synapse(
                            rule,
                            &philox,
                            &mut g[syn],
                            &mut ledger.applied[syn],
                            evs,
                            syn,
                            last_pre[i],
                        );
                    }
                }
                let d = started.elapsed();
                plasticity += d;
                plasticity_par += d;
            }
            let tail_start = Instant::now();
            for j in ledger.active.drain(..).map(|j| j as usize) {
                ledger.is_active[j] = false;
                ledger.events[j].clear();
                ledger.applied[j * N_PRE..(j + 1) * N_PRE].fill(0);
            }
            bookkeeping += tail_start.elapsed();
        }
    }
    RunOut {
        g,
        plasticity,
        plasticity_par,
        bookkeeping,
        pooled_launches,
        wall: wall_start.elapsed(),
        deferred,
        skipped,
        settled_at_flush,
    }
}

fn main() {
    let winner_by_step = winners();
    let n_events = winner_by_step.iter().flatten().count();
    println!(
        "replica: {N_PRE} -> {N_POST}, {N_IMAGES} x {STEPS_PER_IMAGE} steps, \
         {n_events} post-spike events, {SIM_WORKERS} simulated workers"
    );

    let provenance = format!(
        "standalone dependency-free replica (scripts/standalone_lazy_vs_eager.rs, rustc --edition 2021 -O) because the \
         cargo registry is unreachable in this offline environment; Philox, rule, update math, \
         stream keying and row-partitioning semantics copied verbatim from the workspace \
         sources; plasticity_path counts kernel launch time only, matching the bench bin's \
         device-profiler metric (engine-side ledger bookkeeping is reported separately as \
         ledger_bookkeeping_ms); the container exposes 1 CPU core, so plasticity_path_ms is \
         the measured serial kernel cost and plasticity_path_parallel_ms is the measured \
         per-partition critical path for {SIM_WORKERS}-way block-cyclic row partitioning; \
         the profiler metric the bench bin reports wraps pool dispatch, which a 1-core \
         container cannot measure for 8 workers, so *_incl_dispatch_ms adds the \
         device-documented ~10 us per POOLED launch (DeviceConfig::min_parallel_items doc; \
         eager dispatches every per-event stdp_post launch, lazy only its flush launches — \
         touch/post settles run inline below the pool threshold) and the speedup metric uses \
         those; kernels-only ratios are reported alongside; synthetic Philox-deterministic \
         WTA winner stream shared by both paths; regenerate in-workspace with `cargo run -p \
         bench --release --bin lazy_vs_eager`"
    );
    let mut records: Vec<String> = Vec::new();
    for rule in [Rule::Deterministic, Rule::Stochastic] {
        // Paired measurement: warm each path up, then sample the two
        // strictly interleaved, keeping per-field minima over REPS rounds —
        // the workload is a few ms, so single runs are scheduler-noise
        // dominated and interleaving keeps the ratio honest under drift.
        // g and the counters are bit-deterministic across runs, so any
        // rep's RunOut carries them.
        const REPS: usize = 25;
        let (eager, lazy) = measure::interleaved_best(
            REPS,
            || run_eager(rule, &winner_by_step),
            || run_lazy(rule, &winner_by_step),
            |best, e| {
                best.plasticity = best.plasticity.min(e.plasticity);
                best.plasticity_par = best.plasticity_par.min(e.plasticity_par);
                best.wall = best.wall.min(e.wall);
            },
            |best, l| {
                best.plasticity = best.plasticity.min(l.plasticity);
                best.plasticity_par = best.plasticity_par.min(l.plasticity_par);
                best.bookkeeping = best.bookkeeping.min(l.bookkeeping);
                best.wall = best.wall.min(l.wall);
            },
        );

        let identical = eager.g == lazy.g;
        let changed = {
            let init = initial_g();
            eager.g.iter().zip(&init).filter(|(a, b)| a != b).count()
        };
        println!(
            "\n[{}] bit-identical: {identical} ({} synapses, {} changed by learning)",
            rule.name(),
            eager.g.len(),
            changed
        );
        assert!(identical, "lazy diverged from eager ({})", rule.name());
        assert!(changed > 0, "vacuous run: no synapse moved");

        let e_ms = eager.plasticity.as_secs_f64() * 1000.0;
        let l_ms = lazy.plasticity.as_secs_f64() * 1000.0;
        let ep_ms = eager.plasticity_par.as_secs_f64() * 1000.0;
        let lp_ms = lazy.plasticity_par.as_secs_f64() * 1000.0;
        let e_disp_ms = eager.pooled_launches as f64 * DISPATCH_US / 1000.0;
        let l_disp_ms = lazy.pooled_launches as f64 * DISPATCH_US / 1000.0;
        let epd_ms = ep_ms + e_disp_ms;
        let lpd_ms = lp_ms + l_disp_ms;
        let speedup_serial = e_ms / l_ms;
        let speedup_par_kernels = ep_ms / lp_ms;
        let speedup_par = epd_ms / lpd_ms;
        let meets = speedup_par >= 2.0;
        let rule_note = match rule {
            Rule::Deterministic => {
                "the deterministic rule is the full draw-elision case: settles skip the \
                 acceptance draw entirely, so lazy wins on batching, launch count and flush \
                 row-parallelism"
            }
            Rule::Stochastic => {
                "the stochastic rule must replay the unconditional per-pair acceptance draw \
                 at settle time to stay bit-identical, so no draw elision is possible and \
                 the speedup comes only from ~10x fewer pooled launches plus flush \
                 row-parallelism; it falls short of 2x on this container and is expected to \
                 clear the bar only where real dispatch exceeds the modeled ~10 us"
            }
        };
        println!(
            "[{}] eager plasticity path: serial {e_ms:.3} ms, {SIM_WORKERS}-worker critical \
             path {ep_ms:.3} ms + {} pooled dispatches {e_disp_ms:.3} ms = {epd_ms:.3} ms",
            rule.name(),
            eager.pooled_launches
        );
        println!(
            "[{}] lazy  plasticity path: serial {l_ms:.3} ms, {SIM_WORKERS}-worker critical \
             path {lp_ms:.3} ms + {} pooled dispatches {l_disp_ms:.3} ms = {lpd_ms:.3} ms",
            rule.name(),
            lazy.pooled_launches
        );
        println!(
            "[{}] plasticity-path speedup: serial {speedup_serial:.2}x, {SIM_WORKERS}-worker \
             kernels-only {speedup_par_kernels:.2}x, incl dispatch {speedup_par:.2}x",
            rule.name()
        );
        println!(
            "[{}] lazy ledger bookkeeping (outside kernels): {:.3} ms",
            rule.name(),
            lazy.bookkeeping.as_secs_f64() * 1e3
        );
        println!(
            "[{}] lazy counters: deferred={} dense_items_skipped={} settled_at_flush={}",
            rule.name(),
            lazy.deferred,
            lazy.skipped,
            lazy.settled_at_flush
        );

        let record = |exec: &str, r: &RunOut, kernels: &str| {
            format!(
                "  {{\n    \"execution\": \"{exec}\",\n    \"preset\": \"full-precision\",\n    \
                 \"rule\": \"{}\",\n    \"n_inputs\": {N_PRE},\n    \"n_excitatory\": \
                 {N_POST},\n    \"workers\": {SIM_WORKERS},\n    \"n_images\": {N_IMAGES},\n    \
                 \"t_present_ms\": {:.1},\n    \"wall_ms_total\": {:.3},\n    \
                 \"plasticity_path_ms\": {:.3},\n    \"plasticity_path_parallel_ms\": {:.3},\n    \
                 \"pooled_kernel_launches\": {},\n    \
                 \"modeled_dispatch_ms\": {:.3},\n    \
                 \"plasticity_path_parallel_incl_dispatch_ms\": {:.3},\n    \
                 \"ledger_bookkeeping_ms\": {:.3},\n    \
                 \"plasticity_kernels\": {kernels},\n    \
                 \"updates_deferred\": {},\n    \"dense_items_skipped\": {},\n    \
                 \"updates_settled_at_flush\": {},\n    \"bit_identical_to_eager\": true,\n    \
                 \"provenance\": \"{provenance}\"\n  }}",
                rule.name(),
                STEPS_PER_IMAGE as f64 * DT_MS,
                r.wall.as_secs_f64() * 1000.0,
                r.plasticity.as_secs_f64() * 1000.0,
                r.plasticity_par.as_secs_f64() * 1000.0,
                r.pooled_launches,
                r.pooled_launches as f64 * DISPATCH_US / 1000.0,
                r.plasticity_par.as_secs_f64() * 1000.0
                    + r.pooled_launches as f64 * DISPATCH_US / 1000.0,
                r.bookkeeping.as_secs_f64() * 1000.0,
                r.deferred,
                r.skipped,
                r.settled_at_flush,
            )
        };
        records.push(record("eager", &eager, &format!("[[\"stdp_post\", {e_ms:.3}]]")));
        records.push(record(
            "lazy",
            &lazy,
            &format!(
                "[[\"stdp_touch_settle + stdp_post_settle + stdp_flush_settle\", {l_ms:.3}]]"
            ),
        ));
        records.push(format!(
            "  {{\n    \"metric\": \"plasticity_path_speedup\",\n    \"rule\": \"{}\",\n    \
             \"value\": {speedup_par:.3},\n    \
             \"parallel_kernels_only_value\": {speedup_par_kernels:.3},\n    \
             \"serial_1core_value\": {speedup_serial:.3},\n    \
             \"requirement\": \">= 2.0\",\n    \"meets_requirement\": {meets},\n    \
             \"note\": \"value is the {SIM_WORKERS}-worker critical-path speedup including \
             the device-documented ~10 us dispatch per pooled launch, matching the profiler \
             metric the in-workspace bench reports: under sparse WTA activity eager pays one \
             pooled dense launch per post-spike event and its one active row's 784 pair \
             updates land on a single worker, while lazy batches work into ~10x fewer pooled \
             launches whose flush settles all active rows in parallel. Kernels-only and \
             serial 1-core ratios are reported alongside; serial is smaller because the \
             per-pair Querlioz exp() update dominates both paths on one core. Rule-specific: \
             {rule_note}.\"\n  }}",
            rule.name()
        ));
    }

    let json = format!("[\n{}\n]\n", records.join(",\n"));
    std::fs::write("/root/repo/results/BENCH_lazy_plasticity.json", json).unwrap();
    println!("\nwrote /root/repo/results/BENCH_lazy_plasticity.json");
}
