//! Offline generator for results/BENCH_parallel_eval.json: runs the SAME
//! measurement as crates/bench/src/bin/parallel_eval.rs against the real
//! workspace crates (compiled directly with rustc because the cargo
//! registry is unreachable here), and hand-formats the JSON the bench bin
//! would emit via serde. Only the emission differs; every measured code
//! path is the workspace's own.
//!
//! The pre-PR end-to-end baseline cannot be linked into this binary (it is
//! the seed revision of these same crates), so it is measured by a separate
//! binary compiled from the seed sources (`git archive` the pre-PR
//! revision, build its crates the same way), run interleaved with this
//! generator to control CPU-frequency drift, and its best wall time is
//! passed in via the SEED_BASELINE_MS env var.
//!
//! Build (against a shadow rlib set of the workspace crates, see
//! `.claude/skills/verify/SKILL.md`):
//!
//! ```bash
//! rustc --edition 2021 -O -L target/scratch/shadow \
//!     scripts/standalone_parallel_eval.rs \
//!     --extern gpu_device=... --extern snn_core=... --extern snn_datasets=... \
//!     --extern spike_encoding=... --extern snn_learning=... \
//!     -o /tmp/sa_parallel_eval
//! SEED_BASELINE_MS=<measured> /tmp/sa_parallel_eval
//! ```

use gpu_device::{Device, DeviceConfig};
use snn_core::config::{NetworkConfig, Preset};
use snn_core::sim::{EvalSnapshot, WtaEngine};
use snn_datasets::{synthetic_mnist, Dataset};
use snn_learning::{evaluate_snapshot, EvalOptions, EvalOutcome};
use spike_encoding::RateEncoder;
use std::time::Instant;

/// The workspace's own measurement scaffold (`bench::harness`), mounted by
/// path so this generator and the bench bin share one implementation.
#[allow(dead_code)]
#[path = "../crates/bench/src/measure.rs"]
mod measure;

const N_LABEL: usize = 20;
const N_INFER: usize = 20;
const T_PRESENT_MS: f64 = 150.0;
const SEED: u64 = 2019;

fn trained_snapshot(network: &NetworkConfig, dataset: &Dataset) -> EvalSnapshot {
    let device = Device::new(DeviceConfig::default());
    let mut engine = WtaEngine::new(network.clone(), &device, SEED);
    let encoder = RateEncoder::new(network.frequency);
    for sample in dataset.train.iter().take(5) {
        let rates = encoder.rates(sample.image.pixels());
        engine.reset_transients();
        let _ = engine.present(&rates, 100.0, true);
    }
    engine.snapshot()
}

fn legacy_serial_eval(network: &NetworkConfig, snapshot: &EvalSnapshot, dataset: &Dataset) -> f64 {
    let device = Device::new(DeviceConfig::default());
    let mut engine =
        WtaEngine::replica(network.clone(), &device, SEED, snapshot).expect("valid network");
    let encoder = RateEncoder::new(network.frequency);
    let (label_set, infer_set) = dataset.labeling_split(N_LABEL);
    let started = Instant::now();
    for sample in label_set.iter().chain(&infer_set[..N_INFER]) {
        let rates = encoder.rates(sample.image.pixels());
        engine.reset_transients();
        let _ = engine.present(&rates, T_PRESENT_MS, false);
    }
    started.elapsed().as_secs_f64() * 1000.0
}

fn parallel_eval(
    network: &NetworkConfig,
    snapshot: &EvalSnapshot,
    dataset: &Dataset,
    replicas: usize,
    pipelined: bool,
) -> (f64, EvalOutcome) {
    let opts = EvalOptions { replicas, pipelined, ..EvalOptions::default() };
    let started = Instant::now();
    let out = evaluate_snapshot(
        network, SEED, snapshot, T_PRESENT_MS, dataset, N_LABEL, N_INFER, &opts,
    );
    (started.elapsed().as_secs_f64() * 1000.0, out)
}

fn identical(a: &EvalOutcome, b: &EvalOutcome) -> bool {
    a.labels == b.labels
        && a.confusion == b.confusion
        && a.accuracy == b.accuracy
        && a.abstention_rate == b.abstention_rate
}

fn run_record(
    mode: &str,
    replicas: usize,
    pipelined: bool,
    wall_ms: f64,
    speedup_vs_legacy: f64,
    bit_identical: bool,
    provenance: &str,
) -> String {
    format!(
        "  {{\n    \"mode\": \"{mode}\",\n    \"replicas\": {replicas},\n    \
         \"pipelined\": {pipelined},\n    \"n_labeling\": {N_LABEL},\n    \
         \"n_inference\": {N_INFER},\n    \"t_present_ms\": {T_PRESENT_MS:.1},\n    \
         \"wall_ms\": {wall_ms:.3},\n    \"speedup_vs_legacy\": {speedup_vs_legacy:.3},\n    \
         \"bit_identical_to_serial\": {bit_identical},\n    \
         \"provenance\": \"{provenance}\"\n  }}"
    )
}

fn main() {
    let seed_ms: Option<f64> =
        std::env::var("SEED_BASELINE_MS").ok().and_then(|v| v.parse().ok());
    println!("== parallel frozen-weight evaluation: 784 -> 1000, plasticity off ==\n");
    let network = NetworkConfig::from_preset(Preset::FullPrecision, 784, 1000);
    let dataset = synthetic_mnist(5, N_LABEL + N_INFER, 7);
    let snapshot = trained_snapshot(&network, &dataset);
    let reps = 3;
    let replica_sweep = [1usize, 2, 4, 7];

    // --- bit-identity gate, before any timing ---------------------------
    let (_, serial) = parallel_eval(&network, &snapshot, &dataset, 1, false);
    for &replicas in &replica_sweep {
        for pipelined in [false, true] {
            let (_, out) = parallel_eval(&network, &snapshot, &dataset, replicas, pipelined);
            assert!(
                identical(&serial, &out),
                "replicas={replicas} pipelined={pipelined} diverged from serial"
            );
        }
    }
    println!(
        "bit-identity: OK across replicas {replica_sweep:?} x {{inline, pipelined}} \
         (accuracy {:.3}, abstention {:.3})\n",
        serial.accuracy, serial.abstention_rate
    );

    let host = DeviceConfig::host_parallelism();
    let provenance = format!(
        "measured in-process on a host exposing {host} CPU core(s); with one core the replica \
         sweep is flat by construction (threads time-slice) and every speedup shown is \
         algorithmic — gap-sampled train generation replaces the per-step encode kernel and the \
         frozen step fast-forwards winner-take-all suppression windows, integrating only the \
         uninhibited neurons — which multi-core hosts stack replica scaling on top of; the \
         in-binary legacy loop itself benefits from this PR's shared step-pipeline work, so \
         speedups against the pre-PR revision run higher than the conservative figures here; \
         best of {reps} reps; the seed_serial row is the pre-PR revision's evaluation loop \
         compiled from the seed sources and timed interleaved with this run to control CPU \
         frequency drift on this throttled container; regenerate with \
         `cargo run -p bench --release --bin parallel_eval`"
    );

    // --- timing: legacy baseline, then the sweep ------------------------
    let legacy_ms =
        measure::best_of(reps, || legacy_serial_eval(&network, &snapshot, &dataset));
    println!("legacy (in-binary, per-step encode, one engine): {legacy_ms:.1} ms");
    if let Some(s) = seed_ms {
        println!("seed revision (pre-PR end-to-end):               {s:.1} ms");
    }

    let mut records: Vec<String> = Vec::new();
    if let Some(s) = seed_ms {
        records.push(run_record(
            "seed_serial", 1, false, s, legacy_ms / s, false, &provenance,
        ));
    }
    records.push(run_record(
        "legacy_serial", 1, false, legacy_ms, 1.0, false, &provenance,
    ));

    let mut at4 = (0.0_f64, 0.0_f64); // (wall, speedup vs legacy) at r4 pipelined
    for &replicas in &replica_sweep {
        for pipelined in [false, true] {
            let wall_ms = measure::best_of(reps, || {
                parallel_eval(&network, &snapshot, &dataset, replicas, pipelined).0
            });
            let speedup = legacy_ms / wall_ms.max(1e-9);
            if replicas == 4 && pipelined {
                at4 = (wall_ms, speedup);
            }
            let enc = if pipelined { "pipelined" } else { "inline" };
            println!("parallel r{replicas} {enc:>9}: {wall_ms:>7.1} ms  {speedup:.2}x vs legacy");
            records.push(run_record(
                "parallel", replicas, pipelined, wall_ms, speedup, true, &provenance,
            ));
        }
    }

    let mut summaries: Vec<String> = Vec::new();
    if let Some(s) = seed_ms {
        let v = s / at4.0.max(1e-9);
        let meets = v >= 3.0;
        println!("\neval speedup at 4 replicas vs pre-PR revision: {v:.2}x (>= 3.0: {meets})");
        summaries.push(format!(
            "  {{\n    \"metric\": \"eval_speedup_at_4_replicas\",\n    \"replicas\": 4,\n    \
             \"value\": {v:.3},\n    \"requirement\": \">= 3.0\",\n    \
             \"meets_requirement\": {meets},\n    \"note\": \"parallel pipelined evaluation vs \
             the pre-PR revision's one-engine loop (seed_serial row), the honest end-to-end \
             baseline; measured interleaved on the same host\"\n  }}"
        ));
    }
    let meets_legacy = at4.1 >= 3.0;
    println!("eval speedup at 4 replicas vs in-binary legacy: {:.2}x (>= 3.0: {meets_legacy})", at4.1);
    summaries.push(format!(
        "  {{\n    \"metric\": \"eval_speedup_at_4_replicas_vs_in_binary_legacy\",\n    \
         \"replicas\": 4,\n    \"value\": {:.3},\n    \"requirement\": \"reported\",\n    \
         \"meets_requirement\": {meets_legacy},\n    \"note\": \"parallel pipelined evaluation \
         vs the in-binary one-engine loop (a conservative baseline: it shares this PR's \
         step-pipeline optimizations); the replica sweep and the pipelined-vs-inline ablation \
         are recorded per row above\"\n  }}",
        at4.1
    ));

    records.extend(summaries);
    let json = format!("[\n{}\n]", records.join(",\n"));
    std::fs::write("/root/repo/results/BENCH_parallel_eval.json", json).unwrap();
    println!("wrote /root/repo/results/BENCH_parallel_eval.json");
}
