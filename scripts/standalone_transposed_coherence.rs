//! Standalone replica of the `transposed_view_coherent_under_engine_op_algebra`
//! proptest in `crates/snn-core/tests/invariants.rs`, for environments
//! without the proptest crate (e.g. the offline shadow build, see
//! `target/scratch/shadow/build.sh`). Same operation algebra, driven by a
//! splitmix64 sequence instead of proptest strategies.
//!
//! Build & run (from the shadow directory, after `bash build.sh`):
//!
//! ```text
//! rustc --edition 2021 -O -L . ../../../scripts/standalone_transposed_coherence.rs \
//!   --extern snn_core=libsnn_core.rlib --extern gpu_device=libgpu_device.rlib \
//!   --extern qformat=libqformat.rlib --extern serde=libserde.rlib \
//!   -o transposed_coherence && ./transposed_coherence
//! ```

use snn_core::config::{NetworkConfig, Preset};
use snn_core::synapse::{SynapseMatrix, TransposedConductances};

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn indices(rng: &mut SplitMix, max: usize) -> Vec<u32> {
    (0..1 + rng.below(4)).map(|_| rng.below(max) as u32).collect()
}

fn main() {
    let (n_pre, n_post) = (8usize, 5usize);
    let cfg = NetworkConfig::from_preset(Preset::FullPrecision, n_pre, n_post);
    let mut checked = 0u64;
    for case in 0..256u64 {
        let mut rng = SplitMix(0xc0ffee ^ case);
        let mut m = SynapseMatrix::new_random(&cfg, case);
        let mut view = TransposedConductances::new(&m);
        assert!(view.is_coherent(&m), "fresh mirror incoherent (case {case})");
        for _ in 0..12 {
            match rng.below(5) {
                0 => {
                    for g in m.as_flat_mut() {
                        *g = rng.uniform();
                    }
                    view.refresh(&m, None, None);
                }
                1 => {
                    let rows = indices(&mut rng, n_post);
                    for &j in &rows {
                        for g in m.row_mut(j as usize) {
                            *g = rng.uniform();
                        }
                    }
                    view.refresh(&m, Some(&rows), None);
                }
                2 => {
                    let cols = indices(&mut rng, n_pre);
                    for &i in &cols {
                        for j in 0..n_post {
                            m.as_flat_mut()[j * n_pre + i as usize] = rng.uniform();
                        }
                    }
                    view.refresh(&m, None, Some(&cols));
                }
                3 => {
                    let rows = indices(&mut rng, n_post);
                    let cols = indices(&mut rng, n_pre);
                    for &j in &rows {
                        for &i in &cols {
                            m.as_flat_mut()[j as usize * n_pre + i as usize] = rng.uniform();
                        }
                    }
                    view.refresh(&m, Some(&rows), Some(&cols));
                }
                _ => {
                    for g in m.as_flat_mut() {
                        *g = rng.uniform();
                    }
                    view = TransposedConductances::new(&m);
                }
            }
            assert!(view.is_coherent(&m), "mirror diverged (case {case})");
            checked += 1;
        }
        let rebuilt = TransposedConductances::new(&m);
        for i in 0..n_pre {
            assert_eq!(view.col(i), rebuilt.col(i), "column {i} differs (case {case})");
        }
        // Negative control: an unrefreshed mutation must be visible.
        let cell = &mut m.as_flat_mut()[0];
        *cell = if *cell > 0.5 { *cell - 0.25 } else { *cell + 0.25 };
        assert!(!view.is_coherent(&m), "stale mirror undetected (case {case})");
    }
    println!("transposed-coherence: {checked} op-pairs coherent across 256 cases");
}
