//! Offline generator for results/BENCH_batched.json: runs the SAME
//! measurement as crates/bench/src/bin/batched.rs against the real
//! workspace crates (compiled directly with rustc because the cargo
//! registry is unreachable here), and hand-formats the JSON the bench bin
//! would emit via serde. Only the emission differs; every measured code
//! path — the identity gate, both device shapes, the batch × format
//! sweep — is the workspace's own.
//!
//! Build (against a shadow rlib set of the workspace crates, see
//! `.claude/skills/verify/SKILL.md`):
//!
//! ```bash
//! rustc --edition 2021 -O -L target/scratch/shadow \
//!     scripts/standalone_batched.rs \
//!     --extern gpu_device=... --extern snn_core=... --extern snn_datasets=... \
//!     --extern spike_encoding=... \
//!     -o /tmp/sa_batched
//! /tmp/sa_batched
//! ```

use gpu_device::{Device, DeviceConfig};
use snn_core::config::{CurrentDelivery, NetworkConfig, Preset};
use snn_core::sim::{BatchedEngine, EvalSnapshot, SpikeTrains, WtaEngine};
use snn_datasets::synthetic_mnist;
use spike_encoding::{EvalTrainGenerator, RateEncoder};

/// The workspace's own measurement scaffold (`bench::harness`), mounted by
/// path so this generator and the bench bin share one implementation.
#[allow(dead_code)]
#[path = "../crates/bench/src/measure.rs"]
mod measure;

const SEED: u64 = 2019;
const T_PRESENT_MS: f64 = 50.0;
const N_EXC: usize = 100;
const N_IMAGES: usize = 32;
const BATCHES: [usize; 4] = [1, 4, 8, 16];
const PRESETS: [(Preset, &str); 3] =
    [(Preset::Bit2, "Q0.2"), (Preset::Bit4, "Q0.4"), (Preset::Bit8, "Q1.7")];

fn device_shapes() -> [(&'static str, DeviceConfig); 2] {
    [
        ("inline", DeviceConfig::serial()),
        ("pooled", DeviceConfig { workers: 4, min_parallel_items: 1, ..Default::default() }),
    ]
}

fn trained_snapshot(network: &NetworkConfig) -> EvalSnapshot {
    let device = Device::new(DeviceConfig::default());
    let mut engine = WtaEngine::new(network.clone(), &device, SEED);
    let encoder = RateEncoder::new(network.frequency);
    let dataset = synthetic_mnist(5, 1, 7);
    for sample in &dataset.train {
        let rates = encoder.rates(sample.image.pixels());
        engine.reset_transients();
        let _ = engine.present(&rates, 100.0, true);
    }
    engine.snapshot()
}

fn eval_trains(network: &NetworkConfig) -> Vec<SpikeTrains> {
    let encoder = RateEncoder::new(network.frequency);
    let generator = EvalTrainGenerator::new(SEED, network.dt_ms);
    let dataset = synthetic_mnist(N_IMAGES, 1, 29);
    dataset
        .train
        .iter()
        .enumerate()
        .map(|(slot, sample)| {
            let rates = encoder.rates(sample.image.pixels());
            generator.generate(slot as u64, &rates, T_PRESENT_MS)
        })
        .collect()
}

fn serial_counts(
    network: &NetworkConfig,
    snapshot: &EvalSnapshot,
    trains: &[SpikeTrains],
) -> Vec<Vec<u32>> {
    let device = Device::new(DeviceConfig::default());
    let mut engine =
        WtaEngine::replica(network.clone(), &device, SEED, snapshot).expect("valid replica");
    trains.iter().map(|t| engine.present_frozen(t)).collect()
}

fn batched_counts(
    network: &NetworkConfig,
    snapshot: &EvalSnapshot,
    trains: &[SpikeTrains],
    batch: usize,
    device_cfg: DeviceConfig,
) -> Vec<Vec<u32>> {
    let device = Device::new(device_cfg);
    let mut engine =
        BatchedEngine::new(network.clone(), &device, snapshot, batch).expect("valid engine");
    let mut out = Vec::with_capacity(trains.len());
    for chunk in trains.chunks(batch) {
        let refs: Vec<&SpikeTrains> = chunk.iter().collect();
        out.extend(engine.present_frozen_batch(&refs));
    }
    out
}

fn assert_identity() {
    for (preset, format) in PRESETS {
        for delivery in [CurrentDelivery::Dense, CurrentDelivery::Sparse] {
            let network = NetworkConfig::from_preset(preset, 784, N_EXC).with_delivery(delivery);
            let snapshot = trained_snapshot(&network);
            let trains = eval_trains(&network);
            let serial = serial_counts(&network, &snapshot, &trains);
            assert!(
                serial.iter().flatten().map(|&c| u64::from(c)).sum::<u64>() > 0,
                "{format}/{delivery:?}: identity gate is vacuous on a silent network"
            );
            for batch in BATCHES {
                for (shape, device_cfg) in device_shapes() {
                    let batched = batched_counts(&network, &snapshot, &trains, batch, device_cfg);
                    assert_eq!(
                        serial, batched,
                        "{format}/{delivery:?}/batch={batch}/{shape}: \
                         batched lanes diverged from serial"
                    );
                }
            }
        }
    }
}

fn timed(run: impl FnMut()) -> (f64, usize) {
    measure::timed_floor(2, 0.4, run)
}

#[allow(clippy::too_many_arguments)]
fn run_record(
    mode: &str,
    device: &str,
    preset: &str,
    format: &str,
    batch: usize,
    swar_active: bool,
    lanes: usize,
    reps: usize,
    wall_s: f64,
    ips: f64,
    speedup: f64,
    provenance: &str,
) -> String {
    format!(
        "  {{\n    \"mode\": \"{mode}\",\n    \"device\": \"{device}\",\n    \
         \"preset\": \"{preset}\",\n    \"format\": \"{format}\",\n    \
         \"delivery\": \"Sparse\",\n    \"batch\": {batch},\n    \
         \"swar_active\": {swar_active},\n    \"lanes_per_word\": {lanes},\n    \
         \"images\": {N_IMAGES},\n    \"repetitions\": {reps},\n    \
         \"wall_s\": {wall_s:.4},\n    \"images_per_s\": {ips:.1},\n    \
         \"speedup_vs_batch1\": {speedup:.3},\n    \"provenance\": \"{provenance}\"\n  }}"
    )
}

fn main() {
    println!("== batched lock-step evaluation: 784 -> {N_EXC}, frozen snapshots ==\n");
    assert_identity();
    println!(
        "identity: OK — every lane equals serial present_frozen over \
         batch {BATCHES:?} x {{Q0.2, Q0.4, Q1.7}} x {{Dense, Sparse}} x both device shapes\n"
    );

    let host = DeviceConfig::host_parallelism();
    let provenance = format!(
        "measured in-process on a host exposing {host} CPU core(s); {N_IMAGES} images of \
         {T_PRESENT_MS} ms per run, repeated to >= 0.4 s wall per cell after one warmup; \
         sparse delivery; inline shape = serial device, pooled shape = 4 workers with \
         min_parallel_items 1 so every step launch pays pool dispatch; regenerate with \
         `cargo run -p bench --release --bin batched`"
    );

    let mut records: Vec<String> = Vec::new();
    let mut summaries: Vec<String> = Vec::new();
    for (shape, device_cfg) in device_shapes() {
        for (preset, format) in PRESETS {
            let network = NetworkConfig::from_preset(preset, 784, N_EXC)
                .with_delivery(CurrentDelivery::Sparse);
            let snapshot = trained_snapshot(&network);
            let trains = eval_trains(&network);
            let preset_name = format!("{preset:?}");

            let device = Device::new(device_cfg);
            let mut serial_engine = WtaEngine::replica(network.clone(), &device, SEED, &snapshot)
                .expect("valid replica");
            let (wall, reps) = timed(|| {
                for t in &trains {
                    let _ = serial_engine.present_frozen(t);
                }
            });
            let serial_ips = (N_IMAGES * reps) as f64 / wall;
            println!("{shape:>6} {format} serial: {serial_ips:>8.1} images/s");
            records.push(run_record(
                "serial_engine", shape, &preset_name, format, 1, false, 1, reps, wall,
                serial_ips, 1.0, &provenance,
            ));

            let mut batch1_ips = 0.0_f64;
            let mut best_gain = 0.0_f64;
            let mut swar_on = false;
            let mut lanes = 1usize;
            for batch in BATCHES {
                let device = Device::new(device_cfg);
                let mut engine = BatchedEngine::new(network.clone(), &device, &snapshot, batch)
                    .expect("valid engine");
                swar_on = engine.swar_active();
                lanes = engine.lanes().unwrap_or(1);
                let (wall, reps) = timed(|| {
                    for chunk in trains.chunks(batch) {
                        let refs: Vec<&SpikeTrains> = chunk.iter().collect();
                        let _ = engine.present_frozen_batch(&refs);
                    }
                });
                let ips = (N_IMAGES * reps) as f64 / wall;
                if batch == 1 {
                    batch1_ips = ips;
                }
                let speedup = if batch1_ips > 0.0 { ips / batch1_ips } else { 0.0 };
                if batch >= 8 {
                    best_gain = best_gain.max(speedup);
                }
                println!(
                    "{shape:>6} {format} b={batch:<2}: {ips:>8.1} images/s  {speedup:.2}x vs b=1"
                );
                records.push(run_record(
                    "batched_engine", shape, &preset_name, format, batch, swar_on, lanes, reps,
                    wall, ips, speedup, &provenance,
                ));
            }

            let (requirement, meets) = if shape == "pooled" {
                (
                    ">= 2.0x at batch >= 8 over batch = 1 on the pool-dispatch device",
                    best_gain >= 2.0,
                )
            } else {
                (
                    "informational: inline launches pay no dispatch latency, so only \
                     per-step bookkeeping amortizes",
                    true,
                )
            };
            summaries.push(format!(
                "  {{\n    \"metric\": \"batched_throughput_gain_{shape}\",\n    \
                 \"device\": \"{shape}\",\n    \"preset\": \"{preset_name}\",\n    \
                 \"value\": {best_gain:.3},\n    \"requirement\": \"{requirement}\",\n    \
                 \"meets_requirement\": {meets},\n    \"note\": \"{format}: SWAR {} \
                 ({lanes} lanes/word); batching amortizes the per-step launch cost over the \
                 batch, while the SWAR delivery fold scales with the image count — so the \
                 gain is launch-bound on the pooled shape and bookkeeping-bound on the \
                 inline shape\"\n  }}",
                if swar_on { "active" } else { "inactive" }
            ));
        }
    }

    records.extend(summaries);
    let json = format!("[\n{}\n]", records.join(",\n"));
    std::fs::write("/root/repo/results/BENCH_batched.json", json).unwrap();
    println!("\nwrote /root/repo/results/BENCH_batched.json");
}
