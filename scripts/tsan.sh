#!/usr/bin/env bash
# Runs the unsafe-surface suite and gpu-device unit tests under
# ThreadSanitizer, mirroring the `tsan` CI job.
#
# Needs nightly for -Zsanitizer=thread and -Zbuild-std (std must be
# instrumented too, which needs the rust-src component). Gracefully skips
# (exit 0 with a notice) when either is unavailable — e.g. offline
# containers. CI always runs it (see .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustc +nightly --version >/dev/null 2>&1; then
  echo "tsan.sh: no nightly toolchain; skipping. CI runs this job." >&2
  exit 0
fi
if ! rustup +nightly component list --installed 2>/dev/null | grep -q rust-src; then
  echo "tsan.sh: rust-src component missing (needed by -Zbuild-std);" \
       "skipping. CI runs this job." >&2
  exit 0
fi

target="$(rustc +nightly -vV | sed -n 's/^host: //p')"
export RUSTFLAGS="-Zsanitizer=thread"
export TSAN_OPTIONS="halt_on_error=1"
cargo +nightly test -Zbuild-std --target "$target" -p gpu-device --test unsafe_surface
exec cargo +nightly test -Zbuild-std --target "$target" -p gpu-device --lib
