#!/usr/bin/env bash
# Runs the curated unsafe-surface suite (crates/gpu-device/tests/
# unsafe_surface.rs) under Miri, mirroring the `miri` CI job.
#
# Gracefully skips (exit 0 with a notice) when the Miri component is not
# installed — e.g. offline containers where `rustup component add miri`
# cannot reach the network. CI always runs it (see .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
  echo "miri.sh: Miri not available on this toolchain (needs nightly +" \
       "'rustup component add miri'); skipping. CI runs this job." >&2
  exit 0
fi

export MIRIFLAGS="-Zmiri-disable-isolation"
cargo +nightly miri setup
exec cargo +nightly miri test -p gpu-device --test unsafe_surface
