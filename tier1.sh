#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): build + full test suite.
#
# Every PR must leave this green. The test suite includes the lazy-plasticity
# differential layer (tests/lazy_plasticity.rs, crates/*/tests/*.rs), which
# proves eager and lazy execution bit-identical; the sparse-delivery
# differential layer (tests/sparse_delivery.rs,
# crates/snn-learning/tests/delivery.rs), which proves the active-list
# delivery path bit-identical to the dense scan at any worker count; and
# the parallel-evaluation identity layer
# (crates/snn-learning/tests/parallel_eval.rs), which proves replica
# count, encoder pipelining, queue order and the suppression-window
# fast-forward are pure wall-clock knobs; the telemetry gate
# (tests/telemetry.rs), which validates the chrome-trace export against
# the DESIGN.md §11/§12 schema and asserts enabled-instrumentation
# overhead stays under 2%; and the serving identity layer
# (tests/serving.rs), which proves the snn-serve batch path bit-identical
# to offline snapshot evaluation at any worker count / queue order, that
# shutdown drains every accepted request exactly once, and that a full
# queue sheds with the typed Overloaded error. snn-serve's own unit +
# property tests (admission accounting) run via the crate test step.
# The batched identity layer (tests/batched.rs,
# crates/snn-learning/tests/parallel_eval.rs batched cases) proves every
# lane of a lock-step BatchedEngine dispatch — including the SWAR packed
# delivery fold for the narrow fixed-point presets — bit-identical to the
# serial present_frozen at any batch size, worker count or delivery mode.
# The parallel-training layer (crates/snn-learning/tests/parallel_train.rs)
# proves SeededMergeOrder shared-atomics training bit-identical at any
# worker count, replica-merge training reproducible and on-grid,
# mid-training checkpoints bit-exact, and accuracy parity with the serial
# trainer within cross-validation tolerance; it runs as an explicit step
# because its commit kernels (gpu-device AtomicGrid, DESIGN.md §14) are a
# determinism-critical surface.
# The sharding identity layer (tests/sharded.rs) proves the multi-device
# ShardedEngine — the excitatory layer partitioned row-wise across a
# pooled-allocator DeviceManager with per-step spike all-gather
# (DESIGN.md §16) — bit-identical to the single-device engine at shards
# {1,2,4} × both delivery modes × both plasticity rules, through
# training, normalization, snapshot round-trip and frozen evaluation;
# the trainer/eval/serve shard knobs are covered by the snn-learning and
# snn-serve crate tests.
#
# The snn-lint pass runs the workspace analyzer (DESIGN.md §15): a
# tokenizer + conservative call graph that PROVES the determinism
# property (no kernel/step entry point reaches an RNG or wall-clock
# sink, after use-alias expansion, with explicit audited waivers as the
# only escapes), checks the COMMIT_* atomic-ordering protocol by call
# shape, ratchets the classified unsafe surface against the committed
# baseline results/ANALYSIS_unsafe_audit.json, and enforces the line
# rules (SAFETY comments, unsafe-surface allow-list, transposed-view
# coherence, no hash-order iteration in hot paths, sync-shim discipline,
# trace-schema: every span/gauge name used in source must appear in
# DESIGN.md §11–§14/§16, atomic-ordering, lane-width). CI additionally
# uploads the --sarif log and verifies the ratchet baseline is in sync.
#
# The rustdoc pass holds the API docs warning-free (broken intra-doc
# links, bad code fences) on top of the per-crate #![deny(missing_docs)].
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q -p snn-serve
cargo test -q --release -p snn-learning --test parallel_train
cargo run --release -p snn-lint
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
