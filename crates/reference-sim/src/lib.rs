//! An independent, deliberately simple sequential simulator for sparse LIF
//! networks.
//!
//! The paper validates ParallelSpikeSim by checking that it "produce\[s\]
//! spiking activities similar to CARLsim" on a 10³-neuron / 10⁴-synapse
//! network (Fig. 4). CARLsim is a large external C++ code base; this crate
//! plays its role: a *separately implemented* simulator of the same network
//! semantics — plain nested loops, no device abstraction, no shared kernels
//! — so agreement between the two engines is meaningful cross-validation
//! rather than the same code run twice.
//!
//! Semantics (kept intentionally identical in both engines):
//! * explicit-Euler LIF update `dv/dt = a + b·v + c·I`, reset on threshold;
//! * exponentially decaying synaptic current with time constant `τ_syn`;
//! * spikes propagate with one-step delay along the synapse list.
//!
//! DESIGN.md §2 explains the CARLsim→reference-sim substitution; §4 maps
//! the cross-validation to the `fig4` experiment binary.
//!
//! # Example
//!
//! ```
//! use snn_core::network::RecurrentNetwork;
//! use reference_sim::ReferenceSimulator;
//!
//! let net = RecurrentNetwork::random(100, 1000, 0.2, 0.8, 7);
//! let mut sim = ReferenceSimulator::new(&net, 5.0, 0.5);
//! let counts = sim.run(&vec![4.0; 100], 200.0);
//! assert_eq!(counts.len(), 100);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use snn_core::config::LifParams;
use snn_core::network::RecurrentNetwork;
use snn_core::sim::SpikeRaster;

/// The sequential golden-model simulator.
#[derive(Debug, Clone)]
pub struct ReferenceSimulator {
    lif: LifParams,
    synapses: Vec<(u32, u32, f64)>,
    n_neurons: usize,
    v: Vec<f64>,
    refractory_ms: Vec<f64>,
    i_syn: Vec<f64>,
    spiked: Vec<bool>,
    tau_syn_ms: f64,
    dt_ms: f64,
    time_ms: f64,
    raster: SpikeRaster,
}

impl ReferenceSimulator {
    /// Builds a simulator over `network`.
    ///
    /// # Panics
    ///
    /// Panics if the network is invalid or the time constants are not
    /// positive.
    #[must_use]
    pub fn new(network: &RecurrentNetwork, tau_syn_ms: f64, dt_ms: f64) -> Self {
        network.validate().expect("invalid recurrent network");
        assert!(dt_ms > 0.0 && tau_syn_ms > 0.0, "time constants must be positive");
        ReferenceSimulator {
            lif: network.lif,
            synapses: network.synapses.iter().map(|s| (s.pre, s.post, s.weight)).collect(),
            n_neurons: network.n_neurons,
            v: vec![network.lif.v_init; network.n_neurons],
            refractory_ms: vec![0.0; network.n_neurons],
            i_syn: vec![0.0; network.n_neurons],
            spiked: vec![false; network.n_neurons],
            tau_syn_ms,
            dt_ms,
            time_ms: 0.0,
            raster: SpikeRaster::new(),
        }
    }

    /// Current simulated time (ms).
    #[must_use]
    pub fn time_ms(&self) -> f64 {
        self.time_ms
    }

    /// The recorded raster so far.
    #[must_use]
    pub fn raster(&self) -> &SpikeRaster {
        &self.raster
    }

    /// Consumes the simulator, returning its raster.
    #[must_use]
    pub fn into_raster(self) -> SpikeRaster {
        self.raster
    }

    /// Runs for `duration_ms` with constant external current `i_ext[j]`
    /// into every neuron `j`. Returns per-neuron spike counts.
    ///
    /// # Panics
    ///
    /// Panics if `i_ext.len()` differs from the population size.
    pub fn run(&mut self, i_ext: &[f64], duration_ms: f64) -> Vec<u32> {
        assert_eq!(i_ext.len(), self.n_neurons, "external current vector mismatch");
        let steps = (duration_ms / self.dt_ms).round() as u64;
        let decay = (-self.dt_ms / self.tau_syn_ms).exp();
        let mut counts = vec![0u32; self.n_neurons];
        for _ in 0..steps {
            for i in &mut self.i_syn {
                *i *= decay;
            }
            for &(pre, post, w) in &self.synapses {
                if self.spiked[pre as usize] {
                    self.i_syn[post as usize] += w;
                }
            }
            for j in 0..self.n_neurons {
                self.spiked[j] = false;
                if self.refractory_ms[j] > 0.0 {
                    self.refractory_ms[j] = (self.refractory_ms[j] - self.dt_ms).max(0.0);
                    self.v[j] = self.lif.v_reset;
                    continue;
                }
                let dv = self.lif.a + self.lif.b * self.v[j] + self.lif.c * (i_ext[j] + self.i_syn[j]);
                self.v[j] += dv * self.dt_ms;
                if self.v[j] > self.lif.v_threshold {
                    self.v[j] = self.lif.v_reset;
                    self.refractory_ms[j] = self.lif.t_refractory_ms;
                    self.spiked[j] = true;
                    counts[j] += 1;
                    self.raster.push(self.time_ms, j as u32);
                }
            }
            self.time_ms += self.dt_ms;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_without_drive() {
        let net = RecurrentNetwork::random(20, 100, 0.0, 1.0, 1);
        let mut sim = ReferenceSimulator::new(&net, 5.0, 0.5);
        let counts = sim.run(&[0.0; 20], 500.0);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn constant_drive_gives_analytic_rate() {
        // Single neuron, no synapses: rate must match the LIF closed form.
        let net = RecurrentNetwork {
            n_neurons: 2,
            synapses: vec![],
            lif: LifParams::default(),
        };
        let mut sim = ReferenceSimulator::new(&net, 5.0, 0.01);
        let i = 6.0;
        let counts = sim.run(&[i, 0.0], 10_000.0);
        let neuron = snn_core::neuron::LifNeuron::new(LifParams::default());
        let analytic = neuron.analytic_rate_hz(i);
        let measured = f64::from(counts[0]) / 10.0;
        let rel = (measured - analytic).abs() / analytic;
        assert!(rel < 0.05, "measured {measured} Hz vs analytic {analytic} Hz");
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn raster_matches_counts() {
        let net = RecurrentNetwork::random(10, 50, 0.2, 0.8, 2);
        let mut sim = ReferenceSimulator::new(&net, 5.0, 0.5);
        let counts = sim.run(&[4.0; 10], 500.0);
        assert_eq!(counts, sim.raster().counts(10));
    }

    #[test]
    fn agrees_with_parallel_engine() {
        // The Fig. 4 check in miniature: identical network + stimulus,
        // independent implementations, identical spike trains.
        use gpu_device::{Device, DeviceConfig};
        use snn_core::sim::GenericEngine;

        let net = RecurrentNetwork::random(200, 2000, 0.1, 0.6, 11);
        let i_ext: Vec<f64> = (0..200).map(|j| 2.0 + 3.0 * f64::from(j % 5 == 0)).collect();

        let mut reference = ReferenceSimulator::new(&net, 5.0, 0.5);
        let ref_counts = reference.run(&i_ext, 1000.0);

        let device = Device::new(DeviceConfig::default().with_workers(4));
        let mut engine = GenericEngine::new(&net, &device, 5.0, 0.5);
        let eng_counts = engine.run(&i_ext, 1000.0);

        assert_eq!(ref_counts, eng_counts, "spike counts must agree exactly");
        let coincidence = engine.raster().coincidence(reference.raster(), 1e-9);
        assert_eq!(coincidence, 1.0, "spike trains must agree exactly");
    }
}
