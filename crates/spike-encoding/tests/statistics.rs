//! Property and statistical tests for the encoding layer.

use proptest::prelude::*;
use snn_core::config::FrequencyRange;
use spike_encoding::{EncodingSchedule, FrequencyController, PoissonTrain, RateEncoder, RegularTrain};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rate map is affine and stays within the configured range.
    #[test]
    fn rates_within_range(f_min in 0.0f64..20.0, span in 0.1f64..200.0, px in 0u8..=255) {
        let enc = RateEncoder::new(FrequencyRange::new(f_min, f_min + span));
        let f = enc.frequency_for(px);
        prop_assert!(f >= f_min - 1e-12 && f <= f_min + span + 1e-12);
    }

    /// Inversion is an involution on frequencies: invert twice == original.
    #[test]
    fn inverted_encoder_mirrors(px in 0u8..=255) {
        let range = FrequencyRange::new(1.0, 22.0);
        let direct = RateEncoder::new(range);
        let inverted = RateEncoder::new(range).inverted();
        prop_assert!((direct.frequency_for(px) - inverted.frequency_for(255 - px)).abs() < 1e-9);
    }

    /// Regular trains have exactly period-spaced spikes inside the window.
    #[test]
    fn regular_trains_spacing(rate in 1.0f64..500.0, phase in 0.0f64..5.0) {
        let times = RegularTrain::new(phase).spike_times(rate, 1000.0);
        let period = 1000.0 / rate;
        for pair in times.windows(2) {
            prop_assert!((pair[1] - pair[0] - period).abs() < 1e-9);
        }
        prop_assert!(times.iter().all(|&t| t < 1000.0));
    }

    /// Boost followed by reduce preserves the expected spike budget for
    /// every pixel intensity, not just the mean.
    #[test]
    fn frequency_controller_budget_invariant(factor in 0.2f64..8.0, px in 0u8..=255) {
        let c = FrequencyController::new(EncodingSchedule::baseline());
        let base = c.base().expected_spikes_per_train(px);
        let fast = c.boost_and_reduce(factor).expected_spikes_per_train(px);
        prop_assert!((base - fast).abs() < 1e-9);
    }
}

/// Statistical check: Poisson trains hit their target rate within 5% over
/// a long window, across the paper's frequency range.
#[test]
fn poisson_rates_are_calibrated() {
    for (stream, target) in [(0u64, 1.0f64), (1, 5.0), (2, 22.0), (3, 78.0)] {
        let train = PoissonTrain::new(7, stream);
        let measured = train.empirical_rate_hz(target, 2_000_000.0, 0.5);
        let sigma = (target / 2000.0_f64).sqrt(); // Poisson std-dev of the rate estimate
        let rel = (measured - target).abs() / target;
        assert!(rel < (4.0 * sigma / target).max(0.03), "stream {stream}: target {target} Hz, measured {measured} Hz");
    }
}

/// The coefficient of variation of Poisson inter-spike intervals is ~1
/// (the memorylessness the learning dynamics assume).
#[test]
fn poisson_isi_cv_near_one() {
    let train = PoissonTrain::new(3, 0);
    let times = train.spike_times(20.0, 2_000_000.0, 0.5);
    let isis: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = isis.iter().sum::<f64>() / isis.len() as f64;
    let var = isis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / isis.len() as f64;
    let cv = var.sqrt() / mean;
    assert!((cv - 1.0).abs() < 0.05, "ISI CV = {cv}");
}
