//! The two-phase frequency-control module (Section III-A).

use serde::{Deserialize, Serialize};
use snn_core::config::FrequencyRange;

/// One encoding schedule: the input frequency range and the per-image
/// presentation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodingSchedule {
    /// The spike-train frequency range.
    pub range: FrequencyRange,
    /// How long each image is presented to the network (ms).
    pub t_learn_ms: f64,
}

impl EncodingSchedule {
    /// The paper's baseline: 1–22 Hz at 500 ms per image.
    #[must_use]
    pub fn baseline() -> Self {
        EncodingSchedule { range: FrequencyRange::new(1.0, 22.0), t_learn_ms: 500.0 }
    }

    /// The paper's high-frequency learning mode: 5–78 Hz at 100 ms per
    /// image (Section IV-C).
    #[must_use]
    pub fn high_frequency() -> Self {
        EncodingSchedule { range: FrequencyRange::new(5.0, 78.0), t_learn_ms: 100.0 }
    }

    /// Total simulated learning time for `n_images` (ms) — the quantity the
    /// paper's "542 minutes vs 131 minutes" comparison is about.
    #[must_use]
    pub fn total_learning_time_ms(&self, n_images: usize) -> f64 {
        self.t_learn_ms * n_images as f64
    }

    /// Expected spikes an average-intensity pixel train emits per
    /// presentation — the information-delivery budget that motivates the
    /// frequency boost.
    #[must_use]
    pub fn expected_spikes_per_train(&self, mean_intensity: u8) -> f64 {
        self.range.frequency_for(mean_intensity) * self.t_learn_ms / 1000.0
    }
}

/// The frequency-control module: derives faster schedules from a base one.
///
/// "Frequency control module works in two phases: frequency boost and
/// learning time reduction." Boosting multiplies the frequency range;
/// reduction shrinks the presentation window so the (boosted) trains still
/// deliver enough spikes per image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyController {
    base: EncodingSchedule,
}

impl FrequencyController {
    /// Creates a controller around `base`.
    #[must_use]
    pub fn new(base: EncodingSchedule) -> Self {
        FrequencyController { base }
    }

    /// The base schedule.
    #[must_use]
    pub fn base(&self) -> EncodingSchedule {
        self.base
    }

    /// Phase 1 — frequency boost: scales both range endpoints by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn boost(&self, factor: f64) -> EncodingSchedule {
        assert!(factor > 0.0, "boost factor must be positive");
        EncodingSchedule {
            range: FrequencyRange::new(
                self.base.range.f_min_hz * factor,
                self.base.range.f_max_hz * factor,
            ),
            t_learn_ms: self.base.t_learn_ms,
        }
    }

    /// Phase 2 — learning-time reduction on top of a boost: the presentation
    /// window shrinks by the same factor the frequency grew, keeping the
    /// expected spike count per train constant.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn boost_and_reduce(&self, factor: f64) -> EncodingSchedule {
        let boosted = self.boost(factor);
        EncodingSchedule { range: boosted.range, t_learn_ms: self.base.t_learn_ms / factor }
    }

    /// A schedule with an explicit `f_max` (keeping the base `f_min` and
    /// scaling `t_learn` to preserve the spike budget) — the sweep axis of
    /// Fig. 7(a).
    #[must_use]
    pub fn with_f_max(&self, f_max_hz: f64) -> EncodingSchedule {
        let factor = f_max_hz / self.base.range.f_max_hz;
        EncodingSchedule {
            range: FrequencyRange::new(self.base.range.f_min_hz, f_max_hz),
            t_learn_ms: self.base.t_learn_ms / factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedules() {
        let b = EncodingSchedule::baseline();
        assert_eq!((b.range.f_min_hz, b.range.f_max_hz, b.t_learn_ms), (1.0, 22.0, 500.0));
        let h = EncodingSchedule::high_frequency();
        assert_eq!((h.range.f_min_hz, h.range.f_max_hz, h.t_learn_ms), (5.0, 78.0, 100.0));
    }

    #[test]
    fn paper_speedup_ratio_is_about_3_8x() {
        // 500 ms → 100 ms per image: total learning time shrinks ~5× in
        // simulated time; the paper reports 542 min → 131 min ≈ 4.1×
        // wall-clock (simulation overheads differ). Our simulated-time
        // ratio must be exactly 5.
        let b = EncodingSchedule::baseline().total_learning_time_ms(60_000);
        let h = EncodingSchedule::high_frequency().total_learning_time_ms(60_000);
        assert!((b / h - 5.0).abs() < 1e-12);
        // 542 min * 60_000 images sanity: baseline total is 8.33 simulated
        // hours.
        assert_eq!(b, 30_000_000.0);
    }

    #[test]
    fn boost_scales_range_only() {
        let c = FrequencyController::new(EncodingSchedule::baseline());
        let s = c.boost(2.0);
        assert_eq!(s.range.f_min_hz, 2.0);
        assert_eq!(s.range.f_max_hz, 44.0);
        assert_eq!(s.t_learn_ms, 500.0);
    }

    #[test]
    fn boost_and_reduce_preserves_spike_budget() {
        let c = FrequencyController::new(EncodingSchedule::baseline());
        let s = c.boost_and_reduce(4.0);
        assert_eq!(s.t_learn_ms, 125.0);
        let base_budget = c.base().expected_spikes_per_train(128);
        let fast_budget = s.expected_spikes_per_train(128);
        assert!((base_budget - fast_budget).abs() < 1e-9);
    }

    #[test]
    fn with_f_max_hits_requested_maximum() {
        let c = FrequencyController::new(EncodingSchedule::baseline());
        let s = c.with_f_max(78.0);
        assert_eq!(s.range.f_max_hz, 78.0);
        assert_eq!(s.range.f_min_hz, 1.0);
        assert!((s.t_learn_ms - 500.0 * 22.0 / 78.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "boost factor must be positive")]
    fn non_positive_boost_rejected() {
        let _ = FrequencyController::new(EncodingSchedule::baseline()).boost(0.0);
    }
}
