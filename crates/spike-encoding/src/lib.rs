//! Input encoding for the ParallelSpikeSim reproduction.
//!
//! The paper inserts "an additional module between input images and spiking
//! neuron simulator that allows controlling the frequency of the input spike
//! train" (Section III-A). This crate is that module:
//!
//! * [`RateEncoder`] — converts 8-bit pixel intensities into per-train spike
//!   frequencies, linear within a `[f_min, f_max]` range (Fig. 1d).
//! * [`PoissonTrain`] / [`RegularTrain`] — standalone spike-train generators
//!   over counter-based random streams, used for raster figures and tests
//!   (the learning engine generates its Poisson trains on-device with the
//!   same addressing).
//! * [`FrequencyController`] — the two-phase frequency-control module:
//!   *frequency boost* (widen the range toward the 5–78 Hz high-frequency
//!   regime) and *learning-time reduction* (shrink the per-image
//!   presentation window, 500 ms → 100 ms in the paper).
//! * [`EvalTrainGenerator`] / [`TrainPipeline`] — precomputed, image-keyed
//!   spike trains for the frozen evaluation path, and the double-buffered
//!   encoder pipeline that generates the next presentation's trains while
//!   the current one simulates.
//!
//! DESIGN.md §5 records the frequency-range calibration; §9 specifies the
//! precomputed-train determinism contract of the evaluation path.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod latency;
mod pipeline;
mod rate;
mod trains;

pub use controller::{EncodingSchedule, FrequencyController};
pub use latency::LatencyEncoder;
pub use pipeline::{EvalTrainGenerator, TrainPipeline};
pub use rate::RateEncoder;
pub use trains::{PoissonTrain, RegularTrain};
