//! Standalone spike-train generators.

use gpu_device::Philox4x32;

/// A Poisson spike train over a counter-based random stream.
///
/// Spike decisions are addressed by `(train id, step)` exactly as the
/// learning engine addresses its on-device draws, so a standalone train and
/// an engine input with the same seed/stream produce identical spikes.
#[derive(Debug, Clone, Copy)]
pub struct PoissonTrain {
    philox: Philox4x32,
    train_id: u64,
}

impl PoissonTrain {
    /// Creates a train keyed by (`seed`, `train_id`).
    #[must_use]
    pub fn new(seed: u64, train_id: u64) -> Self {
        PoissonTrain { philox: Philox4x32::new(seed), train_id }
    }

    /// Whether the train spikes at `step`, given a per-step probability.
    #[must_use]
    pub fn spikes_at(&self, step: u64, p_spike: f64) -> bool {
        self.philox.uniform(self.train_id, step) < p_spike
    }

    /// Generates all spike times (ms) for a constant-rate train over
    /// `duration_ms` at step `dt_ms`.
    #[must_use]
    pub fn spike_times(&self, rate_hz: f64, duration_ms: f64, dt_ms: f64) -> Vec<f64> {
        let p = (rate_hz * dt_ms / 1000.0).clamp(0.0, 1.0);
        let steps = (duration_ms / dt_ms).round() as u64;
        (0..steps)
            .filter(|&s| self.spikes_at(s, p))
            .map(|s| s as f64 * dt_ms)
            .collect()
    }

    /// Empirical rate (Hz) over a window — convenience for tests and
    /// figure harnesses.
    #[must_use]
    pub fn empirical_rate_hz(&self, rate_hz: f64, duration_ms: f64, dt_ms: f64) -> f64 {
        let n = self.spike_times(rate_hz, duration_ms, dt_ms).len();
        n as f64 / (duration_ms / 1000.0)
    }
}

/// A regular (evenly spaced) spike train, for deterministic stimuli.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegularTrain {
    /// Phase offset of the first spike (ms).
    pub phase_ms: f64,
}

impl RegularTrain {
    /// A train with first spike at `phase_ms`.
    #[must_use]
    pub fn new(phase_ms: f64) -> Self {
        RegularTrain { phase_ms }
    }

    /// Spike times (ms) at `rate_hz` over `duration_ms`.
    #[must_use]
    pub fn spike_times(&self, rate_hz: f64, duration_ms: f64) -> Vec<f64> {
        if rate_hz <= 0.0 {
            return Vec::new();
        }
        let period = 1000.0 / rate_hz;
        let mut times = Vec::new();
        let mut t = self.phase_ms;
        while t < duration_ms {
            times.push(t);
            t += period;
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_approximates_target() {
        let train = PoissonTrain::new(42, 0);
        for target in [5.0, 22.0, 78.0] {
            let measured = train.empirical_rate_hz(target, 200_000.0, 0.5);
            let rel = (measured - target).abs() / target;
            assert!(rel < 0.05, "target {target} Hz, measured {measured} Hz");
        }
    }

    #[test]
    fn poisson_trains_are_reproducible_and_distinct() {
        let a = PoissonTrain::new(1, 0);
        let b = PoissonTrain::new(1, 0);
        let c = PoissonTrain::new(1, 1);
        assert_eq!(a.spike_times(20.0, 1000.0, 0.5), b.spike_times(20.0, 1000.0, 0.5));
        assert_ne!(a.spike_times(20.0, 1000.0, 0.5), c.spike_times(20.0, 1000.0, 0.5));
    }

    #[test]
    fn zero_rate_never_spikes() {
        let train = PoissonTrain::new(7, 3);
        assert!(train.spike_times(0.0, 10_000.0, 0.5).is_empty());
    }

    #[test]
    fn saturated_rate_spikes_every_step() {
        let train = PoissonTrain::new(7, 3);
        // 1/dt = 2000 Hz saturates the per-step probability at 1.
        let times = train.spike_times(2000.0, 100.0, 0.5);
        assert_eq!(times.len(), 200);
    }

    #[test]
    fn regular_train_is_evenly_spaced() {
        let t = RegularTrain::new(2.0);
        let times = t.spike_times(100.0, 50.0);
        assert_eq!(times.len(), 5); // 2, 12, 22, 32, 42
        for pair in times.windows(2) {
            assert!((pair[1] - pair[0] - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn regular_train_zero_rate_is_silent() {
        assert!(RegularTrain::new(0.0).spike_times(0.0, 100.0).is_empty());
    }
}
