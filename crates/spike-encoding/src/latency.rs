//! First-spike latency coding — an alternative to rate coding where each
//! pixel fires exactly once, earlier for brighter pixels.
//!
//! The paper's pipeline is purely rate-coded; latency coding is the
//! standard "what's next" for fast SNN inference (information arrives in
//! one spike wave instead of a rate estimate), so it is provided as an
//! extension with the same deterministic, seedless semantics.

use serde::{Deserialize, Serialize};

/// Encodes pixel intensity as time-to-first-spike within a window:
/// `t = window · (1 − I/255)` for pixels above the activity threshold;
/// dimmer pixels fire later, sub-threshold pixels never fire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEncoder {
    window_ms: f64,
    threshold: u8,
}

impl LatencyEncoder {
    /// Creates an encoder over a spike window of `window_ms`, with pixels
    /// at or below `threshold` staying silent.
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive.
    #[must_use]
    pub fn new(window_ms: f64, threshold: u8) -> Self {
        assert!(window_ms > 0.0, "latency window must be positive");
        LatencyEncoder { window_ms, threshold }
    }

    /// The spike window (ms).
    #[must_use]
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// The spike time of one pixel, or `None` if it stays silent.
    #[must_use]
    pub fn spike_time(&self, intensity: u8) -> Option<f64> {
        if intensity <= self.threshold {
            return None;
        }
        Some(self.window_ms * (1.0 - f64::from(intensity) / 255.0))
    }

    /// Encodes a whole image into per-train first-spike times.
    #[must_use]
    pub fn spike_times(&self, pixels: &[u8]) -> Vec<Option<f64>> {
        pixels.iter().map(|&p| self.spike_time(p)).collect()
    }

    /// The train indices that fire during simulation step `step` of length
    /// `dt_ms`, for a previously encoded image.
    #[must_use]
    pub fn spikes_in_step(times: &[Option<f64>], step: u64, dt_ms: f64) -> Vec<u32> {
        let lo = step as f64 * dt_ms;
        let hi = lo + dt_ms;
        times
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                t.filter(|&t| t >= lo && t < hi).map(|_| i as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brighter_pixels_fire_earlier() {
        let e = LatencyEncoder::new(100.0, 0);
        let bright = e.spike_time(255).unwrap();
        let mid = e.spike_time(128).unwrap();
        let dim = e.spike_time(1).unwrap();
        assert!(bright < mid && mid < dim);
        assert_eq!(bright, 0.0);
        assert!(dim < 100.0);
    }

    #[test]
    fn subthreshold_pixels_stay_silent() {
        let e = LatencyEncoder::new(50.0, 32);
        assert_eq!(e.spike_time(0), None);
        assert_eq!(e.spike_time(32), None);
        assert!(e.spike_time(33).is_some());
    }

    #[test]
    fn every_active_pixel_fires_exactly_once_across_steps() {
        let e = LatencyEncoder::new(20.0, 10);
        let pixels: Vec<u8> = (0..=255).step_by(5).map(|p| p as u8).collect();
        let times = e.spike_times(&pixels);
        let dt = 0.5;
        let mut fired = vec![0u32; pixels.len()];
        for step in 0..((20.0 / dt) as u64 + 1) {
            for i in LatencyEncoder::spikes_in_step(&times, step, dt) {
                fired[i as usize] += 1;
            }
        }
        for (i, (&count, &px)) in fired.iter().zip(&pixels).enumerate() {
            let expected = u32::from(px > 10);
            assert_eq!(count, expected, "pixel {i} (intensity {px}) fired {count} times");
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = LatencyEncoder::new(0.0, 0);
    }
}
