//! Pixel-intensity → spike-frequency rate coding (Fig. 1d).

use serde::{Deserialize, Serialize};
use snn_core::config::FrequencyRange;

/// Converts 8-bit pixel intensities into per-train spike frequencies.
///
/// "Pixel intensity of input images, which is an 8-bit value, is encoded
/// into specific spiking frequency of one spike train … Frequency is in a
/// range between `f_input_max` and `f_input_min`, and proportional to the
/// pixel intensity" (Section III-B). With `invert` set, the mapping flips so
/// that *low* stored intensity maps to `f_max` — the convention for data
/// where ink is darker than the background.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEncoder {
    range: FrequencyRange,
    invert: bool,
}

impl RateEncoder {
    /// Creates an encoder over `range` with the direct mapping
    /// (intensity 255 → `f_max`).
    #[must_use]
    pub fn new(range: FrequencyRange) -> Self {
        RateEncoder { range, invert: false }
    }

    /// Flips the mapping so intensity 0 → `f_max`.
    #[must_use]
    pub fn inverted(mut self) -> Self {
        self.invert = true;
        self
    }

    /// The frequency range.
    #[must_use]
    pub fn range(&self) -> FrequencyRange {
        self.range
    }

    /// The frequency (Hz) assigned to one pixel.
    #[must_use]
    pub fn frequency_for(&self, intensity: u8) -> f64 {
        let i = if self.invert { 255 - intensity } else { intensity };
        self.range.frequency_for(i)
    }

    /// Encodes a whole image into per-train frequencies.
    #[must_use]
    pub fn rates(&self, pixels: &[u8]) -> Vec<f64> {
        pixels.iter().map(|&p| self.frequency_for(p)).collect()
    }

    /// The expected total input spike rate (Hz summed over trains) for an
    /// image — a cheap activity predictor used to sanity-check workloads.
    #[must_use]
    pub fn total_rate_hz(&self, pixels: &[u8]) -> f64 {
        pixels.iter().map(|&p| self.frequency_for(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> RateEncoder {
        RateEncoder::new(FrequencyRange::new(1.0, 22.0))
    }

    #[test]
    fn endpoints_map_to_range_limits() {
        let e = encoder();
        assert_eq!(e.frequency_for(0), 1.0);
        assert_eq!(e.frequency_for(255), 22.0);
    }

    #[test]
    fn mapping_is_monotone() {
        let e = encoder();
        let mut prev = -1.0;
        for p in 0..=255u8 {
            let f = e.frequency_for(p);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn inverted_mapping_flips_endpoints() {
        let e = encoder().inverted();
        assert_eq!(e.frequency_for(0), 22.0);
        assert_eq!(e.frequency_for(255), 1.0);
    }

    #[test]
    fn rates_covers_every_pixel() {
        let e = encoder();
        let pixels = [0u8, 128, 255];
        let rates = e.rates(&pixels);
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[0], 1.0);
        assert_eq!(rates[2], 22.0);
        assert!((e.total_rate_hz(&pixels) - rates.iter().sum::<f64>()).abs() < 1e-12);
    }
}
