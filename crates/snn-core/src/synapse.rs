//! The plastic synapse population: conductance storage, update application,
//! quantization, statistics, and the lazy-plasticity settle machinery
//! (deferred post-spike events plus the touch-time settle API).

use crate::config::{NetworkConfig, Precision, StdpMagnitudes};
use crate::stdp::{PlasticityRule, UpdateKind};
use gpu_device::Philox4x32;
use qformat::{Quantizer, Rounding};
use serde::{Deserialize, Serialize};

/// The all-to-all conductance matrix between the input trains and the
/// excitatory layer.
///
/// Layout is row-major `[post][pre]`, so each excitatory neuron's receptive
/// field (its "conductance array" in the paper's terms) is one contiguous
/// row — the access pattern of both the current-accumulation and the
/// post-spike STDP kernels.
///
/// Conductances are stored as `f64` but, under a fixed-point
/// [`Precision`], every value is kept exactly on the format's grid: each
/// update computes `G ± ΔG` in float and immediately re-quantizes with the
/// configured rounding mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynapseMatrix {
    n_pre: usize,
    n_post: usize,
    g: Vec<f64>,
    g_min: f64,
    g_max: f64,
    magnitudes: StdpMagnitudes,
    quantizer: Option<Quantizer>,
    /// Global post index of local row 0 — zero for a whole-layer matrix,
    /// the shard's partition offset for a row slice produced by
    /// [`SynapseMatrix::shard_rows`]. Every per-synapse Philox stream is
    /// keyed by the *global* flat index `(row_origin + post) * n_pre +
    /// pre`, which is what makes a sharded engine's draws bit-identical
    /// to the single-device engine's (DESIGN.md §16).
    #[serde(default)]
    row_origin: usize,
}

impl SynapseMatrix {
    /// Creates the matrix with conductances drawn uniformly from the
    /// configured init range (then snapped to the grid under fixed-point
    /// precision). `seed` keys the reproducible init stream.
    #[must_use]
    pub fn new_random(cfg: &NetworkConfig, seed: u64) -> Self {
        let quantizer = match cfg.precision {
            Precision::Float32 => None,
            Precision::Fixed(format) => Some(Quantizer::new(format, cfg.rounding)),
        };
        let (lo_frac, hi_frac) = cfg.init_range;
        let lo = cfg.g_min + lo_frac * (cfg.g_max - cfg.g_min);
        let hi = cfg.g_min + hi_frac * (cfg.g_max - cfg.g_min);
        let philox = Philox4x32::new(seed ^ 0x5e_ed_1e_af);
        let n = cfg.n_inputs * cfg.n_excitatory;
        let g = (0..n)
            .map(|idx| {
                let u = philox.uniform(idx as u64, 0);
                let raw = lo + u * (hi - lo);
                match &quantizer {
                    None => raw,
                    Some(q) => q.quantize_f64(raw, philox.uniform2(idx as u64, 0)),
                }
            })
            .collect();
        SynapseMatrix {
            n_pre: cfg.n_inputs,
            n_post: cfg.n_excitatory,
            g,
            g_min: cfg.g_min,
            g_max: cfg.g_max,
            magnitudes: cfg.magnitudes,
            quantizer,
            row_origin: 0,
        }
    }

    /// Global post index of this matrix's local row 0 (zero unless the
    /// matrix is a [`SynapseMatrix::shard_rows`] slice).
    #[must_use]
    pub fn row_origin(&self) -> usize {
        self.row_origin
    }

    /// Slices rows `lo..hi` into a standalone shard matrix whose
    /// `row_origin` records the global index of its first row. Because
    /// [`SynapseMatrix::new_random`] keys the init draw of every synapse
    /// by its global flat index, slicing a freshly initialized matrix
    /// yields exactly the rows a single-device engine would hold — and
    /// because every update draw is keyed by the global index too, the
    /// shard *stays* bit-identical to the corresponding rows of an
    /// unsharded engine as learning proceeds.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi <= n_post`.
    #[must_use]
    pub fn shard_rows(&self, lo: usize, hi: usize) -> SynapseMatrix {
        assert!(lo < hi && hi <= self.n_post, "shard range {lo}..{hi} out of {}", self.n_post);
        SynapseMatrix {
            n_pre: self.n_pre,
            n_post: hi - lo,
            g: self.g[lo * self.n_pre..hi * self.n_pre].to_vec(),
            g_min: self.g_min,
            g_max: self.g_max,
            magnitudes: self.magnitudes,
            quantizer: self.quantizer,
            row_origin: self.row_origin + lo,
        }
    }

    /// Reassembles shard matrices (ascending, contiguous `row_origin`
    /// ranges) into one whole-layer matrix — the gather side of
    /// [`SynapseMatrix::shard_rows`], used when a sharded engine
    /// snapshots or checkpoints its learned state.
    ///
    /// # Panics
    ///
    /// Panics if the shards are empty, disagree on shape/bounds, or do
    /// not tile a contiguous `0..n` row range.
    #[must_use]
    pub fn concat_rows(shards: &[&SynapseMatrix]) -> SynapseMatrix {
        let first = shards.first().expect("concat of zero shards");
        assert_eq!(first.row_origin, 0, "the first shard must start at row 0");
        let mut g = Vec::with_capacity(shards.iter().map(|s| s.g.len()).sum());
        let mut next_row = 0usize;
        for s in shards {
            assert_eq!(s.n_pre, first.n_pre, "shard pre population mismatch");
            assert_eq!(s.row_origin, next_row, "shards must tile contiguous row ranges");
            assert_eq!((s.g_min, s.g_max), (first.g_min, first.g_max), "shard bounds mismatch");
            g.extend_from_slice(&s.g);
            next_row += s.n_post;
        }
        SynapseMatrix {
            n_pre: first.n_pre,
            n_post: next_row,
            g,
            g_min: first.g_min,
            g_max: first.g_max,
            magnitudes: first.magnitudes,
            quantizer: first.quantizer,
            row_origin: 0,
        }
    }

    /// Number of pre-synaptic inputs.
    #[must_use]
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Number of post-synaptic neurons.
    #[must_use]
    pub fn n_post(&self) -> usize {
        self.n_post
    }

    /// Total synapse count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Whether the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }

    /// The conductance bounds `(g_min, g_max)`.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.g_min, self.g_max)
    }

    /// The storage quantizer, or `None` for full-precision matrices. The
    /// replica-merge trainer uses this to snap averaged weights back onto
    /// the same grid the matrix stores.
    #[must_use]
    pub fn quantizer(&self) -> Option<Quantizer> {
        self.quantizer
    }

    /// One neuron's receptive field: the conductances of all its incoming
    /// synapses (the paper's per-neuron "conductance array", Fig. 5).
    #[must_use]
    pub fn row(&self, post: usize) -> &[f64] {
        &self.g[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// Mutable view of one neuron's receptive field.
    pub fn row_mut(&mut self, post: usize) -> &mut [f64] {
        &mut self.g[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// The full flat conductance slice (row-major `[post][pre]`).
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.g
    }

    /// Mutable full flat conductance slice. Used by the engine's row-parallel
    /// kernels; values written here must already be on the grid.
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.g
    }

    /// The conductance of synapse (`pre` → `post`).
    #[must_use]
    pub fn get(&self, pre: usize, post: usize) -> f64 {
        self.g[post * self.n_pre + pre]
    }

    /// The copyable update context used by the engine's parallel kernels:
    /// it carries everything needed to compute a conductance transition
    /// without borrowing the matrix itself.
    #[must_use]
    pub fn update_ctx(&self) -> UpdateCtx {
        UpdateCtx {
            magnitudes: self.magnitudes,
            g_min: self.g_min,
            g_max: self.g_max,
            quantizer: self.quantizer,
        }
    }

    /// Builds the settle context the lazy-plasticity kernels thread through
    /// every touch-time settle: the update transition plus the rule and the
    /// Philox generator, with the draw-elision flags resolved once.
    #[must_use]
    pub fn settle_ctx<'a>(
        &self,
        rule: &'a dyn PlasticityRule,
        philox: Philox4x32,
    ) -> SettleCtx<'a> {
        let ctx = self.update_ctx();
        SettleCtx {
            accept_draws: rule.consumes_acceptance_draw(),
            round_draws: ctx.consumes_rounding_draw(),
            n_pre: self.n_pre,
            row_origin: self.row_origin,
            ctx,
            rule,
            philox,
        }
    }

    /// Settles every pending event of `ledger` into this matrix, serially
    /// on the host, then clears the ledger. The engine performs the same
    /// work on-device via the gather kernels; this entry point lets tests
    /// and tools drive the settle contract directly.
    ///
    /// `last_pre[i]` must be input `i`'s most recent spike time — under the
    /// deferral protocol it equals the value the eager path would have read
    /// at each pending event (see DESIGN.md §lazy-plasticity).
    ///
    /// # Panics
    ///
    /// Panics if the ledger or `last_pre` shape does not match the matrix.
    pub fn settle_all(
        &mut self,
        ledger: &mut PlasticityLedger,
        rule: &dyn PlasticityRule,
        philox: Philox4x32,
        last_pre: &[f64],
    ) {
        assert_eq!(ledger.n_pre, self.n_pre, "ledger pre population mismatch");
        assert_eq!(last_pre.len(), self.n_pre, "last_pre length mismatch");
        let sctx = self.settle_ctx(rule, philox);
        let n_pre = self.n_pre;
        let (events, applied, active) = ledger.split();
        for &j in active {
            let j = j as usize;
            let evs: &[PostEvent] = &events[j];
            let g_row = &mut self.g[j * n_pre..(j + 1) * n_pre];
            let a_row = &mut applied[j * n_pre..(j + 1) * n_pre];
            for (i, (g, a)) in g_row.iter_mut().zip(a_row.iter_mut()).enumerate() {
                sctx.settle_synapse(g, a, evs, j, i, last_pre[i]);
            }
        }
        ledger.clear_settled();
    }

    /// Applies `kind` to the conductance value `g`, returning the new
    /// (clamped, quantized) value. `uniform` feeds stochastic rounding.
    #[must_use]
    pub fn updated_value(&self, g: f64, kind: UpdateKind, uniform: f64) -> f64 {
        self.update_ctx().updated(g, kind, uniform)
    }

    /// Applies `kind` to synapse (`pre` → `post`) in place.
    pub fn apply(&mut self, pre: usize, post: usize, kind: UpdateKind, uniform: f64) {
        let idx = post * self.n_pre + pre;
        self.g[idx] = self.updated_value(self.g[idx], kind, uniform);
    }

    /// Mean conductance.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.g.is_empty() {
            return 0.0;
        }
        self.g.iter().sum::<f64>() / self.g.len() as f64
    }

    /// Histogram of all conductances over `bins` equal-width bins spanning
    /// `[g_min, g_max]` (Fig. 6b).
    #[must_use]
    pub fn histogram(&self, bins: usize) -> Vec<u64> {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0u64; bins];
        let width = (self.g_max - self.g_min) / bins as f64;
        for &g in &self.g {
            let bin = (((g - self.g_min) / width) as usize).min(bins - 1);
            counts[bin] += 1;
        }
        counts
    }

    /// Fraction of synapses at (or within one part in 10⁹ of) `g_min`, the
    /// collapse indicator discussed around Fig. 6(b).
    #[must_use]
    pub fn fraction_at_floor(&self) -> f64 {
        if self.g.is_empty() {
            return 0.0;
        }
        let eps = (self.g_max - self.g_min) * 1e-9;
        let at_floor = self.g.iter().filter(|&&g| g <= self.g_min + eps).count();
        at_floor as f64 / self.g.len() as f64
    }

    /// Receptive-field contrast of one neuron: the standard deviation of its
    /// row, a proxy for how distinct a learned pattern is (Fig. 5).
    #[must_use]
    pub fn row_contrast(&self, post: usize) -> f64 {
        let row = self.row(post);
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        (row.iter().map(|&g| (g - mean).powi(2)).sum::<f64>() / row.len() as f64).sqrt()
    }

    /// Verifies every conductance is inside bounds and (under fixed-point
    /// precision) exactly on the grid. Used by integration tests and debug
    /// assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        self.g.iter().all(|&g| {
            let in_bounds = g >= self.g_min - 1e-12 && g <= self.g_max + 1e-12;
            let on_grid = match &self.quantizer {
                None => true,
                Some(q) => {
                    let code = g / q.format().resolution();
                    (code - code.round()).abs() < 1e-9
                }
            };
            in_bounds && on_grid
        })
    }
}

/// The conductance transition function, detached from the matrix storage so
/// parallel kernels can hold it by value while mutating row slices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateCtx {
    magnitudes: StdpMagnitudes,
    g_min: f64,
    g_max: f64,
    quantizer: Option<Quantizer>,
}

impl UpdateCtx {
    /// Clamps and re-quantizes an arbitrary candidate conductance — used by
    /// weight normalization, which scales a whole row off-grid at once.
    #[must_use]
    pub fn requantize(&self, candidate: f64, uniform: f64) -> f64 {
        let clamped = candidate.clamp(self.g_min, self.g_max);
        match &self.quantizer {
            None => clamped,
            Some(q) => q.quantize_f64(clamped, uniform).clamp(self.g_min, self.g_max),
        }
    }

    /// Computes the post-update conductance for a synapse currently at `g`:
    /// magnitude from Eqs. 4–5 (or the fixed step), clamp to
    /// `[g_min, g_max]`, then re-quantize under the configured rounding mode
    /// (`uniform` feeds stochastic rounding).
    #[must_use]
    pub fn updated(&self, g: f64, kind: UpdateKind, uniform: f64) -> f64 {
        let candidate = match kind {
            UpdateKind::Potentiate => {
                g + self.magnitudes.potentiation(g, self.g_min, self.g_max)
            }
            UpdateKind::Depress => g - self.magnitudes.depression(g, self.g_min, self.g_max),
        };
        let clamped = candidate.clamp(self.g_min, self.g_max);
        match &self.quantizer {
            None => clamped,
            Some(q) => q.quantize_f64(clamped, uniform).clamp(self.g_min, self.g_max),
        }
    }

    /// Whether [`UpdateCtx::updated`] actually reads its `uniform`
    /// argument. Because every rounding draw is a counter-based Philox
    /// block keyed by `(synapse, step)` — not shared generator state — an
    /// update that provably ignores the draw lets the lazy settle path
    /// skip computing the block without changing any result:
    ///
    /// * no quantizer (full precision) or a non-stochastic rounding mode
    ///   never consumes the draw;
    /// * a fixed step that is a whole number of LSBs, with on-grid clamp
    ///   bounds, keeps every candidate exactly on the grid, and on-grid
    ///   values are fixed points of stochastic rounding (`frac = 0` rounds
    ///   down for every draw).
    ///
    /// Conductance-dependent (Querlioz) magnitudes under stochastic
    /// rounding always consume the draw, as does a fixed step smaller than
    /// one LSB (e.g. the Q1.7 preset's `ΔG = 1/256`).
    #[must_use]
    pub fn consumes_rounding_draw(&self) -> bool {
        let Some(q) = &self.quantizer else { return false };
        match q.rounding() {
            Rounding::Truncate | Rounding::Nearest => false,
            Rounding::Stochastic => match self.magnitudes {
                StdpMagnitudes::Querlioz { .. } => true,
                StdpMagnitudes::FixedStep { delta_g } => {
                    let res = q.format().resolution();
                    let on_grid = |x: f64| {
                        let code = x / res;
                        (code - code.round()).abs() < 1e-9
                    };
                    !(on_grid(delta_g) && on_grid(self.g_min) && on_grid(self.g_max))
                }
            },
        }
    }
}

/// One deferred post-spike event of an excitatory row: the step index that
/// keys the row's Philox draws and the simulated time the eager path would
/// have used for the `Δt` pairing.
///
/// `t_ms` is the engine's *accumulated* clock value at the event, not
/// `step × dt`: the eager path pairs spikes with the accumulated clock, and
/// bit-identity requires replaying exactly that float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostEvent {
    /// Engine step at which the post-neuron spiked.
    pub step: u64,
    /// Simulated time (ms) of the spike.
    pub t_ms: f64,
}

/// The deferred-update ledger of the lazy plasticity path.
///
/// Instead of walking a spiking neuron's full receptive field at every post
/// spike, the lazy engine appends one [`PostEvent`] per spike to the row's
/// event list and applies the updates later, at *touch time*: when a pre
/// input spikes (its column is about to be read and its timestamp is about
/// to change), when a post row spikes coincidently, and at the
/// end-of-presentation flush. The per-synapse `applied` watermark records
/// how many of the row's events each synapse has absorbed, so settles are
/// idempotent and order-independent across synapses.
#[derive(Debug, Clone)]
pub struct PlasticityLedger {
    n_pre: usize,
    /// Per post row: deferred events in step order.
    events: Vec<Vec<PostEvent>>,
    /// Per synapse (`[post][pre]` layout, matching the conductance matrix):
    /// number of the row's events already applied.
    applied: Vec<u32>,
    /// Rows with at least one pending event, in first-event order — the
    /// active set the gather kernels iterate.
    active: Vec<u32>,
    is_active: Vec<bool>,
}

impl PlasticityLedger {
    /// An empty ledger for an `n_pre × n_post` matrix.
    #[must_use]
    pub fn new(n_pre: usize, n_post: usize) -> Self {
        PlasticityLedger {
            n_pre,
            events: vec![Vec::new(); n_post],
            applied: vec![0; n_pre * n_post],
            active: Vec::new(),
            is_active: vec![false; n_post],
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.active.is_empty()
    }

    /// The active set: rows with pending events, in first-event order.
    #[must_use]
    pub fn active_rows(&self) -> &[u32] {
        &self.active
    }

    /// Iterates the active rows as `usize` indices.
    pub fn pending_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.active.iter().map(|&j| j as usize)
    }

    /// The pending events of one row.
    #[must_use]
    pub fn pending_events(&self, post: usize) -> &[PostEvent] {
        &self.events[post]
    }

    /// Records a post-spike event for row `post` at `(step, t_ms)`.
    ///
    /// Events must be recorded in non-decreasing step order (the settle
    /// loop replays them sequentially per synapse).
    pub fn record_post(&mut self, post: usize, step: u64, t_ms: f64) {
        debug_assert!(
            self.events[post].last().is_none_or(|e| e.step <= step),
            "events must be recorded in step order"
        );
        self.events[post].push(PostEvent { step, t_ms });
        if !std::mem::replace(&mut self.is_active[post], true) {
            self.active.push(post as u32);
        }
    }

    /// Number of synapse updates recorded but not yet applied.
    #[must_use]
    pub fn outstanding_updates(&self) -> u64 {
        self.active
            .iter()
            .map(|&j| {
                let j = j as usize;
                let scheduled = self.events[j].len() as u64 * self.n_pre as u64;
                let done: u64 = self.applied[j * self.n_pre..(j + 1) * self.n_pre]
                    .iter()
                    .map(|&a| u64::from(a))
                    .sum();
                scheduled - done
            })
            .sum()
    }

    /// Splits the ledger into the borrows a settle kernel needs: the
    /// per-row events (shared), the per-synapse applied watermarks
    /// (mutable, same `[post][pre]` layout as the conductance matrix), and
    /// the active row set (the gather list).
    pub fn split(&mut self) -> (&[Vec<PostEvent>], &mut [u32], &[u32]) {
        (&self.events, &mut self.applied, &self.active)
    }

    /// Resets the ledger after a full flush: every active row's events are
    /// dropped and its applied watermarks return to zero.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any active row still has unapplied events.
    pub fn clear_settled(&mut self) {
        debug_assert_eq!(self.outstanding_updates(), 0, "clearing an unsettled ledger");
        for &j in &self.active {
            let j = j as usize;
            self.events[j].clear();
            self.applied[j * self.n_pre..(j + 1) * self.n_pre].fill(0);
            self.is_active[j] = false;
        }
        self.active.clear();
    }
}

/// Everything a settle kernel needs besides the row slices themselves: the
/// conductance transition, the plasticity rule, the Philox generator, and
/// the resolved draw-elision flags. `Copy`, so parallel kernels hold it by
/// value.
#[derive(Clone, Copy)]
pub struct SettleCtx<'a> {
    ctx: UpdateCtx,
    rule: &'a dyn PlasticityRule,
    philox: Philox4x32,
    n_pre: usize,
    /// Global index of the matrix's local row 0, so shard-local settles
    /// key their draws exactly as the whole-layer matrix would.
    row_origin: usize,
    accept_draws: bool,
    round_draws: bool,
}

impl SettleCtx<'_> {
    /// Whether the acceptance draw is elided (the rule ignores it).
    #[must_use]
    pub fn elides_acceptance_draw(&self) -> bool {
        !self.accept_draws
    }

    /// Whether the rounding draw is elided (the update ignores it).
    #[must_use]
    pub fn elides_rounding_draw(&self) -> bool {
        !self.round_draws
    }

    /// Applies synapse (`pre` → `post`)'s pending events — `events[*applied..]`
    /// — to its conductance `g`, advancing the watermark to the full event
    /// count.
    ///
    /// `last_pre_ms` must be the pre input's most recent spike time, which
    /// under the deferral protocol equals the timestamp the eager path read
    /// at each of these events: a synapse is always settled *before* its
    /// pre-side timestamp changes. Draw streams are keyed `(synapse,
    /// event step)`, so each event consumes exactly the Philox words the
    /// eager path consumed for it, whenever it is applied.
    #[inline]
    pub fn settle_synapse(
        &self,
        g: &mut f64,
        applied: &mut u32,
        events: &[PostEvent],
        post: usize,
        pre: usize,
        last_pre_ms: f64,
    ) {
        let start = *applied as usize;
        if start >= events.len() {
            return;
        }
        let stream =
            crate::streams::SYNAPSE | ((self.row_origin + post) * self.n_pre + pre) as u64;
        for ev in &events[start..] {
            let dt_pair = ev.t_ms - last_pre_ms;
            let u_accept =
                if self.accept_draws { self.philox.uniform(stream, ev.step) } else { 0.0 };
            if let Some(kind) = self.rule.on_post_spike(dt_pair, u_accept) {
                let u_round = if self.round_draws {
                    f64::from(self.philox.at(stream, ev.step, 2))
                        / (u64::from(u32::MAX) + 1) as f64
                } else {
                    0.5
                };
                *g = self.ctx.updated(*g, kind, u_round);
            }
        }
        *applied = events.len() as u32;
    }

    /// Replays one *recorded presentation's* post events for synapse
    /// (`pre` → `post`) over conductance `g` and returns the settled value,
    /// without touching any ledger state.
    ///
    /// Unlike [`settle_synapse`](Self::settle_synapse) — which reads the
    /// engine's live `last_pre` timestamp because the deferral protocol
    /// settles a synapse before that timestamp changes — this walks the
    /// presentation's full pre-spike time table (`pre_spikes_ms`, strictly
    /// ascending, on the presentation's own accumulated clock) with a
    /// two-pointer scan, so it can be evaluated *after* the presentation
    /// finished, from any thread, in any merge order. A pre spike coincident
    /// with the post event counts (`Δt = 0`): the engine records pre
    /// timestamps before the causal-STDP phase runs, and both clocks
    /// accumulate identically so the comparison is exact.
    ///
    /// The function is pure in `g` — same `(g, events, pre_spikes_ms)`
    /// always yields the same value — which is what lets the shared-atomics
    /// commit kernel re-run it inside a CAS retry loop, and the
    /// seeded-merge-order kernel obtain worker-count-independent results by
    /// fixing the fold order. Draws stay keyed `(synapse, event step)`
    /// exactly as in the serial paths.
    #[must_use]
    pub fn commit_synapse_value(
        &self,
        mut g: f64,
        events: &[PostEvent],
        post: usize,
        pre: usize,
        pre_spikes_ms: &[f64],
    ) -> f64 {
        let stream =
            crate::streams::SYNAPSE | ((self.row_origin + post) * self.n_pre + pre) as u64;
        let mut p = 0usize;
        let mut last_pre_ms = f64::NEG_INFINITY;
        for ev in events {
            while p < pre_spikes_ms.len() && pre_spikes_ms[p] <= ev.t_ms {
                last_pre_ms = pre_spikes_ms[p];
                p += 1;
            }
            let dt_pair = ev.t_ms - last_pre_ms;
            let u_accept =
                if self.accept_draws { self.philox.uniform(stream, ev.step) } else { 0.0 };
            if let Some(kind) = self.rule.on_post_spike(dt_pair, u_accept) {
                let u_round = if self.round_draws {
                    f64::from(self.philox.at(stream, ev.step, 2))
                        / (u64::from(u32::MAX) + 1) as f64
                } else {
                    0.5
                };
                g = self.ctx.updated(g, kind, u_round);
            }
        }
        g
    }
}

/// An input-major mirror of the conductance matrix for sparse current
/// delivery.
///
/// [`SynapseMatrix`] is row-major `[post][pre]` — the layout every
/// learning kernel wants, because a post spike updates one contiguous
/// receptive field. Sparse delivery wants the opposite: when input `i`
/// spikes, the currents it injects into *all* post neurons live in column
/// `i`, which in row-major layout is a stride-`n_pre` walk. This view
/// stores the same values transposed (`gt[pre * n_post + post]`), so each
/// active input contributes one contiguous streaming pass.
///
/// The view is a *cache*, not a second source of truth: the engine calls
/// [`refresh`](Self::refresh) with the (rows × cols) rectangle of synapses
/// a learning pass just changed, immediately after each pass that mutates
/// the row-major matrix. [`is_coherent`](Self::is_coherent) lets the
/// differential tests assert the contract.
#[derive(Debug, Clone)]
pub struct TransposedConductances {
    n_pre: usize,
    n_post: usize,
    gt: Vec<f64>,
}

impl TransposedConductances {
    /// Builds the transposed mirror of `m`.
    #[must_use]
    pub fn new(m: &SynapseMatrix) -> Self {
        let mut view =
            TransposedConductances { n_pre: m.n_pre, n_post: m.n_post, gt: vec![0.0; m.len()] };
        view.refresh(m, None, None);
        view
    }

    /// Number of pre-synaptic inputs (columns of the row-major matrix).
    #[must_use]
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Number of post-synaptic neurons.
    #[must_use]
    pub fn n_post(&self) -> usize {
        self.n_post
    }

    /// Input `pre`'s outgoing conductances, one contiguous slice of length
    /// `n_post` — the streaming access of the sparse delivery kernel.
    #[must_use]
    pub fn col(&self, pre: usize) -> &[f64] {
        &self.gt[pre * self.n_post..(pre + 1) * self.n_post]
    }

    /// Re-mirrors the rectangle `rows × cols` of `m` into this view and
    /// returns how many cells were copied (the engine feeds that to a
    /// profiler counter). `None` selects *all* rows / columns; `(None,
    /// None)` is a full rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `m`'s shape differs from this view's, or (in debug builds)
    /// if an index is out of range.
    pub fn refresh(&mut self, m: &SynapseMatrix, rows: Option<&[u32]>, cols: Option<&[u32]>) -> u64 {
        assert_eq!(
            (self.n_pre, self.n_post),
            (m.n_pre, m.n_post),
            "transposed view shape mismatch"
        );
        let g = m.as_flat();
        let (n_pre, n_post) = (self.n_pre, self.n_post);
        match (rows, cols) {
            (None, None) => {
                for j in 0..n_post {
                    let row = &g[j * n_pre..(j + 1) * n_pre];
                    for (i, &v) in row.iter().enumerate() {
                        self.gt[i * n_post + j] = v;
                    }
                }
                (n_pre * n_post) as u64
            }
            (Some(rows), None) => {
                for &j in rows {
                    let j = j as usize;
                    debug_assert!(j < n_post, "refresh row {j} out of range");
                    let row = &g[j * n_pre..(j + 1) * n_pre];
                    for (i, &v) in row.iter().enumerate() {
                        self.gt[i * n_post + j] = v;
                    }
                }
                (rows.len() * n_pre) as u64
            }
            (None, Some(cols)) => {
                for &i in cols {
                    let i = i as usize;
                    debug_assert!(i < n_pre, "refresh column {i} out of range");
                    for j in 0..n_post {
                        self.gt[i * n_post + j] = g[j * n_pre + i];
                    }
                }
                (cols.len() * n_post) as u64
            }
            (Some(rows), Some(cols)) => {
                for &j in rows {
                    let j = j as usize;
                    debug_assert!(j < n_post, "refresh row {j} out of range");
                    for &i in cols {
                        let i = i as usize;
                        debug_assert!(i < n_pre, "refresh column {i} out of range");
                        self.gt[i * n_post + j] = g[j * n_pre + i];
                    }
                }
                (rows.len() * cols.len()) as u64
            }
        }
    }

    /// Whether every cell of this view bit-matches `m` — the coherence
    /// contract the engine must maintain between learning passes and
    /// delivery. Intended for tests and debug assertions.
    #[must_use]
    pub fn is_coherent(&self, m: &SynapseMatrix) -> bool {
        if (self.n_pre, self.n_post) != (m.n_pre, m.n_post) {
            return false;
        }
        let g = m.as_flat();
        (0..self.n_post).all(|j| {
            let row = &g[j * self.n_pre..(j + 1) * self.n_pre];
            row.iter()
                .enumerate()
                .all(|(i, &v)| self.gt[i * self.n_post + j].to_bits() == v.to_bits())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, Preset, RuleKind};
    use qformat::Rounding;

    fn cfg(preset: Preset) -> NetworkConfig {
        NetworkConfig::from_preset(preset, 16, 4).with_rule(RuleKind::Stochastic)
    }

    #[test]
    fn random_init_within_configured_range() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 1);
        let (lo, hi) = (
            c.g_min + c.init_range.0 * (c.g_max - c.g_min),
            c.g_min + c.init_range.1 * (c.g_max - c.g_min),
        );
        for &g in m.as_flat() {
            assert!(g >= lo - 1e-12 && g <= hi + 1e-12, "g = {g}");
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let c = cfg(Preset::FullPrecision);
        let a = SynapseMatrix::new_random(&c, 7);
        let b = SynapseMatrix::new_random(&c, 7);
        let d = SynapseMatrix::new_random(&c, 8);
        assert_eq!(a.as_flat(), b.as_flat());
        assert_ne!(a.as_flat(), d.as_flat());
    }

    #[test]
    fn fixed_point_init_lands_on_grid() {
        let c = cfg(Preset::Bit2);
        let m = SynapseMatrix::new_random(&c, 3);
        assert!(m.check_invariants());
        for &g in m.as_flat() {
            assert!([0.0, 0.25, 0.5, 0.75].iter().any(|&q| (g - q).abs() < 1e-12), "g = {g}");
        }
    }

    #[test]
    fn querlioz_updates_respect_soft_bounds() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 1);
        // Hammer one synapse with potentiation: must converge toward g_max
        // without ever exceeding it.
        for _ in 0..10_000 {
            m.apply(0, 0, UpdateKind::Potentiate, 0.5);
        }
        let g = m.get(0, 0);
        assert!(g <= c.g_max && g > 0.9, "g = {g}");
        for _ in 0..10_000 {
            m.apply(0, 0, UpdateKind::Depress, 0.5);
        }
        let g = m.get(0, 0);
        assert!(g >= c.g_min && g < 0.1, "g = {g}");
    }

    #[test]
    fn fixed_step_moves_exactly_one_step_when_on_grid() {
        // Q0.2: ΔG = 0.25 = 1 LSB, so updates walk the 4-level ladder.
        let c = cfg(Preset::Bit2);
        let mut m = SynapseMatrix::new_random(&c, 1);
        let before = m.get(0, 0);
        m.apply(0, 0, UpdateKind::Potentiate, 0.99);
        let after = m.get(0, 0);
        if before < c.g_max {
            assert!((after - before - 0.25).abs() < 1e-12, "{before} -> {after}");
        } else {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn q17_truncation_swallows_potentiation_but_not_depression() {
        // The asymmetry behind the Fig. 6(b) collapse: ΔG = 1/256 is half an
        // LSB, so under truncation +ΔG rounds back down while −ΔG clears a
        // whole LSB.
        let mut c = cfg(Preset::Bit8);
        c.rounding = Rounding::Truncate;
        let m = SynapseMatrix::new_random(&c, 1);
        let g0 = 0.5; // on the Q1.7 grid
        let up = m.updated_value(g0, UpdateKind::Potentiate, 0.0);
        let down = m.updated_value(g0, UpdateKind::Depress, 0.0);
        assert_eq!(up, g0, "potentiation must be truncated away");
        assert!((g0 - down - 1.0 / 128.0).abs() < 1e-12, "depression clears one LSB");
    }

    #[test]
    fn q17_stochastic_rounding_is_unbiased_about_half_step() {
        let mut c = cfg(Preset::Bit8);
        c.rounding = Rounding::Stochastic;
        let m = SynapseMatrix::new_random(&c, 1);
        let g0 = 0.5;
        let n = 10_000;
        let ups = (0..n)
            .filter(|&k| {
                let u = (f64::from(k) + 0.5) / f64::from(n);
                m.updated_value(g0, UpdateKind::Potentiate, u) > g0
            })
            .count();
        let frac = ups as f64 / f64::from(n);
        assert!((frac - 0.5).abs() < 0.01, "up fraction = {frac}");
    }

    #[test]
    fn histogram_partitions_population() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 2);
        let h = m.histogram(10);
        assert_eq!(h.iter().sum::<u64>(), m.len() as u64);
    }

    #[test]
    fn fraction_at_floor_detects_collapse() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 2);
        assert_eq!(m.fraction_at_floor(), 0.0);
        for row in 0..m.n_post() {
            for v in m.row_mut(row).iter_mut() {
                *v = 0.0;
            }
        }
        assert_eq!(m.fraction_at_floor(), 1.0);
    }

    #[test]
    fn rows_are_contiguous_receptive_fields() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 9);
        m.row_mut(2)[5] = 0.123;
        assert_eq!(m.get(5, 2), 0.123);
        assert_eq!(m.row(2).len(), 16);
    }

    #[test]
    fn contrast_zero_for_flat_row() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 4);
        for v in m.row_mut(0).iter_mut() {
            *v = 0.4;
        }
        assert!(m.row_contrast(0) < 1e-12);
        assert!(m.row_contrast(1) > 0.0);
    }

    // ---- lazy-plasticity settle machinery ----

    use crate::stdp::{DeterministicStdp, PlasticityRule, StochasticStdp};

    fn rule_for(c: &NetworkConfig) -> Box<dyn PlasticityRule> {
        match c.rule {
            RuleKind::Deterministic => Box::new(DeterministicStdp::new(c.ltp_window_ms)),
            RuleKind::Stochastic => Box::new(StochasticStdp::new(c.stochastic)),
        }
    }

    /// Replays events exactly the way the engine's eager phase-6 kernel
    /// does: all synapses of the spiking row, draws keyed `(synapse, step)`.
    fn eager_replay(
        m: &mut SynapseMatrix,
        rule: &dyn PlasticityRule,
        philox: Philox4x32,
        last_pre: &[f64],
        events: &[(usize, u64, f64)],
    ) {
        let ctx = m.update_ctx();
        let n_pre = m.n_pre();
        for &(j, step, t_ms) in events {
            for i in 0..n_pre {
                let syn = j * n_pre + i;
                let stream = crate::streams::SYNAPSE | syn as u64;
                let u_accept = philox.uniform(stream, step);
                if let Some(kind) = rule.on_post_spike(t_ms - last_pre[i], u_accept) {
                    let u_round = f64::from(philox.at(stream, step, 2))
                        / (u64::from(u32::MAX) + 1) as f64;
                    let g = &mut m.as_flat_mut()[syn];
                    *g = ctx.updated(*g, kind, u_round);
                }
            }
        }
    }

    #[test]
    fn ledger_tracks_pending_work() {
        let mut l = PlasticityLedger::new(4, 3);
        assert!(l.is_idle());
        l.record_post(2, 5, 2.5);
        l.record_post(0, 6, 3.0);
        l.record_post(2, 7, 3.5);
        assert!(!l.is_idle());
        assert_eq!(l.active_rows(), &[2, 0]);
        assert_eq!(l.pending_rows().collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(l.pending_events(2).len(), 2);
        assert_eq!(l.pending_events(1).len(), 0);
        assert_eq!(l.outstanding_updates(), 3 * 4);
        // Advance every watermark as a settle pass would, then clear.
        let (events, applied, active) = l.split();
        for &j in active {
            let j = j as usize;
            let n = events[j].len() as u32;
            applied[j * 4..(j + 1) * 4].fill(n);
        }
        assert_eq!(l.outstanding_updates(), 0);
        l.clear_settled();
        assert!(l.is_idle());
        assert_eq!(l.pending_events(2).len(), 0);
    }

    #[test]
    fn settle_all_is_bit_identical_to_eager_replay() {
        // (post row, step, t_ms) in step order: rows 1 and 2 spike.
        let events = [(1usize, 3u64, 1.5), (2, 5, 2.5), (1, 9, 4.5)];
        // Each input has a distinct pre-spike time, all of them at or
        // before the first post event (the engine's `last_pre ≤ t`
        // invariant — `p_pot`/`p_dep` reject negative separations).
        let last_pre: Vec<f64> = (0..16).map(|i| f64::from(i) * 0.25 - 3.0).collect();
        for preset in [Preset::FullPrecision, Preset::Bit8, Preset::Bit2] {
            for kind in [RuleKind::Deterministic, RuleKind::Stochastic] {
                let c = cfg(preset).with_rule(kind);
                let philox = Philox4x32::new(99);
                let rule = rule_for(&c);

                let mut eager = SynapseMatrix::new_random(&c, 21);
                eager_replay(&mut eager, &*rule, philox, &last_pre, &events);

                let mut lazy = SynapseMatrix::new_random(&c, 21);
                let mut ledger = PlasticityLedger::new(lazy.n_pre(), lazy.n_post());
                for &(j, step, t_ms) in &events {
                    ledger.record_post(j, step, t_ms);
                }
                lazy.settle_all(&mut ledger, &*rule, philox, &last_pre);

                assert!(ledger.is_idle());
                assert_eq!(eager.as_flat(), lazy.as_flat(), "{preset:?}/{kind:?}");
                assert!(lazy.check_invariants(), "{preset:?}/{kind:?}");
            }
        }
    }

    #[test]
    fn settle_watermark_makes_partial_settles_idempotent() {
        let c = cfg(Preset::FullPrecision);
        let philox = Philox4x32::new(7);
        let rule = rule_for(&c);
        let last_pre = vec![0.0; 16];

        let mut once = SynapseMatrix::new_random(&c, 5);
        let mut ledger = PlasticityLedger::new(16, 4);
        ledger.record_post(1, 2, 1.0);
        once.settle_all(&mut ledger, &*rule, philox, &last_pre);

        // Same event, but synapse (1, 3) is settled early via the touch
        // API; the later full settle must not re-apply it.
        let mut twice = SynapseMatrix::new_random(&c, 5);
        let mut ledger = PlasticityLedger::new(16, 4);
        ledger.record_post(1, 2, 1.0);
        {
            let sctx = twice.settle_ctx(&*rule, philox);
            let (events, applied, _) = ledger.split();
            let evs = &events[1];
            // Manual single-synapse touch at flat index 1*16 + 3.
            let mut g = twice.as_flat()[19];
            sctx.settle_synapse(&mut g, &mut applied[19], evs, 1, 3, last_pre[3]);
            twice.as_flat_mut()[19] = g;
        }
        twice.settle_all(&mut ledger, &*rule, philox, &last_pre);
        assert_eq!(once.as_flat(), twice.as_flat());
    }

    #[test]
    fn draw_elision_flags_match_the_configuration() {
        let philox = Philox4x32::new(0);
        // Deterministic rule never reads its acceptance draw.
        let c = cfg(Preset::FullPrecision).with_rule(RuleKind::Deterministic);
        let det = DeterministicStdp::new(c.ltp_window_ms);
        let sto = StochasticStdp::new(c.stochastic);
        let m = SynapseMatrix::new_random(&c, 1);
        assert!(m.settle_ctx(&det, philox).elides_acceptance_draw());
        assert!(!m.settle_ctx(&sto, philox).elides_acceptance_draw());
        // Full precision has no quantizer: rounding draw elided.
        assert!(m.settle_ctx(&sto, philox).elides_rounding_draw());
        // Bit2: ΔG = 0.25 is exactly one Q0.2 LSB — on-grid candidates are
        // fixed points of stochastic rounding, so the draw is elided.
        let m2 = SynapseMatrix::new_random(&cfg(Preset::Bit2), 1);
        assert!(!m2.update_ctx().consumes_rounding_draw());
        // Bit8: ΔG = 1/256 is half a Q1.7 LSB — off-grid, draw required.
        let m8 = SynapseMatrix::new_random(&cfg(Preset::Bit8), 1);
        assert!(m8.update_ctx().consumes_rounding_draw());
        // Non-stochastic rounding never consumes the draw, even off-grid.
        let mut c8 = cfg(Preset::Bit8);
        c8.rounding = Rounding::Truncate;
        assert!(!SynapseMatrix::new_random(&c8, 1).update_ctx().consumes_rounding_draw());
        // Querlioz magnitudes under quantized stochastic rounding do.
        let m16 = SynapseMatrix::new_random(&cfg(Preset::Bit16), 1);
        assert!(m16.update_ctx().consumes_rounding_draw());
    }

    // ---- transposed view for sparse delivery ----

    #[test]
    fn transposed_view_mirrors_matrix() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 11);
        let t = TransposedConductances::new(&m);
        assert_eq!((t.n_pre(), t.n_post()), (16, 4));
        assert!(t.is_coherent(&m));
        for i in 0..m.n_pre() {
            let col = t.col(i);
            assert_eq!(col.len(), m.n_post());
            for (j, &v) in col.iter().enumerate() {
                assert_eq!(v.to_bits(), m.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn transposed_refresh_rectangles_restore_coherence() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 13);
        let mut t = TransposedConductances::new(&m);

        // Mutate one full row, refresh by row.
        m.row_mut(2).fill(0.111);
        assert!(!t.is_coherent(&m));
        assert_eq!(t.refresh(&m, Some(&[2]), None), 16);
        assert!(t.is_coherent(&m));

        // Mutate one column, refresh by column.
        for j in 0..m.n_post() {
            m.row_mut(j)[5] = 0.222;
        }
        assert_eq!(t.refresh(&m, None, Some(&[5])), 4);
        assert!(t.is_coherent(&m));

        // Mutate a rectangle, refresh by rectangle.
        m.row_mut(1)[3] = 0.333;
        m.row_mut(3)[7] = 0.444;
        assert_eq!(t.refresh(&m, Some(&[1, 3]), Some(&[3, 7])), 4);
        assert!(t.is_coherent(&m));

        // Full rebuild covers everything.
        for j in 0..m.n_post() {
            m.row_mut(j).fill(j as f64 * 0.1);
        }
        assert_eq!(t.refresh(&m, None, None), 64);
        assert!(t.is_coherent(&m));
    }

    #[test]
    fn transposed_coherence_rejects_shape_mismatch() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 1);
        let other = NetworkConfig::from_preset(Preset::FullPrecision, 8, 4);
        let t = TransposedConductances::new(&SynapseMatrix::new_random(&other, 1));
        assert!(!t.is_coherent(&m));
    }

    #[test]
    #[should_panic(expected = "ledger pre population mismatch")]
    fn settle_all_rejects_mismatched_ledger() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 1);
        let rule = rule_for(&c);
        let mut ledger = PlasticityLedger::new(8, 4);
        m.settle_all(&mut ledger, &*rule, Philox4x32::new(0), &[0.0; 16]);
    }

    // ---- recorded-presentation commit (parallel training) ----

    #[test]
    fn commit_matches_per_event_settle_with_table_lookups() {
        // The pre-spike table must resolve, for every post event, the same
        // "most recent pre spike" timestamp the live engine would have held
        // in `last_pre` — including a pre spike coincident with the event.
        let events = [
            PostEvent { step: 3, t_ms: 0.3 },
            PostEvent { step: 11, t_ms: 1.1 },
            PostEvent { step: 20, t_ms: 2.0 },
        ];
        let pre_spikes = [0.3, 0.9, 1.8];
        for preset in [Preset::FullPrecision, Preset::Bit8, Preset::Bit2] {
            for kind in [RuleKind::Deterministic, RuleKind::Stochastic] {
                let c = cfg(preset).with_rule(kind);
                let m = SynapseMatrix::new_random(&c, 13);
                let rule = rule_for(&c);
                let sctx = m.settle_ctx(&*rule, Philox4x32::new(99));
                for (post, pre) in [(0usize, 0usize), (1, 5), (3, 15)] {
                    let g0 = m.get(pre, post);
                    let committed =
                        sctx.commit_synapse_value(g0, &events, post, pre, &pre_spikes);
                    // Reference: one settle_synapse call per event, with the
                    // last-pre timestamp resolved from the table by hand.
                    let mut g = g0;
                    for ev in &events {
                        let last_pre = pre_spikes
                            .iter()
                            .copied()
                            .filter(|&t| t <= ev.t_ms)
                            .fold(f64::NEG_INFINITY, f64::max);
                        let mut applied = 0u32;
                        sctx.settle_synapse(
                            &mut g,
                            &mut applied,
                            std::slice::from_ref(ev),
                            post,
                            pre,
                            last_pre,
                        );
                    }
                    assert_eq!(
                        committed.to_bits(),
                        g.to_bits(),
                        "{preset:?}/{kind:?} ({post},{pre}): commit diverged from settle"
                    );
                    // Purity: re-running the fold reproduces the value bit
                    // for bit (the CAS retry loop relies on this).
                    assert_eq!(
                        committed.to_bits(),
                        sctx.commit_synapse_value(g0, &events, post, pre, &pre_spikes).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn commit_counts_coincident_pre_as_zero_separation() {
        let c = cfg(Preset::FullPrecision).with_rule(RuleKind::Deterministic);
        let m = SynapseMatrix::new_random(&c, 2);
        let rule = rule_for(&c);
        let sctx = m.settle_ctx(&*rule, Philox4x32::new(0));
        let ev = [PostEvent { step: 5, t_ms: 0.5 }];
        let g0 = 0.5;
        // A pre spike at exactly the event time is Δt = 0 → potentiation…
        assert!(sctx.commit_synapse_value(g0, &ev, 0, 0, &[0.5]) > g0);
        // …and an input that never spiked is Δt = ∞ → depression.
        assert!(sctx.commit_synapse_value(g0, &ev, 0, 0, &[]) < g0);
    }
}
