//! The plastic synapse population: conductance storage, update application,
//! quantization, and statistics.

use crate::config::{NetworkConfig, Precision, StdpMagnitudes};
use crate::stdp::UpdateKind;
use gpu_device::Philox4x32;
use qformat::Quantizer;
use serde::{Deserialize, Serialize};

/// The all-to-all conductance matrix between the input trains and the
/// excitatory layer.
///
/// Layout is row-major `[post][pre]`, so each excitatory neuron's receptive
/// field (its "conductance array" in the paper's terms) is one contiguous
/// row — the access pattern of both the current-accumulation and the
/// post-spike STDP kernels.
///
/// Conductances are stored as `f64` but, under a fixed-point
/// [`Precision`], every value is kept exactly on the format's grid: each
/// update computes `G ± ΔG` in float and immediately re-quantizes with the
/// configured rounding mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynapseMatrix {
    n_pre: usize,
    n_post: usize,
    g: Vec<f64>,
    g_min: f64,
    g_max: f64,
    magnitudes: StdpMagnitudes,
    quantizer: Option<Quantizer>,
}

impl SynapseMatrix {
    /// Creates the matrix with conductances drawn uniformly from the
    /// configured init range (then snapped to the grid under fixed-point
    /// precision). `seed` keys the reproducible init stream.
    #[must_use]
    pub fn new_random(cfg: &NetworkConfig, seed: u64) -> Self {
        let quantizer = match cfg.precision {
            Precision::Float32 => None,
            Precision::Fixed(format) => Some(Quantizer::new(format, cfg.rounding)),
        };
        let (lo_frac, hi_frac) = cfg.init_range;
        let lo = cfg.g_min + lo_frac * (cfg.g_max - cfg.g_min);
        let hi = cfg.g_min + hi_frac * (cfg.g_max - cfg.g_min);
        let philox = Philox4x32::new(seed ^ 0x5e_ed_1e_af);
        let n = cfg.n_inputs * cfg.n_excitatory;
        let g = (0..n)
            .map(|idx| {
                let u = philox.uniform(idx as u64, 0);
                let raw = lo + u * (hi - lo);
                match &quantizer {
                    None => raw,
                    Some(q) => q.quantize_f64(raw, philox.uniform2(idx as u64, 0)),
                }
            })
            .collect();
        SynapseMatrix {
            n_pre: cfg.n_inputs,
            n_post: cfg.n_excitatory,
            g,
            g_min: cfg.g_min,
            g_max: cfg.g_max,
            magnitudes: cfg.magnitudes,
            quantizer,
        }
    }

    /// Number of pre-synaptic inputs.
    #[must_use]
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Number of post-synaptic neurons.
    #[must_use]
    pub fn n_post(&self) -> usize {
        self.n_post
    }

    /// Total synapse count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Whether the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }

    /// The conductance bounds `(g_min, g_max)`.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.g_min, self.g_max)
    }

    /// One neuron's receptive field: the conductances of all its incoming
    /// synapses (the paper's per-neuron "conductance array", Fig. 5).
    #[must_use]
    pub fn row(&self, post: usize) -> &[f64] {
        &self.g[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// Mutable view of one neuron's receptive field.
    pub fn row_mut(&mut self, post: usize) -> &mut [f64] {
        &mut self.g[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// The full flat conductance slice (row-major `[post][pre]`).
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.g
    }

    /// Mutable full flat conductance slice. Used by the engine's row-parallel
    /// kernels; values written here must already be on the grid.
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.g
    }

    /// The conductance of synapse (`pre` → `post`).
    #[must_use]
    pub fn get(&self, pre: usize, post: usize) -> f64 {
        self.g[post * self.n_pre + pre]
    }

    /// The copyable update context used by the engine's parallel kernels:
    /// it carries everything needed to compute a conductance transition
    /// without borrowing the matrix itself.
    #[must_use]
    pub fn update_ctx(&self) -> UpdateCtx {
        UpdateCtx {
            magnitudes: self.magnitudes,
            g_min: self.g_min,
            g_max: self.g_max,
            quantizer: self.quantizer,
        }
    }

    /// Applies `kind` to the conductance value `g`, returning the new
    /// (clamped, quantized) value. `uniform` feeds stochastic rounding.
    #[must_use]
    pub fn updated_value(&self, g: f64, kind: UpdateKind, uniform: f64) -> f64 {
        self.update_ctx().updated(g, kind, uniform)
    }

    /// Applies `kind` to synapse (`pre` → `post`) in place.
    pub fn apply(&mut self, pre: usize, post: usize, kind: UpdateKind, uniform: f64) {
        let idx = post * self.n_pre + pre;
        self.g[idx] = self.updated_value(self.g[idx], kind, uniform);
    }

    /// Mean conductance.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.g.is_empty() {
            return 0.0;
        }
        self.g.iter().sum::<f64>() / self.g.len() as f64
    }

    /// Histogram of all conductances over `bins` equal-width bins spanning
    /// `[g_min, g_max]` (Fig. 6b).
    #[must_use]
    pub fn histogram(&self, bins: usize) -> Vec<u64> {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0u64; bins];
        let width = (self.g_max - self.g_min) / bins as f64;
        for &g in &self.g {
            let bin = (((g - self.g_min) / width) as usize).min(bins - 1);
            counts[bin] += 1;
        }
        counts
    }

    /// Fraction of synapses at (or within one part in 10⁹ of) `g_min`, the
    /// collapse indicator discussed around Fig. 6(b).
    #[must_use]
    pub fn fraction_at_floor(&self) -> f64 {
        if self.g.is_empty() {
            return 0.0;
        }
        let eps = (self.g_max - self.g_min) * 1e-9;
        let at_floor = self.g.iter().filter(|&&g| g <= self.g_min + eps).count();
        at_floor as f64 / self.g.len() as f64
    }

    /// Receptive-field contrast of one neuron: the standard deviation of its
    /// row, a proxy for how distinct a learned pattern is (Fig. 5).
    #[must_use]
    pub fn row_contrast(&self, post: usize) -> f64 {
        let row = self.row(post);
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        (row.iter().map(|&g| (g - mean).powi(2)).sum::<f64>() / row.len() as f64).sqrt()
    }

    /// Verifies every conductance is inside bounds and (under fixed-point
    /// precision) exactly on the grid. Used by integration tests and debug
    /// assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        self.g.iter().all(|&g| {
            let in_bounds = g >= self.g_min - 1e-12 && g <= self.g_max + 1e-12;
            let on_grid = match &self.quantizer {
                None => true,
                Some(q) => {
                    let code = g / q.format().resolution();
                    (code - code.round()).abs() < 1e-9
                }
            };
            in_bounds && on_grid
        })
    }
}

/// The conductance transition function, detached from the matrix storage so
/// parallel kernels can hold it by value while mutating row slices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateCtx {
    magnitudes: StdpMagnitudes,
    g_min: f64,
    g_max: f64,
    quantizer: Option<Quantizer>,
}

impl UpdateCtx {
    /// Clamps and re-quantizes an arbitrary candidate conductance — used by
    /// weight normalization, which scales a whole row off-grid at once.
    #[must_use]
    pub fn requantize(&self, candidate: f64, uniform: f64) -> f64 {
        let clamped = candidate.clamp(self.g_min, self.g_max);
        match &self.quantizer {
            None => clamped,
            Some(q) => q.quantize_f64(clamped, uniform).clamp(self.g_min, self.g_max),
        }
    }

    /// Computes the post-update conductance for a synapse currently at `g`:
    /// magnitude from Eqs. 4–5 (or the fixed step), clamp to
    /// `[g_min, g_max]`, then re-quantize under the configured rounding mode
    /// (`uniform` feeds stochastic rounding).
    #[must_use]
    pub fn updated(&self, g: f64, kind: UpdateKind, uniform: f64) -> f64 {
        let candidate = match kind {
            UpdateKind::Potentiate => {
                g + self.magnitudes.potentiation(g, self.g_min, self.g_max)
            }
            UpdateKind::Depress => g - self.magnitudes.depression(g, self.g_min, self.g_max),
        };
        let clamped = candidate.clamp(self.g_min, self.g_max);
        match &self.quantizer {
            None => clamped,
            Some(q) => q.quantize_f64(clamped, uniform).clamp(self.g_min, self.g_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, Preset, RuleKind};
    use qformat::Rounding;

    fn cfg(preset: Preset) -> NetworkConfig {
        NetworkConfig::from_preset(preset, 16, 4).with_rule(RuleKind::Stochastic)
    }

    #[test]
    fn random_init_within_configured_range() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 1);
        let (lo, hi) = (
            c.g_min + c.init_range.0 * (c.g_max - c.g_min),
            c.g_min + c.init_range.1 * (c.g_max - c.g_min),
        );
        for &g in m.as_flat() {
            assert!(g >= lo - 1e-12 && g <= hi + 1e-12, "g = {g}");
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let c = cfg(Preset::FullPrecision);
        let a = SynapseMatrix::new_random(&c, 7);
        let b = SynapseMatrix::new_random(&c, 7);
        let d = SynapseMatrix::new_random(&c, 8);
        assert_eq!(a.as_flat(), b.as_flat());
        assert_ne!(a.as_flat(), d.as_flat());
    }

    #[test]
    fn fixed_point_init_lands_on_grid() {
        let c = cfg(Preset::Bit2);
        let m = SynapseMatrix::new_random(&c, 3);
        assert!(m.check_invariants());
        for &g in m.as_flat() {
            assert!([0.0, 0.25, 0.5, 0.75].iter().any(|&q| (g - q).abs() < 1e-12), "g = {g}");
        }
    }

    #[test]
    fn querlioz_updates_respect_soft_bounds() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 1);
        // Hammer one synapse with potentiation: must converge toward g_max
        // without ever exceeding it.
        for _ in 0..10_000 {
            m.apply(0, 0, UpdateKind::Potentiate, 0.5);
        }
        let g = m.get(0, 0);
        assert!(g <= c.g_max && g > 0.9, "g = {g}");
        for _ in 0..10_000 {
            m.apply(0, 0, UpdateKind::Depress, 0.5);
        }
        let g = m.get(0, 0);
        assert!(g >= c.g_min && g < 0.1, "g = {g}");
    }

    #[test]
    fn fixed_step_moves_exactly_one_step_when_on_grid() {
        // Q0.2: ΔG = 0.25 = 1 LSB, so updates walk the 4-level ladder.
        let c = cfg(Preset::Bit2);
        let mut m = SynapseMatrix::new_random(&c, 1);
        let before = m.get(0, 0);
        m.apply(0, 0, UpdateKind::Potentiate, 0.99);
        let after = m.get(0, 0);
        if before < c.g_max {
            assert!((after - before - 0.25).abs() < 1e-12, "{before} -> {after}");
        } else {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn q17_truncation_swallows_potentiation_but_not_depression() {
        // The asymmetry behind the Fig. 6(b) collapse: ΔG = 1/256 is half an
        // LSB, so under truncation +ΔG rounds back down while −ΔG clears a
        // whole LSB.
        let mut c = cfg(Preset::Bit8);
        c.rounding = Rounding::Truncate;
        let m = SynapseMatrix::new_random(&c, 1);
        let g0 = 0.5; // on the Q1.7 grid
        let up = m.updated_value(g0, UpdateKind::Potentiate, 0.0);
        let down = m.updated_value(g0, UpdateKind::Depress, 0.0);
        assert_eq!(up, g0, "potentiation must be truncated away");
        assert!((g0 - down - 1.0 / 128.0).abs() < 1e-12, "depression clears one LSB");
    }

    #[test]
    fn q17_stochastic_rounding_is_unbiased_about_half_step() {
        let mut c = cfg(Preset::Bit8);
        c.rounding = Rounding::Stochastic;
        let m = SynapseMatrix::new_random(&c, 1);
        let g0 = 0.5;
        let n = 10_000;
        let ups = (0..n)
            .filter(|&k| {
                let u = (f64::from(k) + 0.5) / f64::from(n);
                m.updated_value(g0, UpdateKind::Potentiate, u) > g0
            })
            .count();
        let frac = ups as f64 / f64::from(n);
        assert!((frac - 0.5).abs() < 0.01, "up fraction = {frac}");
    }

    #[test]
    fn histogram_partitions_population() {
        let c = cfg(Preset::FullPrecision);
        let m = SynapseMatrix::new_random(&c, 2);
        let h = m.histogram(10);
        assert_eq!(h.iter().sum::<u64>(), m.len() as u64);
    }

    #[test]
    fn fraction_at_floor_detects_collapse() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 2);
        assert_eq!(m.fraction_at_floor(), 0.0);
        for row in 0..m.n_post() {
            for v in m.row_mut(row).iter_mut() {
                *v = 0.0;
            }
        }
        assert_eq!(m.fraction_at_floor(), 1.0);
    }

    #[test]
    fn rows_are_contiguous_receptive_fields() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 9);
        m.row_mut(2)[5] = 0.123;
        assert_eq!(m.get(5, 2), 0.123);
        assert_eq!(m.row(2).len(), 16);
    }

    #[test]
    fn contrast_zero_for_flat_row() {
        let c = cfg(Preset::FullPrecision);
        let mut m = SynapseMatrix::new_random(&c, 4);
        for v in m.row_mut(0).iter_mut() {
            *v = 0.4;
        }
        assert!(m.row_contrast(0) < 1e-12);
        assert!(m.row_contrast(1) > 0.0);
    }
}
