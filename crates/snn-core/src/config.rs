//! All simulation and learning parameters, including the paper's Table I
//! presets encoded verbatim.

use crate::neuron::{AdexParams, IzhikevichParams};
use crate::SnnError;
use qformat::{QFormat, Rounding};
use serde::{Deserialize, Serialize};

/// Leaky integrate-and-fire parameters (Eqs. 1–2).
///
/// The membrane evolves as `dv/dt = a + b·v + c·I` and resets to `v_reset`
/// when `v > v_threshold`. Defaults are the paper's Section III-D values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Constant drive term `a` (mV/ms).
    pub a: f64,
    /// Leak coefficient `b` (1/ms); negative for a stable resting state.
    pub b: f64,
    /// Current gain `c` (mV/ms per unit current).
    pub c: f64,
    /// Spike threshold `v_threshold` (mV).
    pub v_threshold: f64,
    /// Post-spike reset value `v_reset` (mV).
    pub v_reset: f64,
    /// Initial membrane potential (mV).
    pub v_init: f64,
    /// Absolute refractory period after a spike (ms).
    pub t_refractory_ms: f64,
}

impl Default for LifParams {
    fn default() -> Self {
        // Section III-D: "V_th is -60.2, V_reset is -74.7, a is -6.77,
        // b is -0.0989 and c is 0.314"; initial potential -70.0.
        LifParams {
            a: -6.77,
            b: -0.0989,
            c: 0.314,
            v_threshold: -60.2,
            v_reset: -74.7,
            v_init: -70.0,
            t_refractory_ms: 2.0,
        }
    }
}

impl LifParams {
    /// The resting potential `−a/b`, where the leak balances the drive.
    #[must_use]
    pub fn v_rest(&self) -> f64 {
        -self.a / self.b
    }

    /// The rheobase: the smallest constant current that can ever reach
    /// threshold (where `dv/dt = 0` exactly at threshold).
    #[must_use]
    pub fn rheobase(&self) -> f64 {
        -(self.a + self.b * self.v_threshold) / self.c
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SnnError> {
        if self.b >= 0.0 {
            return Err(SnnError::InvalidConfig {
                field: "lif.b",
                reason: format!("leak coefficient must be negative, got {}", self.b),
            });
        }
        if self.v_reset >= self.v_threshold {
            return Err(SnnError::InvalidConfig {
                field: "lif.v_reset",
                reason: "reset must lie below threshold".into(),
            });
        }
        Ok(())
    }
}

/// Conductance-update magnitudes.
///
/// For 16-bit and floating-point learning the paper uses the
/// conductance-dependent exponentials of Eqs. 4–5; for ≤ 8-bit learning the
/// step is the fixed value `ΔG = 1/2^w` (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StdpMagnitudes {
    /// Eqs. 4–5: `ΔG_p = α_p·e^{−β_p (G−G_min)/(G_max−G_min)}`,
    /// `ΔG_d = α_d·e^{−β_d (G_max−G)/(G_max−G_min)}`.
    Querlioz {
        /// Potentiation amplitude `α_p`.
        alpha_p: f64,
        /// Potentiation decay `β_p`.
        beta_p: f64,
        /// Depression amplitude `α_d`.
        alpha_d: f64,
        /// Depression decay `β_d`.
        beta_d: f64,
    },
    /// The fixed low-precision step `ΔG = 1/2^w` (`w` = total bit width).
    FixedStep {
        /// The step magnitude.
        delta_g: f64,
    },
}

impl StdpMagnitudes {
    /// Potentiation magnitude at conductance `g` within `[g_min, g_max]`.
    #[must_use]
    pub fn potentiation(&self, g: f64, g_min: f64, g_max: f64) -> f64 {
        match *self {
            StdpMagnitudes::Querlioz { alpha_p, beta_p, .. } => {
                alpha_p * (-beta_p * (g - g_min) / (g_max - g_min)).exp()
            }
            StdpMagnitudes::FixedStep { delta_g } => delta_g,
        }
    }

    /// Depression magnitude at conductance `g` within `[g_min, g_max]`.
    #[must_use]
    pub fn depression(&self, g: f64, g_min: f64, g_max: f64) -> f64 {
        match *self {
            StdpMagnitudes::Querlioz { alpha_d, beta_d, .. } => {
                alpha_d * (-beta_d * (g_max - g) / (g_max - g_min)).exp()
            }
            StdpMagnitudes::FixedStep { delta_g } => delta_g,
        }
    }
}

/// Stochastic-STDP acceptance probabilities (Eqs. 6–7).
///
/// Both probabilities are evaluated when the post-neuron spikes, as a
/// function of `Δt ≥ 0`, the time since the synapse's pre-neuron last
/// fired:
///
/// * `P_pot(Δt) = γ_pot·e^{−Δt/τ_pot}` — "higher when Δt is smaller,
///   indicating a stronger causal relationship" (Eq. 6);
/// * `P_dep(Δt) = γ_dep·(1 − e^{−Δt/τ_dep})` — "higher when Δt is larger":
///   stale or never-active inputs depress, saturating at `γ_dep` (Eq. 7).
///
/// The two windows are complementary: an input that fired within `τ_pot`
/// of the post spike tends to potentiate, one silent for longer than
/// `τ_dep` tends to depress, and each decision is a probability draw rather
/// than a certainty — the paper's stochastic analogue of the deterministic
/// post-triggered baseline. The maxima `γ_pot`, `γ_dep` cap both curves
/// (Fig. 1c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticParams {
    /// Maximum potentiation probability `γ_pot`.
    pub gamma_pot: f64,
    /// Potentiation time constant `τ_pot` (ms).
    pub tau_pot_ms: f64,
    /// Maximum depression probability `γ_dep`.
    pub gamma_dep: f64,
    /// Depression time constant `τ_dep` (ms).
    pub tau_dep_ms: f64,
}

impl StochasticParams {
    /// `P_pot(Δt)` for `Δt ≥ 0` (ms); zero for a never-active input.
    #[must_use]
    pub fn p_pot(&self, dt_ms: f64) -> f64 {
        debug_assert!(dt_ms >= 0.0);
        if dt_ms.is_finite() {
            self.gamma_pot * (-dt_ms / self.tau_pot_ms).exp()
        } else {
            0.0
        }
    }

    /// `P_dep(Δt)` for `Δt ≥ 0` (ms); saturates at `γ_dep` for a
    /// never-active input.
    #[must_use]
    pub fn p_dep(&self, dt_ms: f64) -> f64 {
        debug_assert!(dt_ms >= 0.0);
        if dt_ms.is_finite() {
            self.gamma_dep * (1.0 - (-dt_ms / self.tau_dep_ms).exp())
        } else {
            self.gamma_dep
        }
    }
}

/// Which point-neuron model the excitatory layer runs.
///
/// The paper's experiments all use LIF (Eqs. 1–2); Izhikevich and AdEx are
/// the "different neuron models" the simulator advertises. For the
/// two-variable models the adaptive threshold θ is applied as an
/// inhibitory current offset (their spike condition is model-internal
/// rather than a comparable voltage threshold).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeuronModelKind {
    /// Leaky integrate-and-fire with the [`LifParams`] of this config.
    Lif,
    /// Izhikevich (2003) two-variable model.
    Izhikevich(IzhikevichParams),
    /// Adaptive exponential integrate-and-fire.
    Adex(AdexParams),
}

/// How the winner-take-all lateral inhibition of Fig. 3 is realized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InhibitionMode {
    /// The inhibitory layer is folded into the engine: a spiking
    /// excitatory neuron suppresses all others for `t_inh` within the same
    /// step (the default; what the paper's description reduces to when the
    /// inhibitory neurons are fast).
    Implicit,
    /// The inhibitory layer is simulated explicitly: each excitatory spike
    /// drives its private inhibitory LIF partner with `w_exc_to_inh`
    /// current, and only when that partner itself fires does the
    /// suppression of the other excitatory neurons begin — adding the
    /// second layer's integration latency to the WTA loop.
    Explicit {
        /// Drive injected into the partner per excitatory spike.
        w_exc_to_inh: f64,
    },
}

/// Numeric precision of the synapse conductances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point: conductances stay continuous.
    Float32,
    /// Fixed point under a [`QFormat`], re-quantized on every update.
    Fixed(QFormat),
}

impl Precision {
    /// Total bit width of the representation.
    #[must_use]
    pub fn bits(&self) -> u8 {
        match self {
            Precision::Float32 => 32,
            Precision::Fixed(q) => q.total_bits(),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Float32 => f.write_str("fp32"),
            Precision::Fixed(q) => write!(f, "{q}"),
        }
    }
}

/// How the engine executes STDP updates.
///
/// Both modes produce **bit-identical** results for the same seed: every
/// update decision and rounding draw is keyed by `(synapse, step)` on a
/// counter-based Philox stream, so *when* an update is computed cannot
/// change *what* is computed (see DESIGN.md §lazy-plasticity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlasticityExecution {
    /// Apply every update at the step that generates it, walking each
    /// spiking neuron's full receptive field. This is the dense reference
    /// path the differential tests treat as the oracle.
    Eager,
    /// Defer updates as per-row events and settle synapses at touch time
    /// (pre-spike reads and an end-of-presentation flush), so per-step work
    /// scales with spike activity instead of `n_inputs × n_excitatory`.
    #[default]
    Lazy,
}

impl std::fmt::Display for PlasticityExecution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlasticityExecution::Eager => f.write_str("eager"),
            PlasticityExecution::Lazy => f.write_str("lazy"),
        }
    }
}

/// How the engine delivers synaptic current each step.
///
/// Both modes compute the *same canonical sum* — each neuron's incoming
/// current is accumulated over the step's spiking inputs in ascending input
/// order, folded in fixed-size blocks — so they are **bit-identical** for
/// the same seed and at any worker count (see DESIGN.md §sparse-delivery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurrentDelivery {
    /// Scan every neuron's full receptive field each step, gating each
    /// synapse on its input's spike flag: `O(n_inputs × n_excitatory)` per
    /// step regardless of activity. This is the reference path the
    /// differential tests treat as the oracle.
    Dense,
    /// Deliver current *from spikes to neurons*: compact the step's spiking
    /// inputs into an active list and gather over `active × n_excitatory`
    /// through a transposed (neuron-major) conductance view, so per-step
    /// delivery work scales with input activity (well under 2% of inputs at
    /// the paper's 1–22 Hz baseline rates).
    #[default]
    Sparse,
}

impl std::fmt::Display for CurrentDelivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurrentDelivery::Dense => f.write_str("dense"),
            CurrentDelivery::Sparse => f.write_str("sparse"),
        }
    }
}

/// Which plasticity rule drives learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleKind {
    /// The deterministic baseline (Querlioz-style post-triggered updates).
    Deterministic,
    /// The paper's stochastic rule (Eqs. 6–7).
    Stochastic,
}

impl std::fmt::Display for RuleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleKind::Deterministic => f.write_str("deterministic"),
            RuleKind::Stochastic => f.write_str("stochastic"),
        }
    }
}

/// The input-frequency range of the rate encoder (Fig. 1d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyRange {
    /// Frequency of a zero-intensity pixel (Hz).
    pub f_min_hz: f64,
    /// Frequency of a full-intensity pixel (Hz).
    pub f_max_hz: f64,
}

impl FrequencyRange {
    /// Creates a range; `f_min` may equal `f_max`.
    #[must_use]
    pub fn new(f_min_hz: f64, f_max_hz: f64) -> Self {
        FrequencyRange { f_min_hz, f_max_hz }
    }

    /// Frequency for an 8-bit pixel intensity, linear in intensity.
    #[must_use]
    pub fn frequency_for(&self, intensity: u8) -> f64 {
        let t = f64::from(intensity) / 255.0;
        self.f_min_hz + (self.f_max_hz - self.f_min_hz) * t
    }
}

/// The Table I learning presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// 2-bit fixed point (Q0.2).
    Bit2,
    /// 4-bit fixed point (Q0.4).
    Bit4,
    /// 8-bit fixed point (Q1.7).
    Bit8,
    /// 16-bit fixed point (Q1.15).
    Bit16,
    /// High-frequency learning (5–78 Hz, short-term stochastic window).
    HighFrequency,
    /// 32-bit floating point at the baseline 1–22 Hz range.
    FullPrecision,
}

impl Preset {
    /// All presets in Table I order, then full precision.
    pub const ALL: [Preset; 6] = [
        Preset::Bit2,
        Preset::Bit4,
        Preset::Bit8,
        Preset::Bit16,
        Preset::HighFrequency,
        Preset::FullPrecision,
    ];
}

/// Complete configuration of the learning network (Fig. 3 architecture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of input spike trains (one per pixel; 784 for 28×28 images).
    pub n_inputs: usize,
    /// Number of excitatory neurons in the first layer (1000 in the paper).
    pub n_excitatory: usize,
    /// Neuron model parameters (used by [`NeuronModelKind::Lif`]).
    pub lif: LifParams,
    /// Which neuron model the excitatory layer runs.
    pub neuron: NeuronModelKind,
    /// Simulation step (ms).
    pub dt_ms: f64,
    /// Which plasticity rule to use.
    pub rule: RuleKind,
    /// How STDP updates are executed (eager reference path or the lazy
    /// event-driven path). Defaults to [`PlasticityExecution::Lazy`]; the
    /// two are bit-identical for the same seed. Rules that consume pre-side
    /// events ([`crate::stdp::PlasticityRule::uses_pre_events`]) force the
    /// eager path.
    #[serde(default)]
    pub plasticity: PlasticityExecution,
    /// How synaptic current is delivered each step (dense reference scan or
    /// the sparse active-list gather). Defaults to
    /// [`CurrentDelivery::Sparse`]; the two are bit-identical for the same
    /// seed.
    #[serde(default)]
    pub delivery: CurrentDelivery,
    /// Update magnitudes (Eqs. 4–5 or fixed step).
    pub magnitudes: StdpMagnitudes,
    /// Stochastic acceptance parameters (Eqs. 6–7); also used by the
    /// deterministic rule for its pairing window.
    pub stochastic: StochasticParams,
    /// Calibration scale applied to `γ_dep` when the stochastic rule is
    /// instantiated.
    ///
    /// With Poisson-encoded inputs the expected age of a pre spike at a
    /// post-spike event makes the depression window open far more often
    /// than the potentiation window (`E[P_dep] ≈ 2.6·E[P_pot]` even for a
    /// 22 Hz pattern pixel), so Table I's equal `γ` values would collapse
    /// every conductance to `G_min`. Scaling `γ_dep` restores the drift
    /// balance the paper's results require — pattern inputs net-potentiate,
    /// background inputs net-depress (see DESIGN.md §calibration).
    pub gamma_dep_scale: f64,
    /// Conductance bounds `G_min`, `G_max`.
    pub g_min: f64,
    /// Upper conductance bound.
    pub g_max: f64,
    /// Storage precision of conductances.
    pub precision: Precision,
    /// Rounding mode applied on every fixed-point update.
    pub rounding: Rounding,
    /// LTP pairing window for the deterministic rule (ms): on a post spike,
    /// synapses whose pre fired within this window potentiate, all others
    /// depress (Querlioz crossbar rule).
    pub ltp_window_ms: f64,
    /// Winner-take-all inhibition duration `t_inh` (ms).
    pub t_inh_ms: f64,
    /// How the inhibitory layer is realized.
    pub inhibition: InhibitionMode,
    /// Amplitude of the voltage spike a pre-neuron transmits (Eq. 3's
    /// `v_pre`); scales all synaptic currents.
    pub v_spike: f64,
    /// Synaptic current decay time constant (ms).
    pub tau_syn_ms: f64,
    /// Input frequency range of the rate encoder.
    pub frequency: FrequencyRange,
    /// Adaptive-threshold homeostasis: per-spike threshold increment (mV).
    /// Zero disables homeostasis.
    pub theta_plus: f64,
    /// Homeostasis decay time constant (ms).
    pub tau_theta_ms: f64,
    /// Bounds of the uniform conductance initialization, as fractions of
    /// `[g_min, g_max]`.
    pub init_range: (f64, f64),
    /// Optional per-neuron incoming-weight normalization: after each
    /// training presentation every receptive field is rescaled so its
    /// conductances sum to this target (Diehl-style). `None` (the paper's
    /// configuration) disables it; provided as an ablatable extension.
    pub weight_norm_target: Option<f64>,
}

impl NetworkConfig {
    /// Builds the configuration for a Table I `preset` with the given
    /// network size.
    ///
    /// `Preset::Bit16`, `Preset::HighFrequency` and `Preset::FullPrecision`
    /// use the Querlioz magnitudes (`α_p = 0.01, β_p = 3, α_d = 0.005,
    /// β_d = 3`); the ≤ 8-bit presets use the fixed `1/2^w` step, exactly as
    /// in Table I (where their α/β columns are "-").
    #[must_use]
    pub fn from_preset(preset: Preset, n_inputs: usize, n_excitatory: usize) -> Self {
        let querlioz = StdpMagnitudes::Querlioz {
            alpha_p: 0.01,
            beta_p: 3.0,
            alpha_d: 0.005,
            beta_d: 3.0,
        };
        let low_freq = FrequencyRange::new(1.0, 22.0);
        let (precision, magnitudes, stochastic, frequency) = match preset {
            Preset::Bit2 => (
                Precision::Fixed(QFormat::Q0_2),
                StdpMagnitudes::FixedStep { delta_g: QFormat::Q0_2.paper_delta_g() },
                StochasticParams {
                    gamma_pot: 0.2,
                    tau_pot_ms: 20.0,
                    gamma_dep: 0.2,
                    tau_dep_ms: 10.0,
                },
                low_freq,
            ),
            Preset::Bit4 => (
                Precision::Fixed(QFormat::Q0_4),
                StdpMagnitudes::FixedStep { delta_g: QFormat::Q0_4.paper_delta_g() },
                StochasticParams {
                    gamma_pot: 0.3,
                    tau_pot_ms: 30.0,
                    gamma_dep: 0.3,
                    tau_dep_ms: 10.0,
                },
                low_freq,
            ),
            Preset::Bit8 => (
                Precision::Fixed(QFormat::Q1_7),
                StdpMagnitudes::FixedStep { delta_g: QFormat::Q1_7.paper_delta_g() },
                StochasticParams {
                    gamma_pot: 0.5,
                    tau_pot_ms: 30.0,
                    gamma_dep: 0.5,
                    tau_dep_ms: 10.0,
                },
                low_freq,
            ),
            Preset::Bit16 => (
                Precision::Fixed(QFormat::Q1_15),
                querlioz,
                StochasticParams {
                    gamma_pot: 0.9,
                    tau_pot_ms: 30.0,
                    gamma_dep: 0.9,
                    tau_dep_ms: 10.0,
                },
                low_freq,
            ),
            Preset::HighFrequency => (
                Precision::Float32,
                querlioz,
                StochasticParams {
                    gamma_pot: 0.3,
                    tau_pot_ms: 80.0,
                    gamma_dep: 0.2,
                    tau_dep_ms: 5.0,
                },
                FrequencyRange::new(5.0, 78.0),
            ),
            Preset::FullPrecision => (
                Precision::Float32,
                querlioz,
                StochasticParams {
                    gamma_pot: 0.9,
                    tau_pot_ms: 30.0,
                    gamma_dep: 0.9,
                    tau_dep_ms: 10.0,
                },
                low_freq,
            ),
        };
        // Depression calibration per precision regime: soft-bounded Querlioz
        // magnitudes self-stabilize (scale 1.0); fixed-step walks need the
        // depression event rate reduced in proportion to how coarse the
        // step is (see the `gamma_dep_scale` field docs).
        let gamma_dep_scale = match preset {
            Preset::Bit2 => 0.15,
            Preset::Bit4 => 0.3,
            Preset::Bit8 => 0.5,
            _ => 1.0,
        };
        // G_max/G_min are "-" in Table I for the ≤8-bit rows: the bounds are
        // the format's own range.
        let (g_min, g_max) = match precision {
            Precision::Fixed(q) if q.total_bits() <= 8 => (0.0, q.max_value().min(1.0)),
            _ => (0.0, 1.0),
        };
        NetworkConfig {
            n_inputs,
            n_excitatory,
            lif: LifParams::default(),
            neuron: NeuronModelKind::Lif,
            dt_ms: 0.5,
            rule: RuleKind::Stochastic,
            plasticity: PlasticityExecution::default(),
            delivery: CurrentDelivery::default(),
            magnitudes,
            stochastic,
            g_min,
            g_max,
            precision,
            rounding: Rounding::Stochastic,
            gamma_dep_scale,
            ltp_window_ms: 20.0,
            t_inh_ms: 10.0,
            inhibition: InhibitionMode::Implicit,
            v_spike: 1.0,
            tau_syn_ms: 5.0,
            frequency,
            theta_plus: 0.05,
            tau_theta_ms: 1.0e5,
            init_range: (0.3, 0.8),
            weight_norm_target: None,
        }
    }

    /// Switches the plasticity rule.
    #[must_use]
    pub fn with_rule(mut self, rule: RuleKind) -> Self {
        self.rule = rule;
        self
    }

    /// Switches the plasticity execution mode.
    #[must_use]
    pub fn with_plasticity(mut self, plasticity: PlasticityExecution) -> Self {
        self.plasticity = plasticity;
        self
    }

    /// Switches the current-delivery strategy.
    #[must_use]
    pub fn with_delivery(mut self, delivery: CurrentDelivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Switches the rounding mode.
    #[must_use]
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// Overrides the input frequency range.
    #[must_use]
    pub fn with_frequency(mut self, f_min_hz: f64, f_max_hz: f64) -> Self {
        self.frequency = FrequencyRange::new(f_min_hz, f_max_hz);
        self
    }

    /// Total number of plastic synapses (`n_inputs × n_excitatory`).
    #[must_use]
    pub fn n_synapses(&self) -> usize {
        self.n_inputs * self.n_excitatory
    }

    /// Validates the full configuration.
    pub fn validate(&self) -> Result<(), SnnError> {
        self.lif.validate()?;
        if self.n_inputs == 0 {
            return Err(SnnError::InvalidConfig {
                field: "n_inputs",
                reason: "network needs at least one input train".into(),
            });
        }
        if self.n_excitatory == 0 {
            return Err(SnnError::InvalidConfig {
                field: "n_excitatory",
                reason: "network needs at least one excitatory neuron".into(),
            });
        }
        if self.dt_ms <= 0.0 || self.dt_ms.is_nan() {
            return Err(SnnError::InvalidConfig {
                field: "dt_ms",
                reason: format!("step must be positive, got {}", self.dt_ms),
            });
        }
        if self.g_min >= self.g_max {
            return Err(SnnError::InvalidConfig {
                field: "g_min/g_max",
                reason: format!("need g_min < g_max, got [{}, {}]", self.g_min, self.g_max),
            });
        }
        if let Precision::Fixed(q) = self.precision {
            if self.g_max > q.max_value() + 1e-12 {
                return Err(SnnError::InvalidConfig {
                    field: "g_max",
                    reason: format!("{} cannot represent g_max = {}", q, self.g_max),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.gamma_dep_scale) {
            return Err(SnnError::InvalidConfig {
                field: "gamma_dep_scale",
                reason: format!("must lie in [0, 1], got {}", self.gamma_dep_scale),
            });
        }
        for (name, p) in [
            ("gamma_pot", self.stochastic.gamma_pot),
            ("gamma_dep", self.stochastic.gamma_dep),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(SnnError::InvalidConfig {
                    field: "stochastic",
                    reason: format!("{name} must be a probability, got {p}"),
                });
            }
        }
        if let Some(target) = self.weight_norm_target {
            if !(target > 0.0) {
                return Err(SnnError::InvalidConfig {
                    field: "weight_norm_target",
                    reason: format!("normalization target must be positive, got {target}"),
                });
            }
        }
        let (lo, hi) = self.init_range;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(SnnError::InvalidConfig {
                field: "init_range",
                reason: format!("must be an ordered pair of fractions, got ({lo}, {hi})"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lif_constants() {
        let p = LifParams::default();
        assert_eq!(p.v_threshold, -60.2);
        assert_eq!(p.v_reset, -74.7);
        assert_eq!(p.a, -6.77);
        assert_eq!(p.b, -0.0989);
        assert_eq!(p.c, 0.314);
        assert_eq!(p.v_init, -70.0);
    }

    #[test]
    fn rest_and_rheobase_are_consistent() {
        let p = LifParams::default();
        // Resting potential must lie between reset and threshold for the
        // neuron to be excitable but quiescent at zero input.
        let rest = p.v_rest();
        assert!(rest > p.v_reset && rest < p.v_threshold, "rest = {rest}");
        // Rheobase: at I slightly above, dv/dt > 0 at threshold.
        let i = p.rheobase() + 1e-9;
        let dvdt = p.a + p.b * p.v_threshold + p.c * i;
        assert!(dvdt > 0.0);
    }

    #[test]
    fn table1_presets_match_paper() {
        let c2 = NetworkConfig::from_preset(Preset::Bit2, 784, 100);
        assert_eq!(c2.stochastic.gamma_pot, 0.2);
        assert_eq!(c2.stochastic.tau_pot_ms, 20.0);
        assert_eq!(c2.stochastic.tau_dep_ms, 10.0);
        assert_eq!(c2.frequency.f_max_hz, 22.0);
        assert_eq!(c2.frequency.f_min_hz, 1.0);
        assert_eq!(c2.precision, Precision::Fixed(QFormat::Q0_2));
        assert!(matches!(c2.magnitudes, StdpMagnitudes::FixedStep { delta_g } if delta_g == 0.25));

        let c16 = NetworkConfig::from_preset(Preset::Bit16, 784, 100);
        assert_eq!(c16.stochastic.gamma_pot, 0.9);
        assert!(matches!(
            c16.magnitudes,
            StdpMagnitudes::Querlioz { alpha_p, beta_p, alpha_d, beta_d }
                if alpha_p == 0.01 && beta_p == 3.0 && alpha_d == 0.005 && beta_d == 3.0
        ));
        assert_eq!((c16.g_min, c16.g_max), (0.0, 1.0));

        let hf = NetworkConfig::from_preset(Preset::HighFrequency, 784, 100);
        assert_eq!(hf.frequency.f_max_hz, 78.0);
        assert_eq!(hf.frequency.f_min_hz, 5.0);
        assert_eq!(hf.stochastic.tau_pot_ms, 80.0);
        assert_eq!(hf.stochastic.tau_dep_ms, 5.0);
        assert_eq!(hf.stochastic.gamma_pot, 0.3);
        assert_eq!(hf.stochastic.gamma_dep, 0.2);
    }

    #[test]
    fn plasticity_defaults_to_lazy_and_deserializes_when_absent() {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 16, 4);
        assert_eq!(cfg.plasticity, PlasticityExecution::Lazy);
        assert_eq!(
            cfg.with_plasticity(PlasticityExecution::Eager).plasticity,
            PlasticityExecution::Eager
        );
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(NetworkConfig::from_preset(Preset::Bit8, 16, 4)).unwrap();
        json.as_object_mut().unwrap().remove("plasticity");
        let restored: NetworkConfig = serde_json::from_value(json).unwrap();
        assert_eq!(restored.plasticity, PlasticityExecution::Lazy);
        assert_eq!(format!("{}", PlasticityExecution::Lazy), "lazy");
        assert_eq!(format!("{}", PlasticityExecution::Eager), "eager");
    }

    #[test]
    fn delivery_defaults_to_sparse_and_deserializes_when_absent() {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 16, 4);
        assert_eq!(cfg.delivery, CurrentDelivery::Sparse);
        assert_eq!(cfg.with_delivery(CurrentDelivery::Dense).delivery, CurrentDelivery::Dense);
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(NetworkConfig::from_preset(Preset::Bit8, 16, 4)).unwrap();
        json.as_object_mut().unwrap().remove("delivery");
        let restored: NetworkConfig = serde_json::from_value(json).unwrap();
        assert_eq!(restored.delivery, CurrentDelivery::Sparse);
        assert_eq!(format!("{}", CurrentDelivery::Sparse), "sparse");
        assert_eq!(format!("{}", CurrentDelivery::Dense), "dense");
    }

    #[test]
    fn stochastic_windows_are_complementary() {
        let s = StochasticParams {
            gamma_pot: 0.9,
            tau_pot_ms: 30.0,
            gamma_dep: 0.9,
            tau_dep_ms: 10.0,
        };
        // Potentiation peaks at coincidence and decays.
        assert_eq!(s.p_pot(0.0), 0.9);
        assert!(s.p_pot(10.0) < s.p_pot(1.0));
        assert_eq!(s.p_pot(f64::INFINITY), 0.0);
        // Depression is closed at coincidence and saturates with staleness.
        assert_eq!(s.p_dep(0.0), 0.0);
        assert!(s.p_dep(20.0) > s.p_dep(2.0));
        assert_eq!(s.p_dep(f64::INFINITY), 0.9);
    }

    #[test]
    fn querlioz_magnitudes_soft_bound() {
        let m = StdpMagnitudes::Querlioz { alpha_p: 0.01, beta_p: 3.0, alpha_d: 0.005, beta_d: 3.0 };
        // Potentiation shrinks as G approaches G_max.
        assert!(m.potentiation(0.9, 0.0, 1.0) < m.potentiation(0.1, 0.0, 1.0));
        // Depression shrinks as G approaches G_min.
        assert!(m.depression(0.1, 0.0, 1.0) < m.depression(0.9, 0.0, 1.0));
        // At the extremes, amplitudes are α and α·e^{−β}.
        assert!((m.potentiation(0.0, 0.0, 1.0) - 0.01).abs() < 1e-12);
        assert!((m.potentiation(1.0, 0.0, 1.0) - 0.01 * (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn frequency_map_is_linear() {
        let f = FrequencyRange::new(1.0, 22.0);
        assert_eq!(f.frequency_for(0), 1.0);
        assert_eq!(f.frequency_for(255), 22.0);
        let mid = f.frequency_for(128);
        assert!(mid > 11.0 && mid < 12.0);
    }

    #[test]
    fn validation_accepts_all_presets() {
        for preset in Preset::ALL {
            let cfg = NetworkConfig::from_preset(preset, 784, 100);
            cfg.validate().unwrap_or_else(|e| panic!("{preset:?}: {e}"));
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = NetworkConfig::from_preset(Preset::FullPrecision, 784, 100);
        cfg.dt_ms = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::from_preset(Preset::FullPrecision, 784, 100);
        cfg.g_max = cfg.g_min;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::from_preset(Preset::Bit2, 784, 100);
        cfg.g_max = 2.0; // not representable in Q0.2
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::from_preset(Preset::FullPrecision, 784, 100);
        cfg.stochastic.gamma_pot = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = NetworkConfig::from_preset(Preset::FullPrecision, 784, 100);
        cfg.n_inputs = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn low_precision_g_max_fits_format() {
        let c = NetworkConfig::from_preset(Preset::Bit2, 784, 100);
        assert_eq!(c.g_max, 0.75);
        let c = NetworkConfig::from_preset(Preset::Bit8, 784, 100);
        assert_eq!(c.g_max, 1.0);
    }

    #[test]
    fn precision_display_and_bits() {
        assert_eq!(Precision::Float32.to_string(), "fp32");
        assert_eq!(Precision::Fixed(QFormat::Q1_7).to_string(), "Q1.7");
        assert_eq!(Precision::Fixed(QFormat::Q1_15).bits(), 16);
    }
}
