//! Adaptive exponential integrate-and-fire (AdEx) neuron model.

use super::{NeuronModel, NeuronState};
use serde::{Deserialize, Serialize};

/// Parameters of the AdEx model (Brette & Gerstner 2005):
///
/// `C dV/dt = −g_L (V − E_L) + g_L Δ_T exp((V − V_T)/Δ_T) − w + I`
/// `τ_w dw/dt = a (V − E_L) − w`
///
/// with reset `V ← V_r`, `w ← w + b` when `V` crosses the numerical spike
/// ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdexParams {
    /// Membrane capacitance (pF).
    pub c_pf: f64,
    /// Leak conductance (nS).
    pub g_l_ns: f64,
    /// Leak reversal potential (mV).
    pub e_l_mv: f64,
    /// Exponential threshold slope Δ_T (mV).
    pub delta_t_mv: f64,
    /// Soft threshold V_T (mV).
    pub v_t_mv: f64,
    /// Adaptation coupling `a` (nS).
    pub a_ns: f64,
    /// Spike-triggered adaptation increment `b` (pA).
    pub b_pa: f64,
    /// Adaptation time constant τ_w (ms).
    pub tau_w_ms: f64,
    /// Reset potential V_r (mV).
    pub v_reset_mv: f64,
}

impl Default for AdexParams {
    fn default() -> Self {
        // Tonic-firing parameter set from Brette & Gerstner (2005), Table 1.
        AdexParams {
            c_pf: 281.0,
            g_l_ns: 30.0,
            e_l_mv: -70.6,
            delta_t_mv: 2.0,
            v_t_mv: -50.4,
            a_ns: 4.0,
            b_pa: 80.5,
            tau_w_ms: 144.0,
            v_reset_mv: -70.6,
        }
    }
}

/// The AdEx neuron. Input current is interpreted in pA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdexNeuron {
    params: AdexParams,
}

/// Numerical spike ceiling: once the exponential blows past this, a spike is
/// registered and the membrane reset.
const SPIKE_CEILING_MV: f64 = 0.0;

impl AdexNeuron {
    /// Creates a neuron with `params`.
    #[must_use]
    pub fn new(params: AdexParams) -> Self {
        AdexNeuron { params }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> AdexParams {
        self.params
    }
}

impl NeuronModel for AdexNeuron {
    fn step(&self, state: &mut NeuronState, i_syn: f64, dt_ms: f64) -> bool {
        let p = self.params;
        // Substep for stability of the exponential term.
        let substeps = (dt_ms / 0.05).ceil().max(1.0) as u32;
        let h = dt_ms / f64::from(substeps);
        let mut v = state.v;
        let mut w = state.recovery;
        let mut spiked = false;
        for _ in 0..substeps {
            // Clamp the exponential argument to avoid overflow on the way up.
            let exp_arg = ((v - p.v_t_mv) / p.delta_t_mv).min(20.0);
            let dv = (-p.g_l_ns * (v - p.e_l_mv) + p.g_l_ns * p.delta_t_mv * exp_arg.exp() - w
                + i_syn)
                / p.c_pf;
            let dw = (p.a_ns * (v - p.e_l_mv) - w) / p.tau_w_ms;
            v += h * dv;
            w += h * dw;
            if v >= SPIKE_CEILING_MV {
                v = p.v_reset_mv;
                w += p.b_pa;
                spiked = true;
            }
        }
        state.v = v;
        state.recovery = w;
        spiked
    }

    fn initial_state(&self) -> NeuronState {
        NeuronState { v: self.params.e_l_mv, recovery: 0.0, refractory_ms: 0.0 }
    }

    fn name(&self) -> &'static str {
        "AdEx"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::firing_rate;

    #[test]
    fn quiescent_at_rest() {
        let n = AdexNeuron::new(AdexParams::default());
        assert_eq!(firing_rate(&n, 0.0, 1000.0, 0.1), 0.0);
    }

    #[test]
    fn fires_under_depolarizing_current() {
        let n = AdexNeuron::new(AdexParams::default());
        let rate = firing_rate(&n, 800.0, 2000.0, 0.1);
        assert!(rate > 1.0, "rate = {rate}");
    }

    #[test]
    fn adaptation_slows_firing() {
        // With spike-triggered adaptation the late-window rate is lower
        // than the early-window rate under the same current.
        let n = AdexNeuron::new(AdexParams::default());
        let mut s = n.initial_state();
        let dt = 0.1;
        let mut early = 0;
        let mut late = 0;
        let steps = 20_000; // 2 s
        for step in 0..steps {
            if n.step(&mut s, 700.0, dt) {
                if step < steps / 4 {
                    early += 1;
                } else if step >= 3 * steps / 4 {
                    late += 1;
                }
            }
        }
        assert!(early > 0, "neuron should fire initially");
        assert!(late <= early, "adaptation should not speed firing (early={early}, late={late})");
    }

    #[test]
    fn membrane_stays_finite() {
        let n = AdexNeuron::new(AdexParams::default());
        let mut s = n.initial_state();
        for _ in 0..100_000 {
            n.step(&mut s, 2000.0, 0.1);
            assert!(s.v.is_finite() && s.recovery.is_finite());
        }
    }
}
