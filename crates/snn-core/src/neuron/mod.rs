//! Spiking neuron models.
//!
//! ParallelSpikeSim "support\[s\] different neuron/synaptic models"; this
//! module provides the paper's leaky integrate-and-fire model (Eqs. 1–2)
//! plus Izhikevich and adaptive-exponential variants behind a common
//! [`NeuronModel`] trait. All models advance with explicit-Euler steps in
//! milliseconds, matching the simulator's fixed-step engine.

mod adex;
mod izhikevich;
mod lif;

pub use adex::{AdexNeuron, AdexParams};
pub use izhikevich::{IzhikevichNeuron, IzhikevichParams};
pub use lif::{fi_curve, LifNeuron};

/// Dynamic state shared by all point-neuron models.
///
/// `recovery` is used by the two-variable models (Izhikevich `u`, AdEx `w`)
/// and ignored by LIF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronState {
    /// Membrane potential (mV).
    pub v: f64,
    /// Recovery/adaptation variable (model-specific units).
    pub recovery: f64,
    /// Time remaining in the absolute refractory period (ms).
    pub refractory_ms: f64,
}

impl NeuronState {
    /// A state at `v` with no recovery activation and no refractoriness.
    #[must_use]
    pub fn at(v: f64) -> Self {
        NeuronState { v, recovery: 0.0, refractory_ms: 0.0 }
    }
}

/// A point-neuron model advanced by explicit Euler integration.
pub trait NeuronModel {
    /// Advances `state` by `dt_ms` under input current `i_syn`.
    /// Returns `true` if the neuron spiked during this step (the membrane
    /// has already been reset when this returns).
    fn step(&self, state: &mut NeuronState, i_syn: f64, dt_ms: f64) -> bool;

    /// The state a fresh neuron of this model starts in.
    fn initial_state(&self) -> NeuronState;

    /// Model name for reports.
    fn name(&self) -> &'static str;
}

/// Measures the steady-state firing rate (Hz) of `model` under constant
/// current `i`, simulated for `duration_ms` with step `dt_ms`.
///
/// Used to regenerate the f–I curve of Fig. 1(a).
pub fn firing_rate<M: NeuronModel>(model: &M, i: f64, duration_ms: f64, dt_ms: f64) -> f64 {
    let mut state = model.initial_state();
    let steps = (duration_ms / dt_ms).round() as u64;
    // Discard a warm-up third so the rate reflects the limit cycle, not the
    // initial transient.
    let warmup = steps / 3;
    let mut spikes = 0u64;
    for step in 0..steps {
        if model.step(&mut state, i, dt_ms) && step >= warmup {
            spikes += 1;
        }
    }
    let measured_ms = (steps - warmup) as f64 * dt_ms;
    spikes as f64 / (measured_ms / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LifParams;

    #[test]
    fn firing_rate_zero_below_rheobase() {
        let p = LifParams::default();
        let lif = LifNeuron::new(p);
        let rate = firing_rate(&lif, p.rheobase() * 0.5, 2000.0, 0.1);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn firing_rate_monotone_in_current() {
        let lif = LifNeuron::new(LifParams::default());
        let r1 = firing_rate(&lif, 3.0, 2000.0, 0.1);
        let r2 = firing_rate(&lif, 5.0, 2000.0, 0.1);
        let r3 = firing_rate(&lif, 8.0, 2000.0, 0.1);
        assert!(r1 < r2 && r2 < r3, "rates: {r1} {r2} {r3}");
        assert!(r1 > 0.0);
    }
}
