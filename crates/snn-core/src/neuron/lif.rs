//! The paper's leaky integrate-and-fire model (Eqs. 1–2).

use super::{NeuronModel, NeuronState};
use crate::config::LifParams;

/// Leaky integrate-and-fire neuron:
/// `dv/dt = a + b·v + c·I`, reset to `v_reset` on crossing `v_threshold`
/// (Eqs. 1–2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifNeuron {
    params: LifParams,
}

impl LifNeuron {
    /// Creates a neuron with `params`.
    #[must_use]
    pub fn new(params: LifParams) -> Self {
        LifNeuron { params }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Analytic inter-spike interval (ms) under constant current `i`,
    /// ignoring the refractory period. Returns `None` below rheobase.
    ///
    /// For `dv/dt = b·(v − v∞)` with `v∞ = −(a + c·I)/b`, the time from
    /// reset to threshold is `t = (1/b)·ln((v_th − v∞)/(v_reset − v∞))`.
    #[must_use]
    pub fn analytic_isi_ms(&self, i: f64) -> Option<f64> {
        let p = self.params;
        let v_inf = -(p.a + p.c * i) / p.b;
        if v_inf <= p.v_threshold {
            return None;
        }
        let t = (1.0 / p.b) * ((p.v_threshold - v_inf) / (p.v_reset - v_inf)).ln();
        Some(t + p.t_refractory_ms)
    }

    /// Analytic steady-state firing rate (Hz) under constant current `i`.
    #[must_use]
    pub fn analytic_rate_hz(&self, i: f64) -> f64 {
        self.analytic_isi_ms(i).map_or(0.0, |isi| 1000.0 / isi)
    }
}

impl NeuronModel for LifNeuron {
    fn step(&self, state: &mut NeuronState, i_syn: f64, dt_ms: f64) -> bool {
        let p = self.params;
        if state.refractory_ms > 0.0 {
            state.refractory_ms = (state.refractory_ms - dt_ms).max(0.0);
            state.v = p.v_reset;
            return false;
        }
        let dv = p.a + p.b * state.v + p.c * i_syn;
        state.v += dv * dt_ms;
        if state.v > p.v_threshold {
            state.v = p.v_reset;
            state.refractory_ms = p.t_refractory_ms;
            true
        } else {
            false
        }
    }

    fn initial_state(&self) -> NeuronState {
        NeuronState::at(self.params.v_init)
    }

    fn name(&self) -> &'static str {
        "LIF"
    }
}

/// Samples the f–I curve of Fig. 1(a): firing rate at each current in
/// `currents`, simulated for `duration_ms` at step `dt_ms`.
#[must_use]
pub fn fi_curve(params: LifParams, currents: &[f64], duration_ms: f64, dt_ms: f64) -> Vec<(f64, f64)> {
    let neuron = LifNeuron::new(params);
    currents
        .iter()
        .map(|&i| (i, super::firing_rate(&neuron, i, duration_ms, dt_ms)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neuron() -> LifNeuron {
        LifNeuron::new(LifParams::default())
    }

    #[test]
    fn resting_state_is_stable() {
        let n = neuron();
        let mut s = n.initial_state();
        for _ in 0..10_000 {
            assert!(!n.step(&mut s, 0.0, 0.1));
        }
        // Settles to the analytic resting potential.
        assert!((s.v - n.params().v_rest()).abs() < 0.05, "v = {}", s.v);
    }

    #[test]
    fn strong_current_causes_spiking_and_reset() {
        let n = neuron();
        let mut s = n.initial_state();
        let mut spiked = false;
        for _ in 0..10_000 {
            if n.step(&mut s, 10.0, 0.1) {
                spiked = true;
                assert_eq!(s.v, n.params().v_reset);
                break;
            }
        }
        assert!(spiked);
    }

    #[test]
    fn refractory_period_holds_at_reset() {
        let p = LifParams { t_refractory_ms: 5.0, ..LifParams::default() };
        let n = LifNeuron::new(p);
        let mut s = n.initial_state();
        // Drive to spike.
        while !n.step(&mut s, 20.0, 0.1) {}
        // During the refractory window the membrane is pinned.
        for _ in 0..49 {
            assert!(!n.step(&mut s, 100.0, 0.1));
            assert_eq!(s.v, p.v_reset);
        }
    }

    #[test]
    fn simulated_rate_matches_analytic() {
        let p = LifParams { t_refractory_ms: 0.0, ..LifParams::default() };
        let n = LifNeuron::new(p);
        for i in [3.0, 5.0, 10.0] {
            let analytic = n.analytic_rate_hz(i);
            let simulated = super::super::firing_rate(&n, i, 5000.0, 0.01);
            let rel = (simulated - analytic).abs() / analytic;
            assert!(rel < 0.05, "I={i}: simulated {simulated} vs analytic {analytic}");
        }
    }

    #[test]
    fn analytic_rate_zero_below_rheobase() {
        let n = neuron();
        let i = n.params().rheobase() * 0.99;
        assert_eq!(n.analytic_rate_hz(i), 0.0);
        assert!(n.analytic_rate_hz(n.params().rheobase() * 1.5) > 0.0);
    }

    #[test]
    fn fi_curve_is_monotone_nondecreasing() {
        let currents: Vec<f64> = (0..=20).map(|k| f64::from(k) * 0.5).collect();
        let curve = fi_curve(LifParams::default(), &currents, 2000.0, 0.1);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "non-monotone at {:?}", pair);
        }
        assert_eq!(curve.len(), currents.len());
    }
}
