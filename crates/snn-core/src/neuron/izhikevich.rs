//! Izhikevich two-variable neuron model.

use super::{NeuronModel, NeuronState};
use serde::{Deserialize, Serialize};

/// Parameters of the Izhikevich (2003) model:
/// `dv/dt = 0.04 v² + 5 v + 140 − u + I`, `du/dt = a (b v − u)`,
/// reset `v ← c`, `u ← u + d` on spike (`v ≥ 30 mV`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhikevichParams {
    /// Recovery time scale `a`.
    pub a: f64,
    /// Recovery sensitivity `b`.
    pub b: f64,
    /// Post-spike reset `c` (mV).
    pub c: f64,
    /// Post-spike recovery increment `d`.
    pub d: f64,
}

impl IzhikevichParams {
    /// Regular-spiking cortical neuron (the common default).
    #[must_use]
    pub fn regular_spiking() -> Self {
        IzhikevichParams { a: 0.02, b: 0.2, c: -65.0, d: 8.0 }
    }

    /// Fast-spiking inhibitory interneuron.
    #[must_use]
    pub fn fast_spiking() -> Self {
        IzhikevichParams { a: 0.1, b: 0.2, c: -65.0, d: 2.0 }
    }

    /// Intrinsically bursting neuron.
    #[must_use]
    pub fn bursting() -> Self {
        IzhikevichParams { a: 0.02, b: 0.2, c: -55.0, d: 4.0 }
    }
}

/// The Izhikevich neuron.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IzhikevichNeuron {
    params: IzhikevichParams,
}

const SPIKE_PEAK_MV: f64 = 30.0;

impl IzhikevichNeuron {
    /// Creates a neuron with `params`.
    #[must_use]
    pub fn new(params: IzhikevichParams) -> Self {
        IzhikevichNeuron { params }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> IzhikevichParams {
        self.params
    }
}

impl NeuronModel for IzhikevichNeuron {
    fn step(&self, state: &mut NeuronState, i_syn: f64, dt_ms: f64) -> bool {
        let p = self.params;
        let v = state.v;
        let u = state.recovery;
        // Substep the quadratic term at 0.25 ms for numerical stability, as
        // Izhikevich's reference implementation does.
        let substeps = (dt_ms / 0.25).ceil().max(1.0) as u32;
        let h = dt_ms / f64::from(substeps);
        let mut v = v;
        let mut u = u;
        let mut spiked = false;
        for _ in 0..substeps {
            v += h * (0.04 * v * v + 5.0 * v + 140.0 - u + i_syn);
            u += h * (p.a * (p.b * v - u));
            if v >= SPIKE_PEAK_MV {
                v = p.c;
                u += p.d;
                spiked = true;
            }
        }
        state.v = v;
        state.recovery = u;
        spiked
    }

    fn initial_state(&self) -> NeuronState {
        NeuronState { v: -70.0, recovery: self.params.b * -70.0, refractory_ms: 0.0 }
    }

    fn name(&self) -> &'static str {
        "Izhikevich"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::firing_rate;

    #[test]
    fn quiescent_without_input() {
        let n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        assert_eq!(firing_rate(&n, 0.0, 1000.0, 0.25), 0.0);
    }

    #[test]
    fn spikes_with_strong_input() {
        let n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let rate = firing_rate(&n, 10.0, 2000.0, 0.25);
        assert!(rate > 1.0, "rate = {rate}");
    }

    #[test]
    fn fast_spiking_outpaces_regular() {
        let rs = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let fs = IzhikevichNeuron::new(IzhikevichParams::fast_spiking());
        let i = 10.0;
        assert!(
            firing_rate(&fs, i, 2000.0, 0.25) > firing_rate(&rs, i, 2000.0, 0.25),
            "fast-spiking cell should fire faster at equal drive"
        );
    }

    #[test]
    fn reset_lands_at_c() {
        let p = IzhikevichParams::regular_spiking();
        let n = IzhikevichNeuron::new(p);
        let mut s = n.initial_state();
        loop {
            if n.step(&mut s, 15.0, 0.25) {
                break;
            }
        }
        // After a spike the membrane is near the reset (it may integrate a
        // little within the same outer step).
        assert!(s.v < 0.0, "v = {}", s.v);
    }
}
