//! Error type for network construction and simulation.

use std::fmt;

/// Errors produced by network construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnnError {
    /// A configuration value is out of its valid range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A topology refers to a neuron index that does not exist.
    NeuronOutOfRange {
        /// The offending index.
        index: usize,
        /// The population size it was checked against.
        population: usize,
    },
    /// Input data does not match the network's input width.
    InputSizeMismatch {
        /// Expected number of input trains.
        expected: usize,
        /// Received number of values.
        got: usize,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            SnnError::NeuronOutOfRange { index, population } => {
                write!(f, "neuron index {index} out of range for population of {population}")
            }
            SnnError::InputSizeMismatch { expected, got } => {
                write!(f, "input size mismatch: network expects {expected} trains, got {got}")
            }
        }
    }
}

impl std::error::Error for SnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SnnError::InvalidConfig { field: "dt_ms", reason: "must be positive".into() };
        assert!(e.to_string().contains("dt_ms"));
        let e = SnnError::NeuronOutOfRange { index: 10, population: 5 };
        assert!(e.to_string().contains("10"));
        let e = SnnError::InputSizeMismatch { expected: 784, got: 100 };
        assert!(e.to_string().contains("784"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(SnnError::InputSizeMismatch { expected: 1, got: 2 });
    }
}
