//! Network topologies.
//!
//! Two families cover the paper's experiments:
//!
//! * [`WtaTopology`] — the Fig. 3 learning architecture: input spike trains
//!   all-to-all onto an excitatory layer, with a 1:1 inhibitory layer that
//!   implements winner-take-all lateral inhibition.
//! * [`RecurrentNetwork`] — an arbitrary sparse recurrent network of LIF
//!   neurons, used for the Fig. 4 cross-validation against the sequential
//!   reference simulator (10³ neurons, 10⁴ synapses in the paper).

mod recurrent;

pub use recurrent::{Csr, RecurrentNetwork, Synapse};

use crate::SnnError;
use serde::{Deserialize, Serialize};

/// The Fig. 3 two-layer winner-take-all topology.
///
/// Input trains connect all-to-all to the excitatory layer; each excitatory
/// neuron drives its private partner in the inhibition layer, which in turn
/// inhibits every *other* excitatory neuron for `t_inh` — so the inhibitory
/// layer needs no explicit simulation and is folded into the engine's WTA
/// step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WtaTopology {
    /// Number of input spike trains (one per pixel).
    pub n_inputs: usize,
    /// Number of excitatory (and, implicitly, inhibitory) neurons.
    pub n_excitatory: usize,
}

impl WtaTopology {
    /// Creates the topology, validating both populations are non-empty.
    pub fn new(n_inputs: usize, n_excitatory: usize) -> Result<Self, SnnError> {
        if n_inputs == 0 {
            return Err(SnnError::InvalidConfig {
                field: "n_inputs",
                reason: "need at least one input train".into(),
            });
        }
        if n_excitatory == 0 {
            return Err(SnnError::InvalidConfig {
                field: "n_excitatory",
                reason: "need at least one excitatory neuron".into(),
            });
        }
        Ok(WtaTopology { n_inputs, n_excitatory })
    }

    /// Number of plastic synapses (all-to-all).
    #[must_use]
    pub fn n_synapses(&self) -> usize {
        self.n_inputs * self.n_excitatory
    }

    /// The paper's MNIST configuration: 784 trains onto 1000 neurons
    /// (784 000 plastic synapses).
    #[must_use]
    pub fn paper_mnist() -> Self {
        WtaTopology { n_inputs: 784, n_excitatory: 1000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_has_784k_synapses() {
        assert_eq!(WtaTopology::paper_mnist().n_synapses(), 784_000);
    }

    #[test]
    fn empty_populations_rejected() {
        assert!(WtaTopology::new(0, 10).is_err());
        assert!(WtaTopology::new(10, 0).is_err());
        assert!(WtaTopology::new(1, 1).is_ok());
    }
}
