//! Arbitrary sparse recurrent networks (the Fig. 4 workload).

use crate::config::LifParams;
use crate::SnnError;
use gpu_device::Philox4x32;
use serde::{Deserialize, Serialize};

/// One directed synapse of a recurrent network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Synapse {
    /// Source neuron index.
    pub pre: u32,
    /// Target neuron index.
    pub post: u32,
    /// Synaptic weight (conductance × spike amplitude, in current units).
    pub weight: f64,
}

/// A sparse recurrent network of LIF neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecurrentNetwork {
    /// Population size.
    pub n_neurons: usize,
    /// The synapse list.
    pub synapses: Vec<Synapse>,
    /// Shared neuron parameters.
    pub lif: LifParams,
}

impl RecurrentNetwork {
    /// Generates a random network: `n_synapses` synapses with endpoints
    /// uniform over the population (self-loops excluded) and weights uniform
    /// in `[weight_lo, weight_hi]`. Fully determined by `seed`.
    ///
    /// The Fig. 4 workload is `random(1000, 10_000, …)`.
    #[must_use]
    pub fn random(
        n_neurons: usize,
        n_synapses: usize,
        weight_lo: f64,
        weight_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(n_neurons >= 2, "need at least two neurons for self-loop-free synapses");
        let philox = Philox4x32::new(seed ^ 0x7e70_7030);
        let mut stream = philox.stream(0);
        let synapses = (0..n_synapses)
            .map(|_| {
                let pre = stream.next_below(n_neurons as u32);
                let mut post = stream.next_below(n_neurons as u32);
                if post == pre {
                    post = (post + 1) % n_neurons as u32;
                }
                let weight = weight_lo + stream.next_f64() * (weight_hi - weight_lo);
                Synapse { pre, post, weight }
            })
            .collect();
        RecurrentNetwork { n_neurons, synapses, lif: LifParams::default() }
    }

    /// Validates all endpoints are in range.
    pub fn validate(&self) -> Result<(), SnnError> {
        self.lif.validate()?;
        for s in &self.synapses {
            for idx in [s.pre, s.post] {
                if idx as usize >= self.n_neurons {
                    return Err(SnnError::NeuronOutOfRange {
                        index: idx as usize,
                        population: self.n_neurons,
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the CSR adjacency (grouped by pre-neuron) the engines iterate.
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        let mut counts = vec![0u32; self.n_neurons + 1];
        for s in &self.synapses {
            counts[s.pre as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; self.synapses.len()];
        let mut weights = vec![0.0f64; self.synapses.len()];
        for s in &self.synapses {
            let slot = cursor[s.pre as usize] as usize;
            targets[slot] = s.post;
            weights[slot] = s.weight;
            cursor[s.pre as usize] += 1;
        }
        Csr { offsets, targets, weights }
    }
}

/// Compressed sparse row adjacency, grouped by pre-synaptic neuron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// Row offsets: synapses of neuron `i` live at
    /// `offsets[i]..offsets[i+1]`.
    pub offsets: Vec<u32>,
    /// Post-neuron of each synapse.
    pub targets: Vec<u32>,
    /// Weight of each synapse.
    pub weights: Vec<f64>,
}

impl Csr {
    /// The outgoing (target, weight) pairs of neuron `pre`.
    pub fn out_edges(&self, pre: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[pre] as usize;
        let hi = self.offsets[pre + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_network_is_valid_and_deterministic() {
        let a = RecurrentNetwork::random(100, 1000, 0.0, 1.0, 5);
        let b = RecurrentNetwork::random(100, 1000, 0.0, 1.0, 5);
        assert_eq!(a, b);
        a.validate().unwrap();
        assert_eq!(a.synapses.len(), 1000);
        assert!(a.synapses.iter().all(|s| s.pre != s.post), "no self-loops");
        assert!(a.synapses.iter().all(|s| (0.0..=1.0).contains(&s.weight)));
    }

    #[test]
    fn csr_preserves_all_edges() {
        let net = RecurrentNetwork::random(50, 500, -0.5, 0.5, 9);
        let csr = net.to_csr();
        let mut rebuilt: Vec<(u32, u32, f64)> = Vec::new();
        for pre in 0..net.n_neurons {
            for (post, w) in csr.out_edges(pre) {
                rebuilt.push((pre as u32, post, w));
            }
        }
        assert_eq!(rebuilt.len(), net.synapses.len());
        let mut original: Vec<(u32, u32, f64)> =
            net.synapses.iter().map(|s| (s.pre, s.post, s.weight)).collect();
        original.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rebuilt.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(original, rebuilt);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut net = RecurrentNetwork::random(10, 20, 0.0, 1.0, 1);
        net.synapses[0].post = 99;
        assert!(matches!(net.validate(), Err(SnnError::NeuronOutOfRange { index: 99, .. })));
    }

    #[test]
    fn neurons_without_edges_have_empty_rows() {
        let net = RecurrentNetwork {
            n_neurons: 3,
            synapses: vec![Synapse { pre: 0, post: 1, weight: 1.0 }],
            lif: LifParams::default(),
        };
        let csr = net.to_csr();
        assert_eq!(csr.out_edges(0).count(), 1);
        assert_eq!(csr.out_edges(1).count(), 0);
        assert_eq!(csr.out_edges(2).count(), 0);
    }
}
