//! Core spiking-neural-network library of the ParallelSpikeSim reproduction.
//!
//! This crate implements the paper's primary contribution — unsupervised
//! STDP learning with a *stochastic* plasticity rule and *low-precision*
//! synapses — together with the neuron, synapse and network substrates it
//! runs on:
//!
//! * [`neuron`] — spiking neuron models: the paper's leaky integrate-and-fire
//!   (Eqs. 1–3) plus Izhikevich and AdEx variants ("support different
//!   neuron/synaptic models").
//! * [`stdp`] — plasticity: the deterministic baseline (Querlioz-style
//!   conductance-dependent magnitudes, Eqs. 4–5) and the stochastic rule
//!   (acceptance probabilities exponential in the pre/post spike-time
//!   difference, Eqs. 6–7).
//! * [`synapse`] — the conductance matrix with optional fixed-point storage
//!   and per-update re-quantization under a selectable rounding mode.
//! * [`network`] — topology descriptions: the paper's two-layer
//!   winner-take-all architecture (Fig. 3) and generic random networks for
//!   the Fig. 4 cross-validation.
//! * [`sim`] — the simulation engines: the learning engine
//!   ([`sim::WtaEngine`]) that runs kernels on a [`gpu_device::Device`], and
//!   a generic recurrent engine for arbitrary topologies.
//! * [`config`] — every parameter of the paper, including the Table I
//!   presets, encoded verbatim.
//!
//! DESIGN.md §1 summarizes what the paper builds, §5 records the
//! interpretation/calibration decisions baked into the presets, §7
//! specifies the lazy event-driven plasticity path, and §8 the sparse
//! spike-driven current delivery the engine's step pipeline uses.
//!
//! # Quickstart
//!
//! ```
//! use snn_core::config::{NetworkConfig, Preset};
//! use snn_core::sim::WtaEngine;
//! use gpu_device::{Device, DeviceConfig};
//!
//! let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 16, 4);
//! let device = Device::new(DeviceConfig::serial());
//! let mut engine = WtaEngine::new(cfg, &device, 42);
//!
//! // Present one "image": sixteen input trains firing at 60 Hz for 100 ms.
//! let spikes = engine.present(&[60.0; 16], 100.0, true);
//! assert_eq!(spikes.len(), 4); // one count per excitatory neuron
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
// The optional `simd` feature (nightly-only) switches the batched SWAR and
// decay sweeps to `std::simd`; the scalar defaults are bit-identical.
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod config;
mod error;
pub mod network;
pub mod neuron;
pub mod sim;
pub mod stdp;
pub mod synapse;

pub use error::SnnError;

/// RNG stream-id name spaces shared by the engine and the synapse settle
/// kernels, so input encoding and synapse draws never share a Philox
/// stream. Keyed draws are `(name space | entity id, step)`; keeping the
/// constants in one place — and public — is what makes the eager and lazy
/// plasticity paths (and external differential tests) consume *identical*
/// randomness.
pub mod streams {
    /// Input-train Bernoulli encoding draws.
    pub const INPUT: u64 = 1 << 40;
    /// Synapse acceptance and rounding draws.
    pub const SYNAPSE: u64 = 2 << 40;
    /// Frozen-evaluation presentation keys: the eval train generator
    /// derives one presentation-local Philox key per image from
    /// `EVAL | image_index`, so a presentation's spikes depend only on the
    /// seed and the image's dataset index — never on which replica runs it
    /// or in what order.
    pub const EVAL: u64 = 3 << 40;
}

/// Convenience re-exports of the types most callers need.
pub mod prelude {
    pub use crate::config::{
        CurrentDelivery, LifParams, NetworkConfig, PlasticityExecution, Precision, Preset,
        RuleKind, StdpMagnitudes, StochasticParams,
    };
    pub use crate::neuron::{LifNeuron, NeuronModel};
    pub use crate::sim::{EvalSnapshot, SpikeRaster, SpikeTrains, WtaEngine};
    pub use crate::stdp::{DeterministicStdp, PlasticityRule, StochasticStdp};
    pub use crate::synapse::{SynapseMatrix, TransposedConductances};
    pub use crate::SnnError;
}
