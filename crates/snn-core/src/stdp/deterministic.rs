//! The deterministic baseline rule.

use super::{PlasticityRule, UpdateKind};
use crate::config::RuleKind;

/// Querlioz-style deterministic STDP, the paper's baseline (refs. \[3\], \[4\]).
///
/// On every post-synaptic spike, *every* incoming synapse updates: those
/// whose pre-neuron fired within `ltp_window_ms` potentiate (the causal
/// input contributed to the spike), all others depress. This all-to-all
/// post-triggered scheme is what drives pattern separation in crossbar-style
/// unsupervised learning — and, at low precision, what wipes memory out:
/// every post spike moves every synapse by a full step, deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeterministicStdp {
    ltp_window_ms: f64,
}

impl DeterministicStdp {
    /// Creates the rule with the given LTP pairing window (ms).
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive.
    #[must_use]
    pub fn new(ltp_window_ms: f64) -> Self {
        assert!(ltp_window_ms > 0.0, "LTP window must be positive");
        DeterministicStdp { ltp_window_ms }
    }

    /// The LTP pairing window (ms).
    #[must_use]
    pub fn ltp_window_ms(&self) -> f64 {
        self.ltp_window_ms
    }
}

impl PlasticityRule for DeterministicStdp {
    fn on_post_spike(&self, dt_ms: f64, _uniform: f64) -> Option<UpdateKind> {
        if dt_ms <= self.ltp_window_ms {
            Some(UpdateKind::Potentiate)
        } else {
            Some(UpdateKind::Depress)
        }
    }

    fn on_pre_spike(&self, _dt_ms: f64, _uniform: f64) -> Option<UpdateKind> {
        // Depression is handled exhaustively on the post side.
        None
    }

    fn consumes_acceptance_draw(&self) -> bool {
        // The decision depends only on Δt, so settle passes may elide the
        // acceptance draw (see `decision_ignores_uniform_draw` below).
        false
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_pre_potentiates() {
        let r = DeterministicStdp::new(20.0);
        assert_eq!(r.on_post_spike(0.0, 0.5), Some(UpdateKind::Potentiate));
        assert_eq!(r.on_post_spike(20.0, 0.5), Some(UpdateKind::Potentiate));
    }

    #[test]
    fn stale_pre_depresses() {
        let r = DeterministicStdp::new(20.0);
        assert_eq!(r.on_post_spike(20.1, 0.5), Some(UpdateKind::Depress));
        assert_eq!(r.on_post_spike(f64::INFINITY, 0.5), Some(UpdateKind::Depress));
    }

    #[test]
    fn decision_ignores_uniform_draw() {
        let r = DeterministicStdp::new(20.0);
        for u in [0.0, 0.3, 0.999] {
            assert_eq!(r.on_post_spike(5.0, u), Some(UpdateKind::Potentiate));
            assert_eq!(r.on_post_spike(50.0, u), Some(UpdateKind::Depress));
        }
    }

    #[test]
    fn pre_spike_is_inert() {
        let r = DeterministicStdp::new(20.0);
        assert_eq!(r.on_pre_spike(1.0, 0.0), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = DeterministicStdp::new(0.0);
    }
}
