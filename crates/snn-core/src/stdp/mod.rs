//! Spike-timing-dependent plasticity rules.
//!
//! Both rules are expressed as *pure decision functions* over a spike
//! pairing: given the time separation of the pre/post spikes (and, for the
//! stochastic rule, a uniform acceptance draw), they decide whether the
//! synapse potentiates, depresses, or is left alone. Update *magnitudes*
//! (Eqs. 4–5 or the fixed low-precision step) live in
//! [`crate::config::StdpMagnitudes`] and are applied by
//! [`crate::synapse::SynapseMatrix`]; this separation keeps the decision
//! logic trivially testable and lets the engine swap rules at run time.
//!
//! * [`DeterministicStdp`] — the baseline: Querlioz-style post-triggered
//!   all-to-all updates. On every post-synaptic spike, synapses whose
//!   pre-neuron fired within the LTP window potentiate and all others
//!   depress. No randomness.
//! * [`StochasticStdp`] — the paper's contribution: each pairing is accepted
//!   with a probability exponential in the spike-time difference (Eqs. 6–7).
//!   Causal pairings (pre before post) potentiate with `P_pot`, anti-causal
//!   pairings (post before pre, evaluated when the pre spike arrives)
//!   depress with `P_dep`.

mod deterministic;
mod stochastic;

pub use deterministic::DeterministicStdp;
pub use stochastic::StochasticStdp;

use crate::config::{NetworkConfig, RuleKind};

/// The direction of a synaptic update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Long-term potentiation: conductance increases.
    Potentiate,
    /// Long-term depression: conductance decreases.
    Depress,
}

/// A plasticity rule: decides the fate of a synapse at each spike pairing.
///
/// `dt_ms` is always the non-negative separation between the two spikes
/// (use `f64::INFINITY` when the partner never spiked); `uniform` is a draw
/// from `[0, 1)` consumed only by stochastic rules.
pub trait PlasticityRule: Send + Sync {
    /// Decision for the causal pairing, evaluated when the **post**-neuron
    /// spikes: the pre-neuron last fired `dt_ms` ago.
    fn on_post_spike(&self, dt_ms: f64, uniform: f64) -> Option<UpdateKind>;

    /// Decision for the anti-causal pairing, evaluated when the
    /// **pre**-neuron spikes: the post-neuron last fired `dt_ms` ago.
    fn on_pre_spike(&self, dt_ms: f64, uniform: f64) -> Option<UpdateKind>;

    /// Whether [`PlasticityRule::on_pre_spike`] can ever return an update.
    /// The engine skips the pre-side kernel entirely when this is `false`
    /// (both built-in rules consolidate depression at the post event).
    fn uses_pre_events(&self) -> bool {
        false
    }

    /// Whether [`PlasticityRule::on_post_spike`] actually reads its
    /// `uniform` argument. Because every draw comes from a counter-based
    /// Philox stream keyed by `(synapse, step)` — not from shared generator
    /// state — a rule that ignores the draw lets the lazy settle path skip
    /// computing the Philox block entirely without changing any result.
    /// Defaults to `true` (the safe answer for custom rules).
    fn consumes_acceptance_draw(&self) -> bool {
        true
    }

    /// Which family this rule belongs to.
    fn kind(&self) -> RuleKind;
}

/// Builds the plasticity rule a network configuration asks for, including
/// the documented depression calibration
/// ([`NetworkConfig::gamma_dep_scale`]) for the stochastic rule.
///
/// This is the single constructor every trainer and commit path must use:
/// the parallel-training commit kernels rebuild the rule from the same
/// config as the serial engine, and bit-identity between them holds only
/// if both apply the same calibration.
#[must_use]
pub fn build_rule(cfg: &NetworkConfig) -> Box<dyn PlasticityRule> {
    match cfg.rule {
        RuleKind::Deterministic => Box::new(DeterministicStdp::new(cfg.ltp_window_ms)),
        RuleKind::Stochastic => {
            let mut params = cfg.stochastic;
            params.gamma_dep *= cfg.gamma_dep_scale;
            Box::new(StochasticStdp::new(params))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StochasticParams;

    fn stochastic() -> StochasticStdp {
        StochasticStdp::new(StochasticParams {
            gamma_pot: 0.9,
            tau_pot_ms: 30.0,
            gamma_dep: 0.9,
            tau_dep_ms: 10.0,
        })
    }

    #[test]
    fn rules_report_their_kind() {
        assert_eq!(DeterministicStdp::new(20.0).kind(), RuleKind::Deterministic);
        assert_eq!(stochastic().kind(), RuleKind::Stochastic);
    }

    #[test]
    fn trait_objects_are_usable() {
        let rules: Vec<Box<dyn PlasticityRule>> =
            vec![Box::new(DeterministicStdp::new(20.0)), Box::new(stochastic())];
        for rule in &rules {
            // A coincident causal pairing must never *depress*.
            assert_ne!(rule.on_post_spike(0.0, 0.0), Some(UpdateKind::Depress));
        }
    }
}
