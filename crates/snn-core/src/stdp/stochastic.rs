//! The paper's stochastic STDP rule (Eqs. 6–7).

use super::{PlasticityRule, UpdateKind};
use crate::config::{RuleKind, StochasticParams};

/// Stochastic STDP: every pairing decision is a probability draw.
///
/// Evaluated at each post-synaptic spike with `Δt` the time since the
/// synapse's pre-neuron last fired:
///
/// * potentiate with `P_pot = γ_pot·e^{−Δt/τ_pot}` (Eq. 6) — the causal
///   window, "higher when Δt is smaller";
/// * otherwise depress with `P_dep = γ_dep·(1 − e^{−Δt/τ_dep})` (Eq. 7) —
///   the complementary window, "higher when Δt is larger", saturating at
///   `γ_dep` for inputs that never fired.
///
/// The *level* of causal relationship — not just its sign — is therefore
/// encoded in how often a synapse actually moves. This rarefaction of
/// updates is what preserves memory at low precision and what tolerates
/// high input frequencies (Sections IV-B/C/D).
///
/// A large `τ_pot` with a small `τ_dep` produces the "short-term" behaviour
/// used for high-frequency learning (Table I, last row): the potentiation
/// window stays wide while depression reacts only to genuinely stale
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticStdp {
    params: StochasticParams,
}

impl StochasticStdp {
    /// Creates the rule with acceptance parameters `params`.
    #[must_use]
    pub fn new(params: StochasticParams) -> Self {
        StochasticStdp { params }
    }

    /// The acceptance parameters.
    #[must_use]
    pub fn params(&self) -> StochasticParams {
        self.params
    }

    /// The potentiation probability for a causal separation `dt_ms`.
    #[must_use]
    pub fn p_pot(&self, dt_ms: f64) -> f64 {
        self.params.p_pot(dt_ms)
    }

    /// The depression probability for a separation `dt_ms`.
    #[must_use]
    pub fn p_dep(&self, dt_ms: f64) -> f64 {
        self.params.p_dep(dt_ms)
    }
}

impl PlasticityRule for StochasticStdp {
    fn on_post_spike(&self, dt_ms: f64, uniform: f64) -> Option<UpdateKind> {
        // One draw decides between the two mutually exclusive windows:
        // [0, P_pot) → potentiate, [P_pot, P_pot + P_dep) → depress.
        let p_pot = self.params.p_pot(dt_ms);
        if uniform < p_pot {
            Some(UpdateKind::Potentiate)
        } else if uniform < p_pot + self.params.p_dep(dt_ms) {
            Some(UpdateKind::Depress)
        } else {
            None
        }
    }

    fn on_pre_spike(&self, _dt_ms: f64, _uniform: f64) -> Option<UpdateKind> {
        // Depression is consolidated at the post event via the
        // complementary window.
        None
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Stochastic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> StochasticStdp {
        StochasticStdp::new(StochasticParams {
            gamma_pot: 0.9,
            tau_pot_ms: 30.0,
            gamma_dep: 0.6,
            tau_dep_ms: 10.0,
        })
    }

    #[test]
    fn coincident_pairing_potentiates_below_gamma() {
        let r = rule();
        assert_eq!(r.on_post_spike(0.0, 0.89), Some(UpdateKind::Potentiate));
        // At Δt = 0 the depression window is closed, so draws above γ_pot
        // leave the synapse alone.
        assert_eq!(r.on_post_spike(0.0, 0.90), None);
    }

    #[test]
    fn stale_pairing_depresses_with_probability_gamma_dep() {
        let r = rule();
        // Δt ≫ both windows: P_pot ≈ 0, P_dep ≈ γ_dep.
        assert_eq!(r.on_post_spike(1000.0, 0.3), Some(UpdateKind::Depress));
        assert_eq!(r.on_post_spike(1000.0, 0.7), None);
    }

    #[test]
    fn never_spiked_input_depresses_at_full_gamma() {
        let r = rule();
        assert_eq!(r.on_post_spike(f64::INFINITY, 0.59), Some(UpdateKind::Depress));
        assert_eq!(r.on_post_spike(f64::INFINITY, 0.61), None);
    }

    #[test]
    fn potentiation_decays_and_depression_grows_with_separation() {
        let r = rule();
        assert!(r.p_pot(5.0) > r.p_pot(50.0));
        assert!(r.p_dep(5.0) < r.p_dep(50.0));
        // Complementarity: depression saturates at γ_dep.
        assert!((r.p_dep(1e6) - 0.6).abs() < 1e-9);
        assert_eq!(r.p_pot(0.0), 0.9);
        assert_eq!(r.p_dep(0.0), 0.0);
    }

    #[test]
    fn pre_side_events_are_inert() {
        assert_eq!(rule().on_pre_spike(3.0, 0.0), None);
    }

    #[test]
    fn empirical_rates_match_probabilities() {
        let r = rule();
        let dt = 12.0;
        let n = 100_000;
        let mut pots = 0;
        let mut deps = 0;
        for k in 0..n {
            let u = (f64::from(k) + 0.5) / f64::from(n);
            match r.on_post_spike(dt, u) {
                Some(UpdateKind::Potentiate) => pots += 1,
                Some(UpdateKind::Depress) => deps += 1,
                None => {}
            }
        }
        let pot_rate = f64::from(pots) / f64::from(n);
        let dep_rate = f64::from(deps) / f64::from(n);
        assert!((pot_rate - r.p_pot(dt)).abs() < 1e-3, "pot {pot_rate} vs {}", r.p_pot(dt));
        // The single-draw partition clips depression mass when the two
        // windows overlap enough that P_pot + P_dep > 1.
        let expected_dep = r.p_dep(dt).min(1.0 - r.p_pot(dt));
        assert!((dep_rate - expected_dep).abs() < 1e-3, "dep {dep_rate} vs {expected_dep}");
    }

    #[test]
    fn short_term_configuration_reshapes_windows() {
        // The high-frequency preset: long potentiation memory, depression
        // that reacts within a few ms of staleness.
        let short = StochasticStdp::new(StochasticParams {
            gamma_pot: 0.3,
            tau_pot_ms: 80.0,
            gamma_dep: 0.2,
            tau_dep_ms: 5.0,
        });
        // Potentiation stays live at 50 ms separation…
        assert!(short.p_pot(50.0) > 0.15);
        // …while the depression window is nearly fully open by 25 ms.
        assert!(short.p_dep(25.0) > 0.19);
    }
}
