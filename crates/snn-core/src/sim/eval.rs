//! Frozen-weight evaluation support: a shared read-only snapshot of the
//! trained state that replica engines mount without copying, and the
//! precomputed per-step spike trains that drive an RNG-free presentation.
//!
//! The determinism contract of the parallel evaluator rests on two pieces
//! here:
//!
//! * [`EvalSnapshot`] — an `Arc`-shared view of the learned conductances
//!   (row-major *and* transposed) plus the homeostasis thresholds. Every
//!   replica mounts the same allocation, so N replicas cost O(1) extra
//!   weight memory and trivially agree on the weights.
//! * [`SpikeTrains`] — one presentation's input spikes, laid out per step.
//!   The trains are generated *outside* the engine, keyed by
//!   `(image index, input, spike number)`, so a frozen presentation consumes
//!   no engine RNG at all: its outcome is a pure function of the snapshot
//!   and the trains, bit-identical on any replica, at any worker count, in
//!   any queue order.

use std::sync::Arc;

use crate::synapse::{SynapseMatrix, TransposedConductances};

/// One presentation's precomputed input spikes in step-major CSR layout:
/// `active(s)` is the ascending list of input indices that spike at step
/// `s`. Built by the eval train generator (`spike_encoding::pipeline`) and
/// consumed by `WtaEngine::present_frozen`, which stages each step's list
/// directly into its active-spike buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrains {
    n_inputs: usize,
    dt_ms: f64,
    /// CSR offsets: `indices[offsets[s]..offsets[s+1]]` is step `s`'s list.
    offsets: Vec<u32>,
    /// Concatenated ascending per-step input indices.
    indices: Vec<u32>,
}

impl SpikeTrains {
    /// An empty train set (zero steps) over `n_inputs` trains at `dt_ms`.
    ///
    /// # Panics
    ///
    /// Panics unless `dt_ms` is positive and finite.
    #[must_use]
    pub fn new(n_inputs: usize, dt_ms: f64) -> Self {
        assert!(dt_ms > 0.0 && dt_ms.is_finite(), "dt must be positive");
        SpikeTrains { n_inputs, dt_ms, offsets: vec![0], indices: Vec::new() }
    }

    /// Pre-allocates for `steps` further steps and `spikes` further spikes.
    pub fn reserve(&mut self, steps: usize, spikes: usize) {
        self.offsets.reserve(steps);
        self.indices.reserve(spikes);
    }

    /// Appends one step whose spiking inputs are `active`.
    ///
    /// # Panics
    ///
    /// Panics unless `active` is strictly ascending and in range — the
    /// invariant the delivery kernels' canonical blocked fold relies on.
    pub fn push_step(&mut self, active: &[u32]) {
        assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active list must be strictly ascending"
        );
        assert!(
            active.last().is_none_or(|&i| (i as usize) < self.n_inputs),
            "input index out of range"
        );
        self.indices.extend_from_slice(active);
        self.offsets.push(u32::try_from(self.indices.len()).expect("spike count overflow"));
    }

    /// Number of input trains.
    #[must_use]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Step width (ms) the trains were generated at.
    #[must_use]
    pub fn dt_ms(&self) -> f64 {
        self.dt_ms
    }

    /// Number of simulation steps covered.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Presentation duration (ms): `steps × dt`.
    #[must_use]
    pub fn duration_ms(&self) -> f64 {
        self.steps() as f64 * self.dt_ms
    }

    /// The ascending input indices that spike at `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.steps()`.
    #[must_use]
    pub fn active(&self, step: usize) -> &[u32] {
        let lo = self.offsets[step] as usize;
        let hi = self.offsets[step + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Total spikes across all steps.
    #[must_use]
    pub fn total_spikes(&self) -> usize {
        self.indices.len()
    }
}

/// A read-only snapshot of a trained engine's learned state, shared across
/// evaluation replicas by reference counting: the O(n_inputs × n_exc)
/// conductance matrix and its transposed view exist exactly once no matter
/// how many replicas mount them.
///
/// Capture one with [`crate::sim::WtaEngine::snapshot`] (or build it from a
/// restored checkpoint matrix with [`EvalSnapshot::new`]), then mount any
/// number of replicas with [`crate::sim::WtaEngine::replica`]. The snapshot
/// always carries the transposed view so a replica can run either delivery
/// mode.
#[derive(Debug, Clone)]
pub struct EvalSnapshot {
    synapses: Arc<SynapseMatrix>,
    transposed: Arc<TransposedConductances>,
    thetas: Arc<[f64]>,
}

impl EvalSnapshot {
    /// Builds a snapshot from a settled conductance matrix and the
    /// per-neuron adaptive-threshold offsets (homeostasis state), e.g. as
    /// restored from a checkpoint. The transposed view is derived here, so
    /// it is coherent by construction.
    ///
    /// # Panics
    ///
    /// Panics if `thetas.len()` differs from the matrix's post population.
    #[must_use]
    pub fn new(synapses: SynapseMatrix, thetas: Vec<f64>) -> Self {
        assert_eq!(
            thetas.len(),
            synapses.n_post(),
            "theta vector does not match the post population"
        );
        let transposed = TransposedConductances::new(&synapses);
        EvalSnapshot {
            synapses: Arc::new(synapses),
            transposed: Arc::new(transposed),
            thetas: thetas.into(),
        }
    }

    /// The shared conductance matrix.
    #[must_use]
    pub fn synapses(&self) -> &SynapseMatrix {
        &self.synapses
    }

    /// The per-neuron adaptive-threshold offsets.
    #[must_use]
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    pub(crate) fn synapses_arc(&self) -> Arc<SynapseMatrix> {
        Arc::clone(&self.synapses)
    }

    pub(crate) fn transposed_arc(&self) -> Arc<TransposedConductances> {
        Arc::clone(&self.transposed)
    }

    /// Exclusive access to all three shared stores for a commit phase —
    /// the row-major matrix, its transposed mirror, and the thetas.
    ///
    /// # Panics
    ///
    /// Panics if any replica still holds a reference: the round protocol
    /// joins (and drops) every replica engine before committing, so a
    /// surviving clone means a presentation outlived its barrier.
    pub(crate) fn commit_access(
        &mut self,
    ) -> (&mut SynapseMatrix, &mut TransposedConductances, &mut [f64]) {
        (
            Arc::get_mut(&mut self.synapses)
                .expect("commit requires every replica's matrix reference dropped"),
            Arc::get_mut(&mut self.transposed)
                .expect("commit requires every replica's transposed reference dropped"),
            Arc::get_mut(&mut self.thetas)
                .expect("commit requires every replica's theta reference dropped"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, Preset};

    #[test]
    fn spike_trains_round_trip_per_step_lists() {
        let mut t = SpikeTrains::new(8, 0.5);
        t.push_step(&[1, 3, 7]);
        t.push_step(&[]);
        t.push_step(&[0]);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.n_inputs(), 8);
        assert_eq!(t.active(0), &[1, 3, 7]);
        assert_eq!(t.active(1), &[] as &[u32]);
        assert_eq!(t.active(2), &[0]);
        assert_eq!(t.total_spikes(), 4);
        assert!((t.duration_ms() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_step_is_rejected() {
        let mut t = SpikeTrains::new(8, 0.5);
        t.push_step(&[3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_is_rejected() {
        let mut t = SpikeTrains::new(8, 0.5);
        t.push_step(&[8]);
    }

    #[test]
    fn snapshot_shares_one_matrix_allocation() {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 16, 4);
        let m = SynapseMatrix::new_random(&cfg, 1);
        let snap = EvalSnapshot::new(m, vec![0.0; 4]);
        let a = snap.clone();
        let b = snap.clone();
        assert!(Arc::ptr_eq(&a.synapses_arc(), &b.synapses_arc()));
        assert!(Arc::ptr_eq(&a.transposed_arc(), &b.transposed_arc()));
        assert!(snap.transposed.is_coherent(snap.synapses()));
    }

    #[test]
    #[should_panic(expected = "post population")]
    fn mismatched_thetas_are_rejected() {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 16, 4);
        let m = SynapseMatrix::new_random(&cfg, 1);
        let _ = EvalSnapshot::new(m, vec![0.0; 3]);
    }
}
