//! Spike-event recording.

use serde::{Deserialize, Serialize};

/// A recorded sequence of spike events `(time_ms, neuron)`.
///
/// Backs the raster plots of Fig. 6(a) and the agreement metric of Fig. 4.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpikeRaster {
    events: Vec<(f64, u32)>,
}

impl SpikeRaster {
    /// An empty raster.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a spike of `neuron` at `time_ms`.
    pub fn push(&mut self, time_ms: f64, neuron: u32) {
        self.events.push((time_ms, neuron));
    }

    /// All events in recording order (non-decreasing time).
    #[must_use]
    pub fn events(&self) -> &[(f64, u32)] {
        &self.events
    }

    /// Total number of spikes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no spikes were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Spike count per neuron, for a population of `n` neurons.
    #[must_use]
    pub fn counts(&self, n: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n];
        for &(_, neuron) in &self.events {
            if let Some(c) = counts.get_mut(neuron as usize) {
                *c += 1;
            }
        }
        counts
    }

    /// Mean population firing rate in Hz over `duration_ms`, for `n`
    /// neurons.
    #[must_use]
    pub fn mean_rate_hz(&self, n: usize, duration_ms: f64) -> f64 {
        if n == 0 || duration_ms <= 0.0 {
            return 0.0;
        }
        self.events.len() as f64 / (n as f64 * duration_ms / 1000.0)
    }

    /// The spike-train coincidence rate against `other`: the fraction of
    /// this raster's spikes that have a matching spike (same neuron, time
    /// within `tol_ms`) in the other raster. 1.0 means every spike is
    /// matched — the Fig. 4 "similar spiking activities" check.
    #[must_use]
    pub fn coincidence(&self, other: &SpikeRaster, tol_ms: f64) -> f64 {
        if self.events.is_empty() {
            return if other.events.is_empty() { 1.0 } else { 0.0 };
        }
        // Index the other raster by neuron for efficient lookup.
        let mut by_neuron: std::collections::HashMap<u32, Vec<f64>> =
            std::collections::HashMap::new();
        for &(t, n) in &other.events {
            by_neuron.entry(n).or_default().push(t);
        }
        let matched = self
            .events
            .iter()
            .filter(|&&(t, n)| {
                by_neuron
                    .get(&n)
                    .is_some_and(|times| {
                        // times is sorted (recording order); binary search window.
                        let idx = times.partition_point(|&x| x < t - tol_ms);
                        times.get(idx).is_some_and(|&x| (x - t).abs() <= tol_ms)
                    })
            })
            .count();
        matched as f64 / self.events.len() as f64
    }

    /// Renders an ASCII raster: one row per neuron in `neurons`, time
    /// binned into `cols` columns over `[0, duration_ms]`; `#` marks a bin
    /// containing at least one spike (Fig. 6a).
    #[must_use]
    pub fn to_ascii(&self, neurons: std::ops::Range<u32>, duration_ms: f64, cols: usize) -> String {
        let mut out = String::new();
        for n in neurons {
            let mut row = vec![b'.'; cols];
            for &(t, ev_n) in &self.events {
                if ev_n == n && t < duration_ms {
                    let col = ((t / duration_ms) * cols as f64) as usize;
                    row[col.min(cols - 1)] = b'#';
                }
            }
            out.push_str(&format!("{n:>5} |"));
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raster(events: &[(f64, u32)]) -> SpikeRaster {
        let mut r = SpikeRaster::new();
        for &(t, n) in events {
            r.push(t, n);
        }
        r
    }

    #[test]
    fn counts_per_neuron() {
        let r = raster(&[(1.0, 0), (2.0, 0), (3.0, 2)]);
        assert_eq!(r.counts(3), vec![2, 0, 1]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn counts_ignores_out_of_range_neurons() {
        let r = raster(&[(1.0, 9)]);
        assert_eq!(r.counts(3), vec![0, 0, 0]);
    }

    #[test]
    fn mean_rate() {
        // 10 spikes from 5 neurons over 1000 ms = 2 Hz per neuron.
        let mut r = SpikeRaster::new();
        for k in 0..10 {
            r.push(f64::from(k) * 100.0, k % 5);
        }
        assert!((r.mean_rate_hz(5, 1000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_rasters_coincide_fully() {
        let r = raster(&[(1.0, 0), (5.0, 1), (9.0, 0)]);
        assert_eq!(r.coincidence(&r, 0.1), 1.0);
    }

    #[test]
    fn disjoint_rasters_do_not_coincide() {
        let a = raster(&[(1.0, 0)]);
        let b = raster(&[(100.0, 0)]);
        assert_eq!(a.coincidence(&b, 1.0), 0.0);
        let c = raster(&[(1.0, 5)]);
        assert_eq!(a.coincidence(&c, 1.0), 0.0);
    }

    #[test]
    fn tolerance_window_matches_jittered_spikes() {
        let a = raster(&[(10.0, 3)]);
        let b = raster(&[(10.4, 3)]);
        assert_eq!(a.coincidence(&b, 0.5), 1.0);
        assert_eq!(a.coincidence(&b, 0.3), 0.0);
    }

    #[test]
    fn empty_rasters_are_trivially_coincident() {
        let e = SpikeRaster::new();
        assert_eq!(e.coincidence(&e, 1.0), 1.0);
        let r = raster(&[(1.0, 0)]);
        assert_eq!(e.coincidence(&r, 1.0), 0.0);
    }

    #[test]
    fn ascii_raster_marks_spikes() {
        let r = raster(&[(0.0, 0), (99.0, 1)]);
        let text = r.to_ascii(0..2, 100.0, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].ends_with('#'));
    }
}
