//! Multi-device sharded execution of the winner-take-all engine.
//!
//! [`ShardedEngine`] partitions the excitatory layer — and with it the
//! rows of the synapse matrix — across the simulated devices of a
//! [`DeviceManager`], runs each shard's fused deliver/integrate/decay
//! kernels on its own device, and exchanges packed spike-event lists in
//! an all-gather at every step boundary. DESIGN.md §16 records the
//! protocol and its proof obligations; the short version:
//!
//! * **Row partition.** Shard `k` owns the contiguous global rows
//!   `ranges[k]` of the excitatory layer: its cells, thetas, and the
//!   matching rows of the synapse matrix (sliced with
//!   [`SynapseMatrix::shard_rows`], which stamps the slice's
//!   `row_origin` so every per-synapse Philox draw stays keyed by the
//!   *global* flat index).
//! * **Input broadcast.** Every shard encodes the full input population
//!   from the same seed and step counter, so the active-spike lists are
//!   identical across shards and cost no exchange traffic.
//! * **Spike all-gather.** A step splits into the engine's integrate
//!   phase (per shard, local winners) and commit phase (inhibition +
//!   plasticity). Between them the driver gathers every shard's local
//!   winners into one packed, globally ascending list and hands each
//!   shard the population-wide "did anyone spike" flag — the only
//!   cross-shard fact implicit winner-take-all inhibition needs.
//! * **Bit-identity.** Each phase runs the same floating-point
//!   operations in the same order as the single-device engine restricted
//!   to the shard's rows, and every Philox draw is keyed globally, so
//!   spike counts, thetas, and learned weights are bit-identical to a
//!   single-device run at any shard count. The differential test matrix
//!   (`tests/sharded.rs`) enforces this for shards × delivery × rules.
//!
//! Explicit (per-neuron LIF partner) inhibition is rejected at
//! construction: its suppression decisions depend on *which* partners
//! spiked, not just whether any did, and that cross-shard coupling is
//! not carried by the flag exchange.

use gpu_device::DeviceManager;

use crate::config::{InhibitionMode, NetworkConfig};
use crate::error::SnnError;
use crate::sim::engine::WtaEngine;
use crate::sim::eval::{EvalSnapshot, SpikeTrains};
use crate::synapse::SynapseMatrix;

/// A per-shard slice of an [`EvalSnapshot`], prepared once so that N
/// sharded replicas can mount the same trained state without re-slicing
/// (or copying) the conductance matrix per replica.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    shards: Vec<EvalSnapshot>,
    ranges: Vec<(usize, usize)>,
}

impl ShardedSnapshot {
    /// Slices `snapshot` into `n_shards` contiguous row ranges (the
    /// partition of [`ShardedEngine`]). Each slice is itself an
    /// [`EvalSnapshot`], `Arc`-shared by every replica that mounts it.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds the excitatory population.
    #[must_use]
    pub fn new(snapshot: &EvalSnapshot, n_shards: usize) -> Self {
        let n_exc = snapshot.synapses().n_post();
        let ranges = partition(n_exc, n_shards);
        let shards = ranges
            .iter()
            .map(|&(lo, hi)| {
                EvalSnapshot::new(
                    snapshot.synapses().shard_rows(lo, hi),
                    snapshot.thetas()[lo..hi].to_vec(),
                )
            })
            .collect();
        ShardedSnapshot { shards, ranges }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global row range `[lo, hi)` owned by shard `k`.
    #[must_use]
    pub fn range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }
}

/// The contiguous balanced partition of `n` rows into `k` shards: the
/// first `n % k` shards hold one extra row.
fn partition(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "at least one shard");
    assert!(k <= n, "more shards ({k}) than excitatory neurons ({n})");
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut lo = 0;
    for s in 0..k {
        let hi = lo + base + usize::from(s < extra);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// The winner-take-all engine partitioned across the devices of a
/// [`DeviceManager`] — one [`WtaEngine`] shard per device, coupled by a
/// per-step spike all-gather (see the module docs and DESIGN.md §16).
///
/// The public surface mirrors the single-device engine where the
/// semantics carry over ([`present`](Self::present),
/// [`present_frozen`](Self::present_frozen),
/// [`normalize_receptive_fields`](Self::normalize_receptive_fields),
/// clock control), with gather entry points
/// ([`synapses`](Self::synapses), [`thetas`](Self::thetas),
/// [`snapshot`](Self::snapshot)) where the single-device engine returns
/// borrowed whole-layer state.
///
/// # Example
///
/// ```
/// use gpu_device::{Device, DeviceConfig, DeviceManager};
/// use snn_core::config::{NetworkConfig, Preset, RuleKind};
/// use snn_core::sim::{ShardedEngine, WtaEngine};
///
/// let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 4, 3)
///     .with_rule(RuleKind::Stochastic);
///
/// // Shard the layer across two simulated devices...
/// let manager = DeviceManager::new(2, DeviceConfig::default().with_workers(2));
/// let mut sharded = ShardedEngine::new(cfg.clone(), &manager, 7).unwrap();
/// let spikes = sharded.present(&[60.0; 4], 50.0, true);
///
/// // ...and the trajectory is bit-identical to one device.
/// let solo = Device::new(DeviceConfig::default().with_workers(1));
/// let mut serial = WtaEngine::new(cfg, &solo, 7);
/// assert_eq!(serial.present(&[60.0; 4], 50.0, true), spikes);
/// assert_eq!(serial.synapses().as_flat(), sharded.synapses().as_flat());
/// ```
pub struct ShardedEngine<'d> {
    cfg: NetworkConfig,
    shards: Vec<WtaEngine<'d>>,
    ranges: Vec<(usize, usize)>,
    /// The packed globally-indexed spiker list of the current step — the
    /// all-gather exchange buffer.
    exchange: Vec<u32>,
    exchange_spikes: u64,
    exchange_steps: u64,
}

impl<'d> ShardedEngine<'d> {
    /// Builds a learning engine for `cfg` sharded across every device of
    /// `manager`, with all randomness keyed by `seed`.
    ///
    /// The full synapse matrix is drawn exactly as the single-device
    /// engine draws it ([`SynapseMatrix::new_random`] keys every synapse
    /// by its global flat index) and then sliced row-wise, so shard
    /// initialization is bit-identical to the unsharded layer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `cfg` is invalid or uses
    /// explicit inhibition (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if the manager holds more devices than excitatory neurons.
    pub fn new(
        cfg: NetworkConfig,
        manager: &'d DeviceManager,
        seed: u64,
    ) -> Result<Self, SnnError> {
        Self::check(&cfg)?;
        let full = SynapseMatrix::new_random(&cfg, seed);
        let ranges = partition(cfg.n_excitatory, manager.len());
        let shards = ranges
            .iter()
            .zip(manager.devices())
            .map(|(&(lo, hi), device)| {
                let mut local = cfg.clone();
                local.n_excitatory = hi - lo;
                WtaEngine::with_matrix(local, device, seed, full.shard_rows(lo, hi))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_shards(cfg, shards, ranges))
    }

    /// Mounts frozen evaluation replicas of `snapshot` across the devices
    /// of `manager` — the sharded counterpart of [`WtaEngine::replica`].
    /// Each shard shares its slice of the snapshot by reference count, so
    /// N sharded replicas of one [`ShardedSnapshot`] hold one copy of the
    /// weights per shard, not per replica.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `cfg` is invalid or uses
    /// explicit inhibition.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shard count differs from the manager's
    /// device count or its shape disagrees with `cfg`.
    pub fn replica(
        cfg: NetworkConfig,
        manager: &'d DeviceManager,
        seed: u64,
        snapshot: &ShardedSnapshot,
    ) -> Result<Self, SnnError> {
        Self::check(&cfg)?;
        assert_eq!(
            snapshot.n_shards(),
            manager.len(),
            "snapshot shard count does not match the device count"
        );
        let ranges = snapshot.ranges.clone();
        assert_eq!(
            ranges.last().map_or(0, |&(_, hi)| hi),
            cfg.n_excitatory,
            "snapshot partition does not cover the excitatory population"
        );
        let shards = ranges
            .iter()
            .zip(manager.devices())
            .zip(&snapshot.shards)
            .map(|((&(lo, hi), device), slice)| {
                let mut local = cfg.clone();
                local.n_excitatory = hi - lo;
                WtaEngine::replica(local, device, seed, slice)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_shards(cfg, shards, ranges))
    }

    fn check(cfg: &NetworkConfig) -> Result<(), SnnError> {
        cfg.validate()?;
        if matches!(cfg.inhibition, InhibitionMode::Explicit { .. }) {
            return Err(SnnError::InvalidConfig {
                field: "inhibition",
                reason: "sharded execution supports implicit winner-take-all inhibition only \
                         (explicit partners couple shards beyond the spike all-gather)"
                    .to_string(),
            });
        }
        Ok(())
    }

    fn from_shards(
        cfg: NetworkConfig,
        shards: Vec<WtaEngine<'d>>,
        ranges: Vec<(usize, usize)>,
    ) -> Self {
        let n_exc = cfg.n_excitatory;
        ShardedEngine {
            cfg,
            shards,
            ranges,
            exchange: Vec::with_capacity(n_exc),
            exchange_spikes: 0,
            exchange_steps: 0,
        }
    }

    /// The full-network configuration (shard configs differ only in
    /// their local `n_excitatory`).
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Number of shards (= devices the engine runs across).
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global row range `[lo, hi)` owned by shard `k`.
    #[must_use]
    pub fn range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }

    /// Whether this engine mounts frozen replicas (cannot learn).
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.shards[0].is_frozen()
    }

    /// Resets every shard's transient state (membranes, currents,
    /// inhibition, spike timers) — see [`WtaEngine::reset_transients`].
    pub fn reset_transients(&mut self) {
        for shard in &mut self.shards {
            shard.reset_transients();
        }
    }

    /// Sets the training clock on every shard (see
    /// [`WtaEngine::set_clock`]); the shards always advance in lock-step,
    /// so one clock describes them all.
    pub fn set_clock(&mut self, step: u64, time_ms: f64) {
        for shard in &mut self.shards {
            shard.set_clock(step, time_ms);
        }
    }

    /// The training clock `(step, time_ms)` (identical on every shard).
    #[must_use]
    pub fn clock(&self) -> (u64, f64) {
        self.shards[0].clock()
    }

    /// Gathers the adaptive-threshold offsets of the whole excitatory
    /// layer, in global row order.
    #[must_use]
    pub fn thetas(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.cfg.n_excitatory);
        for shard in &self.shards {
            out.extend(shard.thetas());
        }
        out
    }

    /// Gathers the full learned synapse matrix from the shards'
    /// row slices (`row_origin` 0, whole-layer shape) — the sharded
    /// counterpart of [`WtaEngine::synapses`], by value because the rows
    /// live on different devices.
    #[must_use]
    pub fn synapses(&self) -> SynapseMatrix {
        let slices: Vec<&SynapseMatrix> = self.shards.iter().map(WtaEngine::synapses).collect();
        SynapseMatrix::concat_rows(&slices)
    }

    /// Captures a whole-layer [`EvalSnapshot`] of the learned state, for
    /// mounting single-device or sharded evaluation replicas.
    #[must_use]
    pub fn snapshot(&self) -> EvalSnapshot {
        EvalSnapshot::new(self.synapses(), self.thetas())
    }

    /// Rescales every receptive field so its conductances sum to
    /// `target` (see [`WtaEngine::normalize_receptive_fields`]). Each
    /// shard normalizes its own rows; the operation is row-local, so the
    /// result is bit-identical to the single-device kernel.
    pub fn normalize_receptive_fields(&mut self, target: f64) {
        for shard in &mut self.shards {
            shard.normalize_receptive_fields(target);
        }
    }

    /// Cumulative all-gather traffic: `(exchanged spike events, exchange
    /// rounds)` since construction. Published as `shard/*` metrics by
    /// [`ShardedEngine::publish_metrics`].
    #[must_use]
    pub fn exchange_stats(&self) -> (u64, u64) {
        (self.exchange_spikes, self.exchange_steps)
    }

    /// Publishes the sharding telemetry to the global
    /// [`snn_trace::metrics`] hub: the shard count and the cumulative
    /// all-gather traffic (schema: DESIGN.md §16).
    pub fn publish_metrics(&self) {
        let hub = snn_trace::metrics();
        hub.set_counter("shard/count", self.shards.len() as u64);
        hub.set_counter("shard/exchange_spikes", self.exchange_spikes);
        hub.set_counter("shard/exchange_steps", self.exchange_steps);
    }

    /// One sharded step over staged inputs: integrate every shard,
    /// all-gather the winners, commit every shard under the global spike
    /// flag. `locals` are the per-shard spike-count accumulators.
    fn step_exchanged(&mut self, plastic: bool, locals: &mut [Vec<u32>]) {
        for (shard, counts) in self.shards.iter_mut().zip(locals.iter_mut()) {
            shard.step_integrate(plastic, counts);
        }
        self.exchange.clear();
        for (shard, &(lo, _)) in self.shards.iter().zip(&self.ranges) {
            self.exchange.extend(shard.spiking_posts().iter().map(|&j| lo as u32 + j));
        }
        self.exchange_spikes += self.exchange.len() as u64;
        self.exchange_steps += 1;
        let any_spiked = !self.exchange.is_empty();
        for shard in &mut self.shards {
            shard.step_commit(any_spiked, plastic);
        }
    }

    /// Folds the per-shard spike counts into one whole-layer vector.
    fn gather_counts(&self, locals: &[Vec<u32>]) -> Vec<u32> {
        let mut counts = vec![0u32; self.cfg.n_excitatory];
        for (local, &(lo, hi)) in locals.iter().zip(&self.ranges) {
            counts[lo..hi].copy_from_slice(local);
        }
        counts
    }

    /// Presents one stimulus for `duration_ms` across all shards — the
    /// sharded counterpart of [`WtaEngine::present`], bit-identical to it
    /// at any shard count. Returns the whole layer's spike counts in
    /// global row order.
    ///
    /// # Panics
    ///
    /// Panics if `rates_hz.len()` differs from the configured input
    /// count, or if `plastic` is requested on frozen replicas.
    pub fn present(&mut self, rates_hz: &[f64], duration_ms: f64, plastic: bool) -> Vec<u32> {
        assert_eq!(
            rates_hz.len(),
            self.cfg.n_inputs,
            "rate vector does not match input population"
        );
        assert!(
            !(plastic && self.is_frozen()),
            "frozen replica engines cannot learn (mounted from an EvalSnapshot)"
        );
        let _span = snn_trace::span_cat("engine/present_sharded", "engine");
        let dt = self.cfg.dt_ms;
        let p_spike: Vec<f64> =
            rates_hz.iter().map(|&f| (f * dt / 1000.0).clamp(0.0, 1.0)).collect();
        let steps = (duration_ms / dt).round() as u64;
        let mut locals: Vec<Vec<u32>> =
            self.ranges.iter().map(|&(lo, hi)| vec![0u32; hi - lo]).collect();
        for _ in 0..steps {
            let _step = snn_trace::step_span("engine/step");
            // Input broadcast: every shard encodes the identical list
            // from the shared (seed, step) key.
            for shard in &mut self.shards {
                shard.encode_step(&p_spike);
            }
            self.step_exchanged(plastic, &mut locals);
        }
        for shard in &mut self.shards {
            shard.flush_plasticity();
            shard.flush_step_accounting();
        }
        self.gather_counts(&locals)
    }

    /// Presents one precomputed stimulus with plasticity off — the
    /// sharded counterpart of [`WtaEngine::present_frozen`], bit-identical
    /// to it at any shard count (the single-device engine's quiet
    /// fast-forward is itself proven bit-identical to the plain step
    /// path, so identity transits even though the sharded driver always
    /// takes plain steps).
    ///
    /// # Panics
    ///
    /// Panics if the trains' input count or step width disagree with the
    /// engine configuration.
    pub fn present_frozen(&mut self, trains: &SpikeTrains) -> Vec<u32> {
        assert_eq!(
            trains.n_inputs(),
            self.cfg.n_inputs,
            "train set does not match input population"
        );
        assert!(
            (trains.dt_ms() - self.cfg.dt_ms).abs() < 1e-12,
            "train step width does not match the configured dt"
        );
        let _span = snn_trace::span_cat("engine/present_frozen_sharded", "engine");
        let saved = self.clock();
        self.reset_transients();
        // Local time zero, exactly as the single-device frozen path: f64
        // arithmetic is not translation-invariant.
        self.set_clock(0, 0.0);
        let mut locals: Vec<Vec<u32>> =
            self.ranges.iter().map(|&(lo, hi)| vec![0u32; hi - lo]).collect();
        for s in 0..trains.steps() {
            let _step = snn_trace::step_span("engine/step");
            let active = trains.active(s);
            for shard in &mut self.shards {
                shard.stage_active(active);
            }
            self.step_exchanged(false, &mut locals);
        }
        for shard in &mut self.shards {
            shard.clear_active();
            shard.flush_step_accounting();
        }
        self.set_clock(saved.0, saved.1);
        self.gather_counts(&locals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Preset;
    use gpu_device::DeviceConfig;

    fn cfg() -> NetworkConfig {
        NetworkConfig::from_preset(Preset::Bit4, 24, 10)
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        assert_eq!(partition(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(partition(9, 3), vec![(0, 3), (3, 6), (6, 9)]);
        assert_eq!(partition(1, 1), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn partition_rejects_overcommit() {
        let _ = partition(2, 3);
    }

    #[test]
    fn explicit_inhibition_is_rejected() {
        let manager = DeviceManager::new(2, DeviceConfig::serial());
        let mut cfg = cfg();
        cfg.inhibition = InhibitionMode::Explicit { w_exc_to_inh: 1.0 };
        match ShardedEngine::new(cfg, &manager, 7) {
            Err(SnnError::InvalidConfig { field, .. }) => assert_eq!(field, "inhibition"),
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("explicit inhibition must be rejected"),
        }
    }

    #[test]
    fn sharded_init_matches_single_device_rows() {
        let manager = DeviceManager::new(3, DeviceConfig::serial());
        let engine = ShardedEngine::new(cfg(), &manager, 42).unwrap();
        let device = gpu_device::Device::new(DeviceConfig::serial());
        let single = WtaEngine::new(cfg(), &device, 42);
        assert_eq!(engine.synapses().as_flat(), single.synapses().as_flat());
        let (lo, hi) = engine.range(1);
        assert!(lo > 0 && hi > lo, "middle shard owns a proper slice");
    }

    #[test]
    fn exchange_stats_accumulate() {
        let manager = DeviceManager::new(2, DeviceConfig::serial());
        let mut engine = ShardedEngine::new(cfg(), &manager, 1).unwrap();
        let rates = vec![400.0; 24];
        let _ = engine.present(&rates, 20.0, true);
        let (spikes, steps) = engine.exchange_stats();
        assert_eq!(steps, (20.0 / engine.config().dt_ms).round() as u64);
        assert!(spikes > 0, "a hot stimulus should cross shard boundaries");
        engine.publish_metrics();
        match snn_trace::metrics().get("shard/count") {
            Some(snn_trace::MetricValue::Counter { value }) => assert_eq!(value, 2),
            other => panic!("expected shard/count counter, got {other:?}"),
        }
    }
}
