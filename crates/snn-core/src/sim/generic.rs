//! Fixed-step simulation of arbitrary recurrent networks (Fig. 4 workload).
//!
//! The spiked-flag scatter uses a raw-pointer view, so this file (with
//! `engine.rs`) is the audited unsafe surface of `snn-core` — see
//! `snn-lint`'s `unsafe-surface` allow-list and the crate-root
//! `#![deny(unsafe_code)]`.
#![allow(unsafe_code)]

use crate::network::{Csr, RecurrentNetwork};
use crate::neuron::{LifNeuron, NeuronModel, NeuronState};
use crate::sim::SpikeRaster;
use gpu_device::Device;

/// ParallelSpikeSim's engine for arbitrary sparse recurrent networks:
/// per-neuron LIF updates run as device kernels; spike propagation walks the
/// CSR adjacency.
///
/// This engine exists for the Fig. 4 cross-validation: the same network and
/// stimulus are run here and in the independent sequential
/// `reference-sim` crate, and the two rasters are compared for coincidence.
pub struct GenericEngine<'d> {
    device: &'d Device,
    neuron: LifNeuron,
    csr: Csr,
    n_neurons: usize,
    states: Vec<NeuronState>,
    spiked: Vec<u8>,
    i_syn: Vec<f64>,
    tau_syn_ms: f64,
    dt_ms: f64,
    time_ms: f64,
    raster: SpikeRaster,
}

impl<'d> GenericEngine<'d> {
    /// Builds an engine over `network` with synaptic current time constant
    /// `tau_syn_ms` and step `dt_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation.
    #[must_use]
    pub fn new(network: &RecurrentNetwork, device: &'d Device, tau_syn_ms: f64, dt_ms: f64) -> Self {
        network.validate().expect("invalid recurrent network");
        assert!(dt_ms > 0.0 && tau_syn_ms > 0.0, "time constants must be positive");
        let neuron = LifNeuron::new(network.lif);
        GenericEngine {
            device,
            neuron,
            csr: network.to_csr(),
            n_neurons: network.n_neurons,
            states: vec![neuron.initial_state(); network.n_neurons],
            spiked: vec![0; network.n_neurons],
            i_syn: vec![0.0; network.n_neurons],
            tau_syn_ms,
            dt_ms,
            time_ms: 0.0,
            raster: SpikeRaster::new(),
        }
    }

    /// Current simulated time (ms).
    #[must_use]
    pub fn time_ms(&self) -> f64 {
        self.time_ms
    }

    /// The recorded raster so far.
    #[must_use]
    pub fn raster(&self) -> &SpikeRaster {
        &self.raster
    }

    /// Consumes the engine, returning its raster.
    #[must_use]
    pub fn into_raster(self) -> SpikeRaster {
        self.raster
    }

    /// Runs for `duration_ms` with external current `i_ext[j]` injected into
    /// every neuron `j` at every step. Returns per-neuron spike counts.
    ///
    /// # Panics
    ///
    /// Panics if `i_ext.len()` differs from the population size.
    pub fn run(&mut self, i_ext: &[f64], duration_ms: f64) -> Vec<u32> {
        assert_eq!(i_ext.len(), self.n_neurons, "external current vector mismatch");
        let steps = (duration_ms / self.dt_ms).round() as u64;
        let decay = (-self.dt_ms / self.tau_syn_ms).exp();
        let mut counts = vec![0u32; self.n_neurons];
        for _ in 0..steps {
            // Decay currents.
            self.device.launch_slice_mut("decay_current", &mut self.i_syn, |_, i| *i *= decay);
            // Propagate last step's spikes along the adjacency. Serial —
            // scatter with duplicate targets is inherently order-dependent,
            // and determinism across worker counts takes priority.
            for pre in 0..self.n_neurons {
                if self.spiked[pre] != 0 {
                    for (post, w) in self.csr.out_edges(pre) {
                        self.i_syn[post as usize] += w;
                    }
                }
            }
            // Neuron update kernel.
            {
                let neuron = self.neuron;
                let i_syn = &self.i_syn;
                let spiked = SpikedView(self.spiked.as_mut_ptr());
                let dt = self.dt_ms;
                let spiked_ref = &spiked;
                self.device.launch_slice_mut("lif_step", &mut self.states, |j, state| {
                    let fired = neuron.step(state, i_ext[j] + i_syn[j], dt);
                    // SAFETY: index j is visited exactly once per launch.
                    unsafe { *spiked_ref.0.add(j) = u8::from(fired) };
                });
            }
            for (j, &s) in self.spiked.iter().enumerate() {
                if s != 0 {
                    counts[j] += 1;
                    self.raster.push(self.time_ms, j as u32);
                }
            }
            self.time_ms += self.dt_ms;
        }
        counts
    }
}

/// Shared-pointer view used to write the spike flags from the neuron
/// kernel; indices are disjoint per launch.
struct SpikedView(*mut u8);
// SAFETY: disjoint per-index writes only (see launch partitioning).
unsafe impl Send for SpikedView {}
// SAFETY: as above.
unsafe impl Sync for SpikedView {}

impl std::fmt::Debug for GenericEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenericEngine")
            .field("n_neurons", &self.n_neurons)
            .field("time_ms", &self.time_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::DeviceConfig;

    fn device() -> Device {
        Device::new(DeviceConfig::serial())
    }

    #[test]
    fn quiescent_without_drive() {
        let net = RecurrentNetwork::random(50, 200, 0.0, 0.5, 1);
        let d = device();
        let mut e = GenericEngine::new(&net, &d, 5.0, 0.5);
        let counts = e.run(&vec![0.0; 50], 500.0);
        assert!(counts.iter().all(|&c| c == 0));
        assert!(e.raster().is_empty());
    }

    #[test]
    fn driven_neurons_fire_and_propagate() {
        let net = RecurrentNetwork::random(50, 500, 0.5, 1.5, 2);
        let d = device();
        let mut e = GenericEngine::new(&net, &d, 5.0, 0.5);
        // Drive half the population above rheobase.
        let mut i_ext = vec![0.0; 50];
        for i in i_ext.iter_mut().take(25) {
            *i = 6.0;
        }
        let counts = e.run(&i_ext, 1000.0);
        let driven: u32 = counts[..25].iter().sum();
        assert!(driven > 0, "driven neurons must fire");
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let net = RecurrentNetwork::random(100, 1000, 0.2, 0.8, 3);
        let run = |workers: usize| {
            let d = Device::new(DeviceConfig::default().with_workers(workers));
            let mut e = GenericEngine::new(&net, &d, 5.0, 0.5);
            e.run(&vec![4.0; 100], 500.0)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn raster_matches_counts() {
        let net = RecurrentNetwork::random(20, 100, 0.3, 1.0, 4);
        let d = device();
        let mut e = GenericEngine::new(&net, &d, 5.0, 0.5);
        let counts = e.run(&[5.0; 20], 500.0);
        let from_raster = e.raster().counts(20);
        assert_eq!(counts, from_raster);
    }

    #[test]
    #[should_panic(expected = "external current vector mismatch")]
    fn wrong_drive_length_rejected() {
        let net = RecurrentNetwork::random(10, 20, 0.0, 1.0, 5);
        let d = device();
        let mut e = GenericEngine::new(&net, &d, 5.0, 0.5);
        let _ = e.run(&[0.0; 5], 10.0);
    }
}
