//! Simulation engines.
//!
//! * [`WtaEngine`] — the learning engine for the Fig. 3 architecture:
//!   rate-coded inputs, LIF excitatory layer, winner-take-all inhibition,
//!   and on-line STDP, with every stage running as a data-parallel kernel
//!   on a [`gpu_device::Device`].
//! * [`GenericEngine`] — a fixed-step simulator for arbitrary
//!   [`crate::network::RecurrentNetwork`]s, the ParallelSpikeSim side of the
//!   Fig. 4 cross-validation.
//! * [`SpikeRaster`] — spike event recording shared by both engines.
//! * [`EvalSnapshot`] / [`SpikeTrains`] — the shared read-only trained-state
//!   snapshot and precomputed input trains of the parallel frozen-weight
//!   evaluation path.
//! * [`BatchedEngine`] — lock-step batched frozen evaluation with SWAR
//!   low-precision delivery kernels, bit-identical per lane to the serial
//!   frozen path.
//! * [`ShardedEngine`] / [`ShardedSnapshot`] — the excitatory layer
//!   partitioned across the devices of a [`gpu_device::DeviceManager`],
//!   coupled by a per-step spike all-gather and bit-identical to the
//!   single-device engine at any shard count (DESIGN.md §16).
//! * [`RecordedPresentation`] and the round-commit kernels
//!   ([`commit_ordered`] / [`commit_concurrent`]) — the parallel-training
//!   protocol of DESIGN.md §14.

mod batched;
mod engine;
mod eval;
mod generic;
mod parallel;
mod recorder;
mod sharded;

pub use batched::BatchedEngine;
pub use engine::WtaEngine;
pub use eval::{EvalSnapshot, SpikeTrains};
pub use generic::GenericEngine;
pub use parallel::{
    commit_concurrent, commit_ordered, merge_order, pre_spike_times, training_trains,
    CommitStats, RecordedPresentation,
};
pub use recorder::SpikeRaster;
pub use sharded::{ShardedEngine, ShardedSnapshot};
