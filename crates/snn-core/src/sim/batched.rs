//! Batched multi-image frozen evaluation with SWAR low-precision delivery.
//!
//! [`BatchedEngine`] advances up to `B` frozen presentations **lock-step**
//! through one fused deliver/decay/integrate kernel per simulation step,
//! amortizing the per-step dispatch overhead that the serial path
//! ([`crate::sim::WtaEngine::present_frozen`]) pays once per presentation
//! per step. On top of the batch layout it exploits what low precision
//! buys: quantized conductance columns are packed as raw fixed-point codes,
//! several lanes to a `u64` (see [`qformat::LaneLayout`]), and the
//! canonical blocked delivery fold runs as SWAR word additions — one `u64`
//! add advances 2–8 neurons — while the synaptic-current decay sweeps the
//! batch-contiguous state slabs as plain (auto-vectorizable, optionally
//! `std::simd`) word operations.
//!
//! # Identity contract
//!
//! Every lane of a batched run is **bit-identical** to the serial
//! `present_frozen` / `evaluate_snapshot` result at any batch size, worker
//! count, and delivery mode. Three facts carry the proof:
//!
//! * The serial delivery fold is the canonical blocked fold —
//!   `i_syn[j] = i_syn[j]·decay + Σ_b block_b[j]`, blocks of
//!   [`SPIKE_BLOCK`] ascending active inputs — and each block term is a
//!   left-to-right chain `((g₀·v) + g₁·v) + …` over on-grid conductances
//!   `gₖ = rawₖ·res` with `res` a power of two. Whenever
//!   `sig_bits(v_spike) + total_bits + ACCUM_HEADROOM_BITS ≤ 53`, every
//!   partial sum of that chain is *exactly* `(Σ rawₖ)·(res·v_spike)` — no
//!   rounding ever occurs — so summing the integer raw codes in SWAR lanes
//!   (block sums of ≤ [`SPIKE_BLOCK`] codes fit the
//!   [`qformat::ACCUM_HEADROOM_BITS`] guard bits by construction) and
//!   scaling once yields the same `f64` the serial chain produced. The
//!   engine checks the width condition and that every conductance is
//!   on-grid at construction; otherwise it falls back to a scalar `f64`
//!   fold that replays the serial chain op-for-op.
//! * Neuron integration reuses the serial engine's
//!   [`integrate_cell`] body verbatim, per image, at the same local clock
//!   (time zero, accumulated by repeated `+= dt` like the serial path).
//! * The winner-take-all commit mirrors the serial phase 5 per image:
//!   a presentation only ever reads its own lane's state, so images cannot
//!   interact.
//!
//! Dense and sparse serial delivery are themselves bit-identical (DESIGN.md
//! §8), so one batched path matches both.
//!
//! # Layout
//!
//! Per-image state lives batch-contiguous (structure-of-arrays) in
//! reusable [`DeviceBuffer`]s, grouped in *slabs* of [`SLAB`] = 64 neurons
//! (one spike-bitset word):
//!
//! ```text
//! cells/i_syn index:  (slab·B + image)·SLAB + lane     (lane = j mod SLAB)
//! spike bitset:       masks[slab·B + image]            (bit k = neuron slab·SLAB+k)
//! packed columns:     words[pre·words_per_col + w]     (lane l = neuron w·L+l)
//! ```
//!
//! Each fused-kernel work item owns one `(slab, image)` pair — 64 neurons
//! of one presentation — so every state write (including its bitset word)
//! has exactly one writer. The host-side WTA commit scans only the bitset
//! words, skipping silent images the way the serial engine skips silent
//! steps.
//!
//! This file uses `SharedSlice` raw-pointer views inside the fused kernel,
//! so it joins `engine.rs`/`generic.rs` on `snn-lint`'s audited
//! unsafe-surface allow-list.
//!
//! DESIGN.md §13 documents the batch layout, the SWAR word format, the
//! `batch/*` telemetry schema, and the measured speedups
//! (`results/BENCH_batched.json`).
#![allow(unsafe_code)]

use crate::config::{InhibitionMode, NetworkConfig, NeuronModelKind, Precision};
use crate::neuron::{AdexNeuron, IzhikevichNeuron, LifNeuron, NeuronModel};
use crate::sim::engine::{integrate_cell, ExcCell, SPIKE_BLOCK};
use crate::sim::{EvalSnapshot, SpikeTrains};
use crate::synapse::TransposedConductances;
use crate::SnnError;
use gpu_device::{Device, DeviceBuffer, SharedSlice};
use qformat::LaneLayout;
use std::sync::Arc;

/// Neurons per state slab: one spike-bitset word's worth. Derived from the
/// bitset word width, not hard-coded, so the SWAR lane math (`u64` words of
/// `L` lanes, `SLAB / L` words per slab) stays width-consistent.
const SLAB: usize = u64::BITS as usize;

// The packed lane guard bits are sized for blocks of up to
// `qformat::MAX_BLOCK_SPIKES` addends; the delivery fold's block size must
// never exceed that or a lane could overflow into its neighbor.
const _: () = assert!(SPIKE_BLOCK <= qformat::MAX_BLOCK_SPIKES);

/// Width of the significant-bit span of `x`'s significand (msb..=lsb): the
/// number of mantissa bits a product with `x` consumes. `0` for zero.
fn sig_bits(x: f64) -> u32 {
    if x == 0.0 {
        return 0;
    }
    let frac_width = f64::MANTISSA_DIGITS - 1;
    let bits = x.abs().to_bits();
    let frac = bits & ((1u64 << frac_width) - 1);
    // Normals carry the implicit leading one; subnormals do not.
    let significand = if x.is_normal() { frac | (1u64 << frac_width) } else { frac };
    let width = u64::BITS - significand.leading_zeros();
    width - significand.trailing_zeros()
}

/// The quantized conductance matrix re-encoded for SWAR delivery: each
/// input's transposed column stored as raw fixed-point codes, `L` lanes per
/// `u64` word (lane `l` of word `w` holds neuron `w·L + l`). Built once per
/// engine; `None` (scalar fallback) when the format is too wide, a
/// conductance is off-grid, or the exactness condition fails.
struct PackedColumns {
    layout: LaneLayout,
    /// Words per packed column: `ceil(n_post / L)`.
    words_per_col: usize,
    /// `n_pre × words_per_col` packed words, column-major per input.
    words: Vec<u64>,
    /// The exact block scale `resolution · v_spike` (power-of-two ×
    /// `v_spike`, hence exactly representable).
    scale: f64,
}

impl PackedColumns {
    /// Packs `gt` under `cfg`'s fixed-point format, or `None` when the
    /// SWAR path cannot be bit-identical (see module docs).
    fn build(cfg: &NetworkConfig, gt: &TransposedConductances) -> Option<PackedColumns> {
        let Precision::Fixed(q) = cfg.precision else {
            return None;
        };
        let layout = LaneLayout::for_format(q)?;
        // Exactness gate: every partial sum of the serial fold must be
        // exactly representable, i.e. the widest block sum times v_spike
        // fits the f64 mantissa.
        let need =
            sig_bits(cfg.v_spike) + u32::from(q.total_bits()) + qformat::ACCUM_HEADROOM_BITS;
        if need > f64::MANTISSA_DIGITS || !cfg.v_spike.is_finite() {
            return None;
        }
        let res = q.resolution();
        let max_raw = q.max_raw();
        let lanes = layout.lanes();
        let n_post = gt.n_post();
        let words_per_col = n_post.div_ceil(lanes);
        let mut words = vec![0u64; gt.n_pre() * words_per_col];
        for i in 0..gt.n_pre() {
            let col = gt.col(i);
            let base = i * words_per_col;
            for (j, &g) in col.iter().enumerate() {
                let raw = (g / res).round();
                // Off-grid or out-of-range conductances (possible if a
                // checkpoint was produced under a different format) void
                // the integer-domain identity argument: fall back.
                if raw < 0.0 || raw > f64::from(max_raw) || raw * res != g {
                    return None;
                }
                let shift = layout.lane_bits() * (j % lanes) as u32;
                words[base + j / lanes] |= u64::from(raw as u32) << shift;
            }
        }
        Some(PackedColumns { layout, words_per_col, words, scale: res * cfg.v_spike })
    }
}

/// Synaptic-current decay over one batch-contiguous slab:
/// `acc[k] = i_syn[k]·decay`. The optional `std::simd` variant performs the
/// same IEEE operation per lane, so the two are bit-identical.
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn decay_slab(acc: &mut [f64], i_syn: &[f64], decay: f64) {
    for (a, &v) in acc.iter_mut().zip(i_syn) {
        *a = v * decay;
    }
}

/// SWAR block accumulation: lane-parallel `dst[k] += src[k]` over packed
/// words. Guard bits guarantee no lane carries into its neighbor for
/// blocks of ≤ [`qformat::MAX_BLOCK_SPIKES`] addends.
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn add_words(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Hardware vector width of the nightly `std::simd` path (f64x4 / u64x4);
/// a machine-vector choice, unrelated to the `QFormat`-derived SWAR lane
/// counts.
#[cfg(feature = "simd")]
const SIMD_WIDTH: usize = 4;

/// Synaptic-current decay over one batch-contiguous slab (`std::simd`
/// variant; nightly-only): per-lane IEEE multiply, bit-identical to the
/// scalar sweep.
#[cfg(feature = "simd")]
#[inline(always)]
fn decay_slab(acc: &mut [f64], i_syn: &[f64], decay: f64) {
    use std::simd::f64x4;
    let d = f64x4::splat(decay);
    let main = acc.len() - acc.len() % SIMD_WIDTH;
    for (a, v) in acc[..main]
        .chunks_exact_mut(SIMD_WIDTH)
        .zip(i_syn[..main].chunks_exact(SIMD_WIDTH))
    {
        (f64x4::from_slice(v) * d).copy_to_slice(a);
    }
    for k in main..acc.len() {
        acc[k] = i_syn[k] * decay;
    }
}

/// SWAR block accumulation (`std::simd` variant; nightly-only): integer
/// adds are exact, so bit-identical to the scalar sweep.
#[cfg(feature = "simd")]
#[inline(always)]
fn add_words(dst: &mut [u64], src: &[u64]) {
    use std::simd::u64x4;
    let main = dst.len() - dst.len() % SIMD_WIDTH;
    for (d, s) in dst[..main]
        .chunks_exact_mut(SIMD_WIDTH)
        .zip(src[..main].chunks_exact(SIMD_WIDTH))
    {
        (u64x4::from_slice(d) + u64x4::from_slice(s)).copy_to_slice(d);
    }
    for k in main..dst.len() {
        dst[k] += src[k];
    }
}

/// Lock-step batched frozen evaluation over a shared [`EvalSnapshot`]:
/// presents up to `batch` images per dispatch through one fused kernel per
/// step, bit-identical per image to [`crate::sim::WtaEngine::present_frozen`]
/// (see the module docs for the layout and the identity argument).
///
/// # Example
///
/// ```
/// use gpu_device::{Device, DeviceConfig};
/// use snn_core::config::{NetworkConfig, Preset};
/// use snn_core::sim::{BatchedEngine, SpikeTrains, WtaEngine};
///
/// let device = Device::new(DeviceConfig::default().with_workers(2));
/// let cfg = NetworkConfig::from_preset(Preset::Bit4, 6, 4);
/// let mut source = WtaEngine::new(cfg.clone(), &device, 11);
/// source.present(&[40.0; 6], 20.0, true);
/// let snapshot = source.snapshot();
///
/// let mut batched = BatchedEngine::new(cfg.clone(), &device, &snapshot, 2).unwrap();
/// let mut train = SpikeTrains::new(6, cfg.dt_ms);
/// train.push_step(&[0, 3]);
/// train.push_step(&[]);
/// let counts = batched.present_frozen_batch(&[&train, &train]);
/// assert_eq!(counts.len(), 2);
/// // Lanes are independent: identical trains give identical lanes, and
/// // each equals the serial frozen presentation.
/// assert_eq!(counts[0], counts[1]);
/// let mut serial = WtaEngine::replica(cfg, &device, 11, &snapshot).unwrap();
/// assert_eq!(counts[0], serial.present_frozen(&train));
/// ```
pub struct BatchedEngine<'d> {
    cfg: NetworkConfig,
    device: &'d Device,
    transposed: Arc<TransposedConductances>,
    packed: Option<PackedColumns>,
    thetas: Vec<f64>,
    /// Batch capacity `B` (lanes per dispatch).
    cap: usize,
    /// Neuron slabs per image: `ceil(n_excitatory / SLAB)`.
    n_slabs: usize,
    /// Per-(slab, image, lane) neuron state, `(slab·cap + image)·SLAB + lane`.
    cells: DeviceBuffer<ExcCell>,
    /// Per-(slab, image, lane) synaptic current, same indexing as `cells`.
    i_syn: DeviceBuffer<f64>,
    /// Per-(slab, image) spike bitset words, `slab·cap + image`.
    masks: DeviceBuffer<u64>,
    init_v: f64,
    init_recovery: f64,
    syn_decay: f64,
    theta_decay: f64,
}

impl<'d> BatchedEngine<'d> {
    /// Builds a batched evaluator of capacity `batch` (clamped to ≥ 1) over
    /// `snapshot`, sharing its transposed conductance view by reference
    /// count. Packs the SWAR column view when the configured fixed-point
    /// format supports the bit-identity argument; otherwise the engine
    /// silently uses the scalar fallback fold (see [`BatchedEngine::swar_active`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `cfg` is invalid or uses a
    /// feature the batched path does not support (explicit inhibition —
    /// check [`BatchedEngine::supports`] first).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match the configuration.
    pub fn new(
        cfg: NetworkConfig,
        device: &'d Device,
        snapshot: &EvalSnapshot,
        batch: usize,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        if !Self::supports(&cfg) {
            return Err(SnnError::InvalidConfig {
                field: "inhibition",
                reason: "batched execution supports implicit winner-take-all inhibition only"
                    .to_string(),
            });
        }
        assert_eq!(
            snapshot.synapses().n_pre(),
            cfg.n_inputs,
            "snapshot pre population mismatch"
        );
        assert_eq!(
            snapshot.synapses().n_post(),
            cfg.n_excitatory,
            "snapshot post population mismatch"
        );
        let transposed = snapshot.transposed_arc();
        let packed = PackedColumns::build(&cfg, &transposed);
        let init_state = match cfg.neuron {
            NeuronModelKind::Lif => LifNeuron::new(cfg.lif).initial_state(),
            NeuronModelKind::Izhikevich(p) => IzhikevichNeuron::new(p).initial_state(),
            NeuronModelKind::Adex(p) => AdexNeuron::new(p).initial_state(),
        };
        let cap = batch.max(1);
        let n_slabs = cfg.n_excitatory.div_ceil(SLAB);
        let idle = ExcCell {
            v: init_state.v,
            recovery: init_state.recovery,
            theta: 0.0,
            refractory_ms: 0.0,
            inhibited_until: f64::NEG_INFINITY,
            last_spike: f64::NEG_INFINITY,
            spiked: false,
        };
        let syn_decay = (-cfg.dt_ms / cfg.tau_syn_ms).exp();
        let theta_decay = (-cfg.dt_ms / cfg.tau_theta_ms).exp();
        Ok(BatchedEngine {
            cells: device.alloc("batched_cells", n_slabs * cap * SLAB, idle),
            i_syn: device.alloc("batched_i_syn", n_slabs * cap * SLAB, 0.0),
            masks: device.alloc("batched_masks", n_slabs * cap, 0u64),
            thetas: snapshot.thetas().to_vec(),
            transposed,
            packed,
            cap,
            n_slabs,
            init_v: init_state.v,
            init_recovery: init_state.recovery,
            syn_decay,
            theta_decay,
            device,
            cfg,
        })
    }

    /// Whether the batched path can run `cfg` at all: it implements the
    /// implicit winner-take-all commit only (explicit inhibitory partners
    /// would need per-image partner dynamics). Callers such as the
    /// evaluator use this to fall back to the serial path.
    #[must_use]
    pub fn supports(cfg: &NetworkConfig) -> bool {
        matches!(cfg.inhibition, InhibitionMode::Implicit)
    }

    /// The batch capacity `B` this engine was allocated for.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.cap
    }

    /// Whether delivery runs on the packed SWAR path (`true`) or the scalar
    /// `f64` fallback (`false`: float32 precision, a format too wide for
    /// guarded `u64` lanes, off-grid conductances, or an exotic `v_spike`
    /// that voids the exactness argument). Both are bit-identical to the
    /// serial engine; only throughput differs.
    #[must_use]
    pub fn swar_active(&self) -> bool {
        self.packed.is_some()
    }

    /// SWAR lanes per word on the packed path (`None` on the fallback).
    #[must_use]
    pub fn lanes(&self) -> Option<usize> {
        self.packed.as_ref().map(|p| p.layout.lanes())
    }

    /// The configuration this engine was built with.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Resets every lane `< nb` to the canonical post-`reset_transients`
    /// state the serial frozen presentation starts from: initial membrane
    /// state, snapshot thresholds, cleared currents and bitsets.
    fn reset_lanes(&mut self, nb: usize) {
        let cells = self.cells.as_mut_slice();
        for g in 0..self.n_slabs {
            let jbase = g * SLAB;
            let valid = SLAB.min(self.cfg.n_excitatory - jbase);
            for b in 0..nb {
                let sbase = (g * self.cap + b) * SLAB;
                for (jj, cell) in cells[sbase..sbase + valid].iter_mut().enumerate() {
                    cell.v = self.init_v;
                    cell.recovery = self.init_recovery;
                    cell.theta = self.thetas[jbase + jj];
                    cell.refractory_ms = 0.0;
                    cell.inhibited_until = f64::NEG_INFINITY;
                    cell.last_spike = f64::NEG_INFINITY;
                    cell.spiked = false;
                }
            }
        }
        self.i_syn.fill(0.0);
        self.masks.fill(0);
    }

    /// Presents `trains.len() ≤ B` frozen stimuli lock-step and returns one
    /// spike-count vector per train, in input order — each bit-identical to
    /// [`crate::sim::WtaEngine::present_frozen`] of the same train on a
    /// replica of the same snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `trains` is empty or exceeds the batch capacity, if any
    /// train's input count or step width disagrees with the configuration,
    /// or if the trains' step counts differ (lock-step requires a common
    /// horizon; the evaluator and the serving layer always present a fixed
    /// `t_present_ms`).
    pub fn present_frozen_batch(&mut self, trains: &[&SpikeTrains]) -> Vec<Vec<u32>> {
        assert!(
            !trains.is_empty() && trains.len() <= self.cap,
            "batch size must be in 1..=capacity"
        );
        let steps = trains[0].steps();
        for tr in trains {
            assert_eq!(
                tr.n_inputs(),
                self.cfg.n_inputs,
                "train set does not match input population"
            );
            assert!(
                (tr.dt_ms() - self.cfg.dt_ms).abs() < 1e-12,
                "train step width does not match the configured dt"
            );
            assert_eq!(tr.steps(), steps, "lock-step batch requires equal train lengths");
        }
        let _span = snn_trace::span_cat("batch/present", "batch");
        let nb = trains.len();
        self.reset_lanes(nb);
        let mut counts = vec![vec![0u32; self.cfg.n_excitatory]; nb];
        // Local time zero, accumulated by repeated `+= dt` — the exact f64
        // clock sequence of the serial presentation.
        let mut t = 0.0;
        let dt = self.cfg.dt_ms;
        let mut actives: Vec<&[u32]> = Vec::with_capacity(nb);
        for s in 0..steps {
            let _step = snn_trace::step_span("batch/step");
            actives.clear();
            actives.extend(trains.iter().map(|tr| tr.active(s)));
            self.step_batch(&actives, t, &mut counts);
            t += dt;
        }
        let hub = snn_trace::metrics();
        hub.add_counter("batch/images", nb as u64);
        hub.add_counter("batch/dispatches", 1);
        hub.observe("batch/occupancy", nb as f64 / self.cap as f64);
        counts
    }

    /// One lock-step simulation step over `actives.len()` images: the fused
    /// deliver/decay/integrate kernel (each work item owns one
    /// `(slab, image)` pair), then the per-image winner-take-all commit.
    fn step_batch(&mut self, actives: &[&[u32]], t: f64, counts: &mut [Vec<u32>]) {
        let nb = actives.len();
        let cap = self.cap;
        let n_exc = self.cfg.n_excitatory;
        let n_slabs = self.n_slabs;
        let dt = self.cfg.dt_ms;
        let decay = self.syn_decay;
        let theta_decay = self.theta_decay;
        let v_spike = self.cfg.v_spike;
        let lif_params = self.cfg.lif;
        let neuron_kind = self.cfg.neuron;
        let gt = &*self.transposed;
        let packed = self.packed.as_ref();
        let total_active: usize = actives.iter().map(|a| a.len()).sum();
        let cell_bytes = std::mem::size_of::<ExcCell>() * 2 + 16;
        let col_bytes = match packed {
            Some(p) => p.words_per_col * std::mem::size_of::<u64>(),
            None => n_exc * std::mem::size_of::<f64>(),
        };
        let cost = (total_active + 4 * nb) * n_exc;
        let bytes = (total_active * col_bytes + nb * n_exc * cell_bytes) as u64;
        let i_syn = SharedSlice::new(self.i_syn.as_mut_slice());
        let cells = SharedSlice::new(self.cells.as_mut_slice());
        let masks = SharedSlice::new(self.masks.as_mut_slice());
        self.device.launch_fused("batched_deliver_integrate", cost, bytes, |ctx| {
            for k in ctx.chunk(n_slabs * nb) {
                let g = k / nb;
                let b = k % nb;
                let jbase = g * SLAB;
                let valid = SLAB.min(n_exc - jbase);
                let sbase = (g * cap + b) * SLAB;
                let active = actives[b];
                let mut acc = [0.0f64; SLAB];
                // SAFETY: work item k is the only owner of slab g of image
                // b (chunk() partitions the item space per worker), so its
                // `sbase..sbase+valid` state range has exactly one writer.
                let isyn_slab = unsafe { i_syn.slice_mut(sbase..sbase + valid) };
                decay_slab(&mut acc[..valid], isyn_slab, decay);
                match packed {
                    Some(p) => {
                        let lanes = p.layout.lanes();
                        let lane_bits = p.layout.lane_bits();
                        let lane_mask = p.layout.lane_mask();
                        let w0 = jbase / lanes;
                        let wn = valid.div_ceil(lanes);
                        for block in active.chunks(SPIKE_BLOCK) {
                            // Lane-parallel integer block sum: ≤ SPIKE_BLOCK
                            // addends fit the guard bits, so lanes never
                            // carry into each other.
                            let mut words = [0u64; SLAB];
                            for &i in block {
                                let base = i as usize * p.words_per_col + w0;
                                add_words(&mut words[..wn], &p.words[base..base + wn]);
                            }
                            // Fold each lane's exact block value into the
                            // per-neuron chain in ascending neuron order —
                            // the serial fold's block addition.
                            for (w, &word) in words[..wn].iter().enumerate() {
                                let mut word = word;
                                let jj0 = w * lanes;
                                for l in 0..lanes {
                                    let raw = word & lane_mask;
                                    word >>= lane_bits;
                                    let jj = jj0 + l;
                                    if jj < valid {
                                        acc[jj] += (raw as f64) * p.scale;
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        // Scalar fallback: replay the serial chain
                        // op-for-op per neuron — per block, `g₀·v` assigns
                        // and later spikes accumulate, then the block adds
                        // to the decayed current in ascending block order.
                        for block in active.chunks(SPIKE_BLOCK) {
                            let mut bacc = [0.0f64; SLAB];
                            let mut first = true;
                            for &i in block {
                                let col = &gt.col(i as usize)[jbase..jbase + valid];
                                if first {
                                    for (a, &gv) in bacc[..valid].iter_mut().zip(col) {
                                        *a = gv * v_spike;
                                    }
                                    first = false;
                                } else {
                                    for (a, &gv) in bacc[..valid].iter_mut().zip(col) {
                                        *a += gv * v_spike;
                                    }
                                }
                            }
                            if !first {
                                for jj in 0..valid {
                                    acc[jj] += bacc[jj];
                                }
                            }
                        }
                    }
                }
                // SAFETY: as above — this work item exclusively owns the
                // slab's cell range.
                let cells_slab = unsafe { cells.slice_mut(sbase..sbase + valid) };
                let mut bits = 0u64;
                for (jj, cell) in cells_slab.iter_mut().enumerate() {
                    integrate_cell(
                        cell,
                        acc[jj],
                        t,
                        dt,
                        neuron_kind,
                        lif_params,
                        theta_decay,
                        false,
                    );
                    bits |= u64::from(cell.spiked) << jj;
                    isyn_slab[jj] = acc[jj];
                }
                // SAFETY: one bitset word per (slab, image) pair — this
                // item is its only writer.
                unsafe { masks.write(g * cap + b, bits) };
            }
        });

        // Winner-take-all commit, per image (serial phase 5, Implicit):
        // spikers score and stamp their spike time, everyone else enters
        // the suppression window. The bitset scan skips silent images the
        // way the serial engine skips silent steps.
        let until = t + self.cfg.t_inh_ms;
        let masks = self.masks.as_slice();
        let cells = self.cells.as_mut_slice();
        for (b, image_counts) in counts.iter_mut().enumerate() {
            if (0..n_slabs).all(|g| masks[g * cap + b] == 0) {
                continue;
            }
            for g in 0..n_slabs {
                let bits = masks[g * cap + b];
                let jbase = g * SLAB;
                let valid = SLAB.min(n_exc - jbase);
                let sbase = (g * cap + b) * SLAB;
                for (jj, cell) in cells[sbase..sbase + valid].iter_mut().enumerate() {
                    if bits & (1u64 << jj) != 0 {
                        cell.last_spike = t;
                        image_counts[jbase + jj] += 1;
                    } else {
                        cell.inhibited_until = until;
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for BatchedEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedEngine")
            .field("n_inputs", &self.cfg.n_inputs)
            .field("n_excitatory", &self.cfg.n_excitatory)
            .field("batch", &self.cap)
            .field("swar", &self.swar_active())
            .field("precision", &self.cfg.precision)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CurrentDelivery, Preset};
    use crate::sim::WtaEngine;
    use gpu_device::DeviceConfig;

    /// Deterministic synthetic trains: input `i` spikes at step `s` when
    /// `(i + s) % stride == 0`, with the stride varied per image so lanes
    /// genuinely differ.
    fn test_trains(n_inputs: usize, steps: usize, dt_ms: f64, stride: usize) -> SpikeTrains {
        let mut t = SpikeTrains::new(n_inputs, dt_ms);
        for s in 0..steps {
            let active: Vec<u32> =
                (0..n_inputs).filter(|i| (i + s) % stride == 0).map(|i| i as u32).collect();
            t.push_step(&active);
        }
        t
    }

    fn trained_snapshot(cfg: &NetworkConfig, seed: u64) -> EvalSnapshot {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let mut engine = WtaEngine::new(cfg.clone(), &device, seed);
        let rates: Vec<f64> =
            (0..cfg.n_inputs).map(|i| 30.0 + 40.0 * ((i % 5) as f64) / 4.0).collect();
        for _ in 0..3 {
            engine.present(&rates, 25.0, true);
        }
        engine.snapshot()
    }

    fn serial_counts(
        cfg: &NetworkConfig,
        snapshot: &EvalSnapshot,
        trains: &[SpikeTrains],
    ) -> Vec<Vec<u32>> {
        let device = Device::new(DeviceConfig::default().with_workers(1));
        let mut replica = WtaEngine::replica(cfg.clone(), &device, 5, snapshot).unwrap();
        trains.iter().map(|tr| replica.present_frozen(tr)).collect()
    }

    fn batch_matches_serial(preset: Preset, delivery: CurrentDelivery, batch: usize, workers: usize) {
        let cfg = NetworkConfig::from_preset(preset, 19, 70).with_delivery(delivery);
        let snapshot = trained_snapshot(&cfg, 23);
        let trains: Vec<SpikeTrains> =
            (0..batch).map(|b| test_trains(19, 60, cfg.dt_ms, 2 + b % 3)).collect();
        let expected = serial_counts(&cfg, &snapshot, &trains);
        let device = Device::new(DeviceConfig::default().with_workers(workers));
        let mut batched = BatchedEngine::new(cfg, &device, &snapshot, batch).unwrap();
        let refs: Vec<&SpikeTrains> = trains.iter().collect();
        let got = batched.present_frozen_batch(&refs);
        assert_eq!(got, expected, "batched lanes diverged from the serial engine");
        // Real spiking activity, or the identity test proves nothing.
        assert!(
            expected.iter().flatten().any(|&c| c > 0),
            "test network was silent; pick livelier inputs"
        );
    }

    #[test]
    fn quantized_presets_match_serial_on_the_swar_path() {
        for preset in [Preset::Bit2, Preset::Bit4, Preset::Bit8] {
            batch_matches_serial(preset, CurrentDelivery::Sparse, 4, 3);
        }
    }

    #[test]
    fn dense_delivery_matches_too() {
        batch_matches_serial(Preset::Bit4, CurrentDelivery::Dense, 3, 2);
    }

    #[test]
    fn full_precision_runs_the_scalar_fallback() {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 19, 70);
        let snapshot = trained_snapshot(&cfg, 23);
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let batched = BatchedEngine::new(cfg, &device, &snapshot, 2).unwrap();
        assert!(!batched.swar_active());
        assert_eq!(batched.lanes(), None);
        batch_matches_serial(Preset::FullPrecision, CurrentDelivery::Sparse, 2, 2);
    }

    #[test]
    fn swar_activates_for_every_narrow_preset() {
        for (preset, lanes) in [(Preset::Bit2, 8), (Preset::Bit4, 4), (Preset::Bit8, 4)] {
            let cfg = NetworkConfig::from_preset(preset, 8, 9);
            let snapshot = trained_snapshot(&cfg, 7);
            let device = Device::new(DeviceConfig::default().with_workers(1));
            let batched = BatchedEngine::new(cfg, &device, &snapshot, 1).unwrap();
            assert!(batched.swar_active(), "{preset:?} should pack");
            assert_eq!(batched.lanes(), Some(lanes), "{preset:?} lane count");
        }
    }

    #[test]
    fn off_grid_conductance_falls_back_but_stays_identical() {
        let cfg = NetworkConfig::from_preset(Preset::Bit4, 11, 13);
        let snapshot = trained_snapshot(&cfg, 3);
        // Nudge one weight off the Q0.4 grid, as a checkpoint written under
        // a different format would produce.
        let mut matrix = snapshot.synapses().clone();
        matrix.as_flat_mut()[17] = 0.3;
        let snapshot = EvalSnapshot::new(matrix, snapshot.thetas().to_vec());
        let device = Device::new(DeviceConfig::default().with_workers(3));
        let mut batched = BatchedEngine::new(cfg.clone(), &device, &snapshot, 3).unwrap();
        assert!(!batched.swar_active(), "off-grid weights must void the packed path");
        let trains: Vec<SpikeTrains> =
            (0..3).map(|b| test_trains(11, 50, cfg.dt_ms, 2 + b)).collect();
        let refs: Vec<&SpikeTrains> = trains.iter().collect();
        let got = batched.present_frozen_batch(&refs);
        assert_eq!(got, serial_counts(&cfg, &snapshot, &trains));
    }

    #[test]
    fn batch_of_one_equals_each_lane_of_a_wide_batch() {
        let cfg = NetworkConfig::from_preset(Preset::Bit2, 16, 30);
        let snapshot = trained_snapshot(&cfg, 41);
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let trains: Vec<SpikeTrains> =
            (0..5).map(|b| test_trains(16, 40, cfg.dt_ms, 2 + b % 4)).collect();
        let refs: Vec<&SpikeTrains> = trains.iter().collect();
        let mut wide = BatchedEngine::new(cfg.clone(), &device, &snapshot, 5).unwrap();
        let wide_counts = wide.present_frozen_batch(&refs);
        let mut solo = BatchedEngine::new(cfg, &device, &snapshot, 1).unwrap();
        for (tr, expected) in trains.iter().zip(&wide_counts) {
            assert_eq!(&solo.present_frozen_batch(&[tr])[0], expected);
        }
    }

    #[test]
    fn explicit_inhibition_is_rejected() {
        let mut cfg = NetworkConfig::from_preset(Preset::Bit4, 6, 4);
        cfg.inhibition = InhibitionMode::Explicit { w_exc_to_inh: 1.0 };
        assert!(!BatchedEngine::supports(&cfg));
        let snapshot = {
            let implicit = NetworkConfig::from_preset(Preset::Bit4, 6, 4);
            trained_snapshot(&implicit, 1)
        };
        let device = Device::new(DeviceConfig::default().with_workers(1));
        match BatchedEngine::new(cfg, &device, &snapshot, 2) {
            Err(SnnError::InvalidConfig { field, .. }) => assert_eq!(field, "inhibition"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "equal train lengths")]
    fn unequal_train_lengths_are_rejected() {
        let cfg = NetworkConfig::from_preset(Preset::Bit4, 6, 4);
        let snapshot = trained_snapshot(&cfg, 1);
        let device = Device::new(DeviceConfig::default().with_workers(1));
        let mut batched = BatchedEngine::new(cfg.clone(), &device, &snapshot, 2).unwrap();
        let a = test_trains(6, 10, cfg.dt_ms, 2);
        let b = test_trains(6, 11, cfg.dt_ms, 2);
        let _ = batched.present_frozen_batch(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "1..=capacity")]
    fn oversized_batch_is_rejected() {
        let cfg = NetworkConfig::from_preset(Preset::Bit4, 6, 4);
        let snapshot = trained_snapshot(&cfg, 1);
        let device = Device::new(DeviceConfig::default().with_workers(1));
        let mut batched = BatchedEngine::new(cfg.clone(), &device, &snapshot, 1).unwrap();
        let a = test_trains(6, 10, cfg.dt_ms, 2);
        let _ = batched.present_frozen_batch(&[&a, &a]);
    }

    #[test]
    fn reuse_across_dispatches_is_stateless() {
        let cfg = NetworkConfig::from_preset(Preset::Bit4, 12, 20);
        let snapshot = trained_snapshot(&cfg, 9);
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let mut batched = BatchedEngine::new(cfg.clone(), &device, &snapshot, 3).unwrap();
        let lively = test_trains(12, 50, cfg.dt_ms, 2);
        let quiet = test_trains(12, 50, cfg.dt_ms, 5);
        let first = batched.present_frozen_batch(&[&lively, &quiet, &lively]);
        // A second dispatch over the same trains must not see leftovers.
        let second = batched.present_frozen_batch(&[&lively, &quiet, &lively]);
        assert_eq!(first, second);
        // And a smaller follow-up batch reuses the buffers cleanly.
        let third = batched.present_frozen_batch(&[&quiet]);
        assert_eq!(third[0], first[1]);
    }

    #[test]
    fn sig_bits_measures_the_significand_span() {
        assert_eq!(sig_bits(0.0), 0);
        assert_eq!(sig_bits(1.0), 1);
        assert_eq!(sig_bits(2.0), 1);
        assert_eq!(sig_bits(-0.5), 1);
        assert_eq!(sig_bits(3.0), 2);
        assert_eq!(sig_bits(1.25), 3);
        assert_eq!(sig_bits(1.0 + f64::EPSILON), f64::MANTISSA_DIGITS);
    }

    #[test]
    fn packed_columns_mirror_the_transposed_view() {
        let cfg = NetworkConfig::from_preset(Preset::Bit4, 9, 11);
        let snapshot = trained_snapshot(&cfg, 13);
        let packed = PackedColumns::build(&cfg, snapshot.transposed_arc().as_ref()).unwrap();
        let q = match cfg.precision {
            Precision::Fixed(q) => q,
            Precision::Float32 => unreachable!(),
        };
        let gt = snapshot.transposed_arc();
        for i in 0..9 {
            let col = gt.col(i);
            for (j, &g) in col.iter().enumerate() {
                let word = packed.words[i * packed.words_per_col + j / packed.layout.lanes()];
                let raw = packed.layout.lane(word, j % packed.layout.lanes());
                assert_eq!(q.raw_to_f64(raw), g, "lane ({i},{j}) round-trip");
            }
        }
    }
}
