//! Round-based parallel-training primitives: recorded presentations and
//! their deferred plasticity commits (DESIGN.md §14).
//!
//! The serial trainer interleaves forward dynamics and weight updates
//! within each presentation. The parallel trainer instead advances a
//! *round* of R presentations concurrently against one frozen round-start
//! snapshot — each worker records the post events a serial engine would
//! have generated ([`crate::sim::WtaEngine::present_recording`]) — and then
//! folds every presentation's deferred update chains into the shared
//! matrix in a commit phase:
//!
//! * [`commit_ordered`] — the `SeededMergeOrder` kernel: each synapse folds
//!   its update chains in the canonical `(presentation, step)` ascending
//!   order ([`merge_order`]), so the result is bit-identical at any worker
//!   count.
//! * [`commit_concurrent`] — the shared-atomics kernel: presentation
//!   workers fold their chains through `qformat`-aware CAS loops on an
//!   [`AtomicGrid`] over the same matrix; arrival order (and therefore the
//!   exact final bits) depends on scheduling, but every committed value is
//!   an on-grid, in-bounds fold of real update chains.
//!
//! Both kernels restore transposed-view coherence and fold the round's
//! homeostasis deltas (ascending presentation order) before returning, so
//! the snapshot that emerges is a valid round-start state for the next
//! round. Relative to the serial trainer the protocol is an *algorithmic
//! relaxation* — plasticity lands at round boundaries instead of
//! mid-presentation — so parity with serial training is statistical
//! (accuracy within cross-validation tolerance), while reproducibility
//! *within* the protocol is exact in `SeededMergeOrder` mode.

use crate::sim::{EvalSnapshot, SpikeTrains};
use crate::synapse::PostEvent;
use gpu_device::{AtomicGrid, Device, Philox4x32};

/// Everything one recorded presentation contributes to a round commit.
#[derive(Debug, Clone)]
pub struct RecordedPresentation {
    /// Global presentation index (position in the training stream); the
    /// first component of the canonical merge order.
    pub index: usize,
    /// Per-neuron spike counts of the presentation (label statistics).
    pub counts: Vec<u32>,
    /// Per-post-row deferred post events, steps ascending, on the global
    /// step counter (`base_step = index × steps_per_presentation`).
    pub events: Vec<Vec<PostEvent>>,
    /// Per-input pre-spike timestamps on the presentation's accumulated
    /// local clock — the table [`crate::synapse::SettleCtx::commit_synapse_value`]
    /// resolves `last_pre` from.
    pub pre_spikes: Vec<Vec<f64>>,
    /// Net per-neuron adaptive-threshold change over the presentation.
    pub theta_delta: Vec<f64>,
}

/// What a round commit did: update chains folded, stores elided by the
/// low-precision fast path, CAS retries paid (zero in ordered mode), and
/// raw post events replayed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitStats {
    /// Per-synapse update chains folded into the matrix.
    pub applied: u64,
    /// Chains whose folded value bit-matched the loaded one (store skipped).
    pub elided: u64,
    /// Compare-exchange retries under contention (concurrent mode only).
    pub retries: u64,
    /// Total post events replayed across all chains.
    pub events: u64,
}

/// Precomputes the Bernoulli input spike trains a training presentation
/// draws, exactly as the engine's encode kernel would when its step counter
/// runs `base_step..base_step + steps`: input `i` spikes at local step `s`
/// iff `uniform(INPUT | i, base_step + s) < rate·dt`. Presentations get
/// disjoint step ranges, so every draw key is globally unique and a serial
/// engine presenting this image at the same counter sees identical spikes.
#[must_use]
pub fn training_trains(
    seed: u64,
    rates_hz: &[f64],
    dt_ms: f64,
    duration_ms: f64,
    base_step: u64,
) -> SpikeTrains {
    let philox = Philox4x32::new(seed);
    let p_spike: Vec<f64> = rates_hz.iter().map(|&f| (f * dt_ms / 1000.0).clamp(0.0, 1.0)).collect();
    let steps = (duration_ms / dt_ms).round() as u64;
    let mut trains = SpikeTrains::new(rates_hz.len(), dt_ms);
    let mut active: Vec<u32> = Vec::new();
    for s in 0..steps {
        active.clear();
        for (i, &p) in p_spike.iter().enumerate() {
            if philox.uniform(crate::streams::INPUT | i as u64, base_step + s) < p {
                active.push(i as u32);
            }
        }
        trains.push_step(&active);
    }
    trains
}

/// Expands spike trains into per-input spike-time tables on the same
/// accumulated clock the engine runs (`t` starts at zero and gains `dt`
/// per step — **not** `s × dt`, which differs in the last bits), so the
/// tables compare exactly against recorded event timestamps.
#[must_use]
pub fn pre_spike_times(trains: &SpikeTrains) -> Vec<Vec<f64>> {
    let mut times = vec![Vec::new(); trains.n_inputs()];
    let mut t = 0.0f64;
    for s in 0..trains.steps() {
        for &i in trains.active(s) {
            times[i as usize].push(t);
        }
        t += trains.dt_ms();
    }
    times
}

/// The canonical merge order of one synapse row's commits: `(presentation
/// position, event step)` pairs, presentations ascending and steps
/// ascending within each. [`commit_ordered`] folds every synapse's chains
/// in exactly this sequence — the determinism contract of
/// `SeededMergeOrder` mode (DESIGN.md §14) — and the order depends only on
/// the recorded data, never on worker count or scheduling.
pub fn merge_order<'a>(
    round: &'a [RecordedPresentation],
    post: usize,
) -> impl Iterator<Item = (usize, u64)> + 'a {
    round
        .iter()
        .flat_map(move |rp| rp.events[post].iter().map(move |ev| (rp.index, ev.step)))
}

fn round_event_total(round: &[RecordedPresentation]) -> u64 {
    round.iter().map(|rp| rp.events.iter().map(|e| e.len() as u64).sum::<u64>()).sum()
}

fn fold_theta_deltas(thetas: &mut [f64], round: &[RecordedPresentation]) {
    // Ascending presentation order: the fold is a float sum, so fixing the
    // order is what keeps it bit-reproducible.
    for rp in round {
        for (theta, &delta) in thetas.iter_mut().zip(&rp.theta_delta) {
            *theta += delta;
        }
    }
}

/// Commits a round in the canonical merge order: row-parallel over post
/// neurons, each synapse folding its update chains presentation-ascending
/// ([`merge_order`]). Rows are independent, so the result is bit-identical
/// at any worker count. Restores transposed coherence and folds the theta
/// deltas before returning.
///
/// `philox` must be the generator the round's engines drew from (same
/// seed), and `cfg` the shared network configuration — the rule is rebuilt
/// here via [`crate::stdp::build_rule`] so the commit applies the same
/// calibrated decision function the serial trainer would.
pub fn commit_ordered(
    device: &Device,
    snapshot: &mut EvalSnapshot,
    cfg: &crate::config::NetworkConfig,
    philox: Philox4x32,
    round: &[RecordedPresentation],
) -> CommitStats {
    let _span = snn_trace::span_cat("train/parallel_commit", "train");
    let rule = crate::stdp::build_rule(cfg);
    let (matrix, transposed, thetas) = snapshot.commit_access();
    let n_pre = matrix.n_pre();
    let sctx = matrix.settle_ctx(&*rule, philox);
    let events_total = round_event_total(round);
    device.launch_rows_mut("commit_apply", matrix.as_flat_mut(), n_pre, |j, row| {
        for rp in round {
            let events = &rp.events[j];
            if events.is_empty() {
                continue;
            }
            for (i, g) in row.iter_mut().enumerate() {
                *g = sctx.commit_synapse_value(*g, events, j, i, &rp.pre_spikes[i]);
            }
        }
    });
    let cells = transposed.refresh(matrix, None, None);
    device.bump_counter("transpose_cells_refreshed", cells);
    fold_theta_deltas(thetas, round);
    let applied: u64 = round
        .iter()
        .map(|rp| rp.events.iter().filter(|e| !e.is_empty()).count() as u64 * n_pre as u64)
        .sum();
    device.bump_counter("commit_events_applied", events_total);
    CommitStats { applied, elided: 0, retries: 0, events: events_total }
}

/// Commits a round through shared atomics: one work item per presentation,
/// each folding its chains into the matrix via [`AtomicGrid`] CAS loops
/// (re-running the pure per-chain fold on retry). The final bits depend on
/// arrival order, but every cell always holds an on-grid, in-bounds value
/// and no chain is lost or double-applied. Coherence and theta folds as in
/// [`commit_ordered`] (the theta fold stays ordered — it is cheap and
/// keeping it deterministic shrinks the nondeterminism surface to the
/// weight cells).
pub fn commit_concurrent(
    device: &Device,
    snapshot: &mut EvalSnapshot,
    cfg: &crate::config::NetworkConfig,
    philox: Philox4x32,
    round: &[RecordedPresentation],
) -> CommitStats {
    let _span = snn_trace::span_cat("train/parallel_commit", "train");
    let rule = crate::stdp::build_rule(cfg);
    let (matrix, transposed, thetas) = snapshot.commit_access();
    let n_pre = matrix.n_pre();
    let sctx = matrix.settle_ctx(&*rule, philox);
    let events_total = round_event_total(round);
    let per_item_cost =
        ((events_total as usize).saturating_mul(n_pre) / round.len().max(1)).max(1);
    let counters = {
        let grid = AtomicGrid::new(matrix.as_flat_mut());
        let grid_ref = &grid;
        device.launch_weighted("commit_atomic", round.len(), per_item_cost, |p| {
            let rp = &round[p];
            for (j, events) in rp.events.iter().enumerate() {
                if events.is_empty() {
                    continue;
                }
                for i in 0..n_pre {
                    grid_ref.update(j * n_pre + i, |g| {
                        sctx.commit_synapse_value(g, events, j, i, &rp.pre_spikes[i])
                    });
                }
            }
        });
        grid.counters()
    };
    let cells = transposed.refresh(matrix, None, None);
    device.bump_counter("transpose_cells_refreshed", cells);
    fold_theta_deltas(thetas, round);
    device.bump_counter("commit_cas_retries", counters.retries);
    device.bump_counter("commit_stores_elided", counters.elided);
    device.bump_counter("commit_events_applied", events_total);
    CommitStats {
        applied: counters.applied,
        elided: counters.elided,
        retries: counters.retries,
        events: events_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, Preset, RuleKind};
    use crate::synapse::SynapseMatrix;
    use gpu_device::DeviceConfig;

    fn cfg(preset: Preset) -> NetworkConfig {
        NetworkConfig::from_preset(preset, 16, 4)
    }

    fn synthetic_round(n_pre: usize, n_post: usize) -> Vec<RecordedPresentation> {
        // Two presentations with hand-built event/pre-spike tables on
        // disjoint global step ranges.
        (0..2)
            .map(|k| {
                let base = k as u64 * 100;
                let mut events = vec![Vec::new(); n_post];
                events[0] = vec![
                    PostEvent { step: base + 3, t_ms: 0.3 },
                    PostEvent { step: base + 9, t_ms: 0.9 },
                ];
                events[2] = vec![PostEvent { step: base + 5, t_ms: 0.5 }];
                let pre_spikes =
                    (0..n_pre).map(|i| if i % 2 == k { vec![0.2, 0.8] } else { vec![] }).collect();
                RecordedPresentation {
                    index: k,
                    counts: vec![0; n_post],
                    events,
                    pre_spikes,
                    theta_delta: vec![0.25 * (k as f64 + 1.0); n_post],
                }
            })
            .collect()
    }

    #[test]
    fn training_trains_is_a_pure_function_of_seed_and_step_origin() {
        let rates = vec![400.0; 16];
        let a = training_trains(7, &rates, 0.5, 10.0, 300);
        let b = training_trains(7, &rates, 0.5, 10.0, 300);
        let c = training_trains(7, &rates, 0.5, 10.0, 0);
        assert_eq!(a.steps(), 20);
        assert_eq!(
            (0..a.steps()).map(|s| a.active(s).to_vec()).collect::<Vec<_>>(),
            (0..b.steps()).map(|s| b.active(s).to_vec()).collect::<Vec<_>>()
        );
        // A different step origin keys different draws.
        assert_ne!(
            (0..a.steps()).map(|s| a.active(s).to_vec()).collect::<Vec<_>>(),
            (0..c.steps()).map(|s| c.active(s).to_vec()).collect::<Vec<_>>()
        );
        assert!(a.total_spikes() > 0, "vacuous at these rates");
    }

    #[test]
    fn pre_spike_times_accumulate_the_engine_clock() {
        let rates = vec![2000.0; 3]; // saturated: every input fires each step
        let trains = training_trains(1, &rates, 0.5, 1.5, 0);
        let times = pre_spike_times(&trains);
        let mut t = 0.0f64;
        let expected: Vec<f64> = (0..3)
            .map(|_| {
                let v = t;
                t += 0.5;
                v
            })
            .collect();
        for table in &times {
            assert_eq!(table.len(), 3);
            for (a, b) in table.iter().zip(&expected) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn merge_order_is_presentation_then_step_ascending() {
        let round = synthetic_round(16, 4);
        let order: Vec<(usize, u64)> = merge_order(&round, 0).collect();
        assert_eq!(order, vec![(0, 3), (0, 9), (1, 103), (1, 109)]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn ordered_commit_is_worker_count_invariant() {
        for kind in [RuleKind::Deterministic, RuleKind::Stochastic] {
            let c = cfg(Preset::Bit8).with_rule(kind);
            let m = SynapseMatrix::new_random(&c, 11);
            let round = synthetic_round(m.n_pre(), m.n_post());
            let philox = Philox4x32::new(11);
            let commit_with = |workers: usize| {
                let device = Device::new(DeviceConfig {
                    workers,
                    min_parallel_items: 1,
                    ..DeviceConfig::default()
                });
                let mut snap = EvalSnapshot::new(m.clone(), vec![0.0; m.n_post()]);
                let stats = commit_ordered(&device, &mut snap, &c, philox, &round);
                (snap, stats)
            };
            let (serial, s1) = commit_with(1);
            let (pooled, s4) = commit_with(4);
            assert_eq!(serial.synapses().as_flat(), pooled.synapses().as_flat());
            assert_eq!(serial.thetas(), pooled.thetas());
            assert_eq!(s1.events, s4.events);
            assert!(s1.events > 0);
            assert!(serial.synapses().check_invariants());
            // The weights actually moved (the gate is not vacuous).
            assert_ne!(serial.synapses().as_flat(), m.as_flat());
        }
    }

    #[test]
    fn concurrent_commit_on_one_worker_matches_ordered() {
        // With a single worker the atomic kernel folds presentations in
        // index order — exactly the canonical merge order — so the two
        // kernels must agree bit for bit.
        let c = cfg(Preset::Bit4).with_rule(RuleKind::Stochastic);
        let m = SynapseMatrix::new_random(&c, 3);
        let round = synthetic_round(m.n_pre(), m.n_post());
        let philox = Philox4x32::new(3);
        let device = Device::new(DeviceConfig::serial());
        let mut ordered = EvalSnapshot::new(m.clone(), vec![0.1; m.n_post()]);
        let mut atomic = EvalSnapshot::new(m.clone(), vec![0.1; m.n_post()]);
        let so = commit_ordered(&device, &mut ordered, &c, philox, &round);
        let sa = commit_concurrent(&device, &mut atomic, &c, philox, &round);
        assert_eq!(ordered.synapses().as_flat(), atomic.synapses().as_flat());
        assert_eq!(ordered.thetas(), atomic.thetas());
        assert_eq!(so.events, sa.events);
        assert!(sa.applied > 0);
    }

    #[test]
    fn concurrent_commit_preserves_invariants_under_contention() {
        let c = cfg(Preset::Bit2).with_rule(RuleKind::Deterministic);
        let m = SynapseMatrix::new_random(&c, 5);
        let round: Vec<RecordedPresentation> = (0..8)
            .flat_map(|_| synthetic_round(m.n_pre(), m.n_post()))
            .enumerate()
            .map(|(k, mut rp)| {
                rp.index = k;
                rp
            })
            .collect();
        let device = Device::new(DeviceConfig {
            workers: 4,
            min_parallel_items: 1,
            ..DeviceConfig::default()
        });
        let mut snap = EvalSnapshot::new(m.clone(), vec![0.0; m.n_post()]);
        let stats = commit_concurrent(&device, &mut snap, &c, Philox4x32::new(5), &round);
        assert!(snap.synapses().check_invariants());
        assert_eq!(stats.events, round_event_total(&round));
        // Theta fold stayed deterministic: sum of all deltas.
        let expected: f64 = round.iter().map(|rp| rp.theta_delta[0]).sum();
        assert!((snap.thetas()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn theta_fold_is_presentation_ascending() {
        let mut thetas = vec![0.0; 4];
        let round = synthetic_round(16, 4);
        fold_theta_deltas(&mut thetas, &round);
        // 0.25 (presentation 0) then 0.5 (presentation 1), per cell.
        assert!(thetas.iter().all(|&t| (t - 0.75).abs() < 1e-12));
    }
}
