//! The winner-take-all learning engine (Fig. 2/3 of the paper).
//!
//! The fused step kernels below use `SharedSlice` raw-pointer views, so
//! this file (with `generic.rs`) is the audited unsafe surface of
//! `snn-core` — see `snn-lint`'s `unsafe-surface` allow-list and the
//! crate-root `#![deny(unsafe_code)]`.
#![allow(unsafe_code)]

use crate::config::{
    CurrentDelivery, InhibitionMode, LifParams, NetworkConfig, NeuronModelKind,
    PlasticityExecution,
};
use crate::neuron::{AdexNeuron, IzhikevichNeuron, LifNeuron, NeuronModel, NeuronState};
use crate::sim::{EvalSnapshot, SpikeRaster, SpikeTrains};
use crate::stdp::PlasticityRule;
use crate::synapse::{
    PlasticityLedger, PostEvent, SettleCtx, SynapseMatrix, TransposedConductances,
};
use crate::SnnError;
use gpu_device::{Device, DeviceBuffer, GaugeStats, Philox4x32, SharedSlice};
use std::sync::Arc;

/// Canonical summation block of the current-delivery kernels: both the
/// dense and the sparse path fold this step's active (spiking) inputs —
/// taken in ascending index order — into per-block partial sums of exactly
/// this many spikes, then add the blocks to the decayed current in
/// ascending block order. The block structure depends only on the data,
/// never on the worker count or the delivery mode, which is what makes
/// `Dense` and `Sparse` bit-identical at any parallelism.
pub(crate) const SPIKE_BLOCK: usize = 32;

/// Post-neuron tile width of the sparse scatter stage: each work item owns
/// one `(spike block × neuron tile)` rectangle of the partial-sum matrix,
/// so no two workers ever write the same partial cell.
const POST_TILE: usize = 256;

/// Per-excitatory-neuron dynamic state, kept as an array of structs so the
/// neuron-update kernel touches one cache line per neuron. The explicit
/// 64-byte alignment pads the natural 56-byte layout so no cell ever
/// straddles two cache lines — the per-step integrate sweep touches exactly
/// one line per neuron.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
pub(crate) struct ExcCell {
    pub(crate) v: f64,
    pub(crate) recovery: f64,
    pub(crate) theta: f64,
    pub(crate) refractory_ms: f64,
    pub(crate) inhibited_until: f64,
    pub(crate) last_spike: f64,
    pub(crate) spiked: bool,
}

// Stream-id name spaces for the counter-based RNG (shared with the synapse
// settle kernels via `crate::streams`, which is what makes the eager and
// lazy plasticity paths draw identical randomness).
use crate::streams::{INPUT as STREAM_KIND_INPUT, SYNAPSE as STREAM_KIND_SYNAPSE};

/// The engine's synapse storage: owned and mutable for learning engines,
/// or an `Arc`-shared read-only snapshot for frozen evaluation replicas
/// (which never copy the O(n_pre × n_post) weights).
enum SynapseStore {
    Owned(SynapseMatrix),
    Frozen(Arc<SynapseMatrix>),
}

impl SynapseStore {
    fn get(&self) -> &SynapseMatrix {
        match self {
            SynapseStore::Owned(m) => m,
            SynapseStore::Frozen(m) => m,
        }
    }

    fn get_mut(&mut self) -> &mut SynapseMatrix {
        match self {
            SynapseStore::Owned(m) => m,
            SynapseStore::Frozen(_) => {
                panic!("frozen replica synapses are immutable (mounted from an EvalSnapshot)")
            }
        }
    }
}

/// The neuron-major conductance mirror backing sparse delivery: absent in
/// dense mode, owned (and refreshed after every matrix mutation) on a
/// learning engine, shared read-only on a frozen replica.
enum TransposedView {
    Absent,
    Owned(TransposedConductances),
    Frozen(Arc<TransposedConductances>),
}

impl TransposedView {
    fn view(&self) -> Option<&TransposedConductances> {
        match self {
            TransposedView::Absent => None,
            TransposedView::Owned(gt) => Some(gt),
            TransposedView::Frozen(gt) => Some(gt),
        }
    }
}

/// The unsupervised-learning engine: rate-coded input trains, an excitatory
/// LIF layer with all-to-all plastic synapses, winner-take-all lateral
/// inhibition, and on-line (deterministic or stochastic) STDP.
///
/// Every per-neuron and per-synapse stage executes as a data-parallel kernel
/// on the supplied [`Device`]; all randomness (input Poisson trains, STDP
/// acceptance, stochastic rounding) is drawn from counter-based Philox
/// streams keyed by `(entity id, step)`, so a run is bit-reproducible for a
/// given seed at any worker count.
///
/// # Example
///
/// ```
/// use gpu_device::{Device, DeviceConfig};
/// use snn_core::config::{NetworkConfig, Preset, RuleKind};
/// use snn_core::sim::WtaEngine;
///
/// let device = Device::new(DeviceConfig::default().with_workers(2));
/// let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 4, 3)
///     .with_rule(RuleKind::Stochastic);
/// let mut engine = WtaEngine::new(cfg.clone(), &device, 7);
///
/// // Present one 4-input "image" at 60 Hz for 50 ms of simulated time,
/// // with plasticity on; the result is one spike count per neuron.
/// let spikes = engine.present(&[60.0; 4], 50.0, true);
/// assert_eq!(spikes.len(), 3);
///
/// // The same seed replays bit-identically at any worker count.
/// let solo = Device::new(DeviceConfig::default().with_workers(1));
/// let mut replay = WtaEngine::new(cfg, &solo, 7);
/// assert_eq!(replay.present(&[60.0; 4], 50.0, true), spikes);
/// ```
pub struct WtaEngine<'d> {
    cfg: NetworkConfig,
    device: &'d Device,
    rule: Box<dyn PlasticityRule>,
    synapses: SynapseStore,
    cells: Vec<ExcCell>,
    i_syn: Vec<f64>,
    last_pre: Vec<f64>,
    input_spiked: Vec<u8>,
    /// Compacted ascending indices of this step's spiking inputs (the
    /// *active-spike list*); only the prefix written by the fused
    /// encode+compact kernel each step is meaningful.
    spike_list: DeviceBuffer<u32>,
    /// Number of valid entries in [`Self::spike_list`] this step.
    active_inputs: usize,
    /// Per-worker spike counts feeding the compaction's prefix-offset pass.
    worker_slots: Vec<u32>,
    /// Neuron-major mirror of the synapse matrix, present only under
    /// [`CurrentDelivery::Sparse`]; kept bit-coherent with the row-major
    /// learning-side matrix by a rectangle refresh after every
    /// matrix-mutating pass (shared read-only on frozen replicas).
    transposed: TransposedView,
    /// Persistent per-block partial-sum buffer of the sparse delivery
    /// kernel, grown on demand; every cell in use is assigned (not
    /// accumulated) by the first spike of its block each step, so no
    /// zeroing pass is needed between steps.
    partial_sums: Vec<f64>,
    spiking_posts: Vec<u32>,
    /// Resolved execution strategy: `cfg.plasticity`, downgraded to `Eager`
    /// when the rule consumes pre-side events (the deferral protocol only
    /// covers post-triggered updates).
    exec: PlasticityExecution,
    /// Deferred post-spike events of the lazy path (empty-capacity in eager
    /// mode).
    ledger: PlasticityLedger,
    philox: Philox4x32,
    time_ms: f64,
    step: u64,
    /// Explicit inhibitory layer state (one LIF partner per excitatory
    /// neuron), present only in [`InhibitionMode::Explicit`].
    inh_cells: Option<Vec<NeuronState>>,
    inh_drive: Vec<f64>,
    /// When set (only inside [`WtaEngine::present_recording`]), the causal
    /// STDP phase records each spiking row's post event here instead of
    /// touching the weights or the ledger — the parallel trainer replays
    /// the events against the shared matrix at commit time.
    recording: Option<Vec<Vec<PostEvent>>>,
    raster: Option<SpikeRaster>,
    traced_neuron: Option<usize>,
    potential_trace: Vec<(f64, f64)>,
    syn_decay: f64,
    theta_decay: f64,
    /// Per-step profiler accounting batched across a presentation, so the
    /// step pipeline takes no profiler locks (see [`StepAccounting`]).
    acct: StepAccounting,
}

/// Locally accumulated per-step profiler traffic: the delivery counters and
/// the `active_fraction` gauge are bumped on every single step, so the step
/// pipeline folds them into this plain struct and deposits the batch into
/// the device profiler once per presentation instead of taking a
/// string-keyed profiler lock three times per step.
#[derive(Default)]
struct StepAccounting {
    active_spikes: u64,
    blocks: u64,
    dense_items: u64,
    dense_items_skipped: u64,
    active_fraction: GaugeStats,
}

impl StepAccounting {
    fn flush(&mut self, device: &Device) {
        if self.active_fraction.samples == 0 {
            return;
        }
        device.bump_counter("delivery_active_spikes", self.active_spikes);
        if self.blocks > 0 {
            device.bump_counter("delivery_blocks", self.blocks);
        }
        if self.dense_items > 0 {
            device.bump_counter("delivery_dense_items", self.dense_items);
        }
        if self.dense_items_skipped > 0 {
            device.bump_counter("delivery_dense_items_skipped", self.dense_items_skipped);
        }
        device.record_gauge_stats("active_fraction", &self.active_fraction);
        *self = Self::default();
    }
}

impl<'d> WtaEngine<'d> {
    /// Builds an engine for `cfg` on `device`, with all randomness keyed by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`WtaEngine::try_new`] for fallible construction.
    #[must_use]
    pub fn new(cfg: NetworkConfig, device: &'d Device, seed: u64) -> Self {
        Self::try_new(cfg, device, seed).expect("invalid network configuration")
    }

    /// Fallible constructor: validates `cfg` first.
    pub fn try_new(cfg: NetworkConfig, device: &'d Device, seed: u64) -> Result<Self, SnnError> {
        cfg.validate()?;
        let synapses = SynapseMatrix::new_random(&cfg, seed);
        let transposed = match cfg.delivery {
            CurrentDelivery::Sparse => TransposedView::Owned(TransposedConductances::new(&synapses)),
            CurrentDelivery::Dense => TransposedView::Absent,
        };
        Ok(Self::assemble(cfg, device, seed, SynapseStore::Owned(synapses), transposed))
    }

    /// Builds an engine around a pre-built (possibly sharded) synapse
    /// matrix instead of drawing a fresh random one. `cfg` must describe
    /// the matrix's own shape — for a shard, the *local* populations —
    /// while the matrix's `row_origin` keeps the per-synapse draw keys
    /// global (see `sim::sharded`).
    pub(crate) fn with_matrix(
        cfg: NetworkConfig,
        device: &'d Device,
        seed: u64,
        synapses: SynapseMatrix,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        assert_eq!(synapses.n_pre(), cfg.n_inputs, "matrix pre population mismatch");
        assert_eq!(synapses.n_post(), cfg.n_excitatory, "matrix post population mismatch");
        let transposed = match cfg.delivery {
            CurrentDelivery::Sparse => TransposedView::Owned(TransposedConductances::new(&synapses)),
            CurrentDelivery::Dense => TransposedView::Absent,
        };
        Ok(Self::assemble(cfg, device, seed, SynapseStore::Owned(synapses), transposed))
    }

    /// The local neurons that spiked on the most recent step, ascending —
    /// the list a sharded driver exchanges between
    /// [`WtaEngine::step_integrate`] and [`WtaEngine::step_commit`].
    pub(crate) fn spiking_posts(&self) -> &[u32] {
        &self.spiking_posts
    }

    /// Deposits the batched per-step profiler traffic into the device
    /// profiler. [`WtaEngine::present`] and friends do this on return; a
    /// sharded driver stepping the engine directly calls it at its own
    /// presentation boundary.
    pub(crate) fn flush_step_accounting(&mut self) {
        self.acct.flush(self.device);
    }

    /// Assembles an engine around an existing synapse store — the shared
    /// tail of [`WtaEngine::try_new`] (owned random weights) and
    /// [`WtaEngine::replica`] (frozen shared weights, which skips the
    /// random initialization entirely). `cfg` must already be validated.
    fn assemble(
        cfg: NetworkConfig,
        device: &'d Device,
        seed: u64,
        synapses: SynapseStore,
        transposed: TransposedView,
    ) -> Self {
        let rule = crate::stdp::build_rule(&cfg);
        let init_state = match cfg.neuron {
            NeuronModelKind::Lif => LifNeuron::new(cfg.lif).initial_state(),
            NeuronModelKind::Izhikevich(p) => IzhikevichNeuron::new(p).initial_state(),
            NeuronModelKind::Adex(p) => AdexNeuron::new(p).initial_state(),
        };
        let cell = ExcCell {
            v: init_state.v,
            recovery: init_state.recovery,
            theta: 0.0,
            refractory_ms: 0.0,
            inhibited_until: f64::NEG_INFINITY,
            last_spike: f64::NEG_INFINITY,
            spiked: false,
        };
        let syn_decay = (-cfg.dt_ms / cfg.tau_syn_ms).exp();
        let theta_decay = (-cfg.dt_ms / cfg.tau_theta_ms).exp();
        let inh_cells = match cfg.inhibition {
            InhibitionMode::Implicit => None,
            InhibitionMode::Explicit { .. } => {
                Some(vec![LifNeuron::new(cfg.lif).initial_state(); cfg.n_excitatory])
            }
        };
        let exec = if rule.uses_pre_events() {
            PlasticityExecution::Eager
        } else {
            cfg.plasticity
        };
        let ledger = match exec {
            PlasticityExecution::Lazy => PlasticityLedger::new(cfg.n_inputs, cfg.n_excitatory),
            PlasticityExecution::Eager => PlasticityLedger::new(cfg.n_inputs, 0),
        };
        WtaEngine {
            transposed,
            partial_sums: Vec::new(),
            exec,
            ledger,
            inh_cells,
            inh_drive: vec![0.0; cfg.n_excitatory],
            cells: vec![cell; cfg.n_excitatory],
            i_syn: vec![0.0; cfg.n_excitatory],
            last_pre: vec![f64::NEG_INFINITY; cfg.n_inputs],
            input_spiked: vec![0; cfg.n_inputs],
            spike_list: device.alloc("spike_list", cfg.n_inputs, 0u32),
            active_inputs: 0,
            worker_slots: vec![0; device.workers()],
            spiking_posts: Vec::with_capacity(cfg.n_excitatory),
            philox: Philox4x32::new(seed),
            time_ms: 0.0,
            step: 0,
            recording: None,
            raster: None,
            traced_neuron: None,
            potential_trace: Vec::new(),
            syn_decay,
            theta_decay,
            acct: StepAccounting::default(),
            rule,
            synapses,
            device,
            cfg,
        }
    }

    /// Mounts a frozen evaluation replica over `snapshot`: the replica
    /// shares the snapshot's conductance matrix and transposed view by
    /// reference count — no weight copy, N replicas hold one O(n_pre ×
    /// n_post) allocation — and seeds its adaptive thresholds from the
    /// snapshot. A replica only runs frozen presentations
    /// ([`WtaEngine::present_frozen`] or [`WtaEngine::present`] with
    /// `plastic = false`); any weight-mutating call panics.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match the configuration.
    pub fn replica(
        cfg: NetworkConfig,
        device: &'d Device,
        seed: u64,
        snapshot: &EvalSnapshot,
    ) -> Result<Self, SnnError> {
        cfg.validate()?;
        assert_eq!(
            snapshot.synapses().n_pre(),
            cfg.n_inputs,
            "snapshot pre population mismatch"
        );
        assert_eq!(
            snapshot.synapses().n_post(),
            cfg.n_excitatory,
            "snapshot post population mismatch"
        );
        // Mount the shared stores directly — a replica never touches the
        // random initialization path, so construction is O(n_excitatory),
        // not O(n_pre × n_post).
        let transposed = match cfg.delivery {
            CurrentDelivery::Sparse => TransposedView::Frozen(snapshot.transposed_arc()),
            CurrentDelivery::Dense => TransposedView::Absent,
        };
        let mut engine = Self::assemble(
            cfg,
            device,
            seed,
            SynapseStore::Frozen(snapshot.synapses_arc()),
            transposed,
        );
        for (cell, &theta) in engine.cells.iter_mut().zip(snapshot.thetas()) {
            cell.theta = theta;
        }
        Ok(engine)
    }

    /// Captures a read-only, `Arc`-shared snapshot of the learned state —
    /// the settled conductance matrix (row-major and transposed) plus the
    /// homeostasis thresholds — for mounting evaluation replicas with
    /// [`WtaEngine::replica`].
    #[must_use]
    pub fn snapshot(&self) -> EvalSnapshot {
        debug_assert!(self.ledger.is_idle(), "snapshotting an unsettled synapse matrix");
        EvalSnapshot::new(self.synapses.get().clone(), self.thetas())
    }

    /// Whether this engine is a frozen evaluation replica (mounted from an
    /// [`EvalSnapshot`]; cannot learn).
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        matches!(self.synapses, SynapseStore::Frozen(_))
    }

    /// The configuration this engine was built with.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The plasticity execution strategy actually in effect — `cfg.plasticity`
    /// unless the rule consumes pre-side events, which forces eager updates.
    #[must_use]
    pub fn plasticity_execution(&self) -> PlasticityExecution {
        self.exec
    }

    /// The current-delivery strategy in effect (`cfg.delivery`).
    #[must_use]
    pub fn current_delivery(&self) -> CurrentDelivery {
        self.cfg.delivery
    }

    /// The plastic synapse matrix.
    ///
    /// The matrix is always fully settled here: the lazy path flushes its
    /// deferred-update ledger before [`WtaEngine::present`] returns.
    #[must_use]
    pub fn synapses(&self) -> &SynapseMatrix {
        debug_assert!(self.ledger.is_idle(), "observing an unsettled synapse matrix");
        self.synapses.get()
    }

    /// Replaces the synapse matrix (e.g. when restoring a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the configuration.
    pub fn set_synapses(&mut self, synapses: SynapseMatrix) {
        assert_eq!(synapses.n_pre(), self.cfg.n_inputs, "pre population mismatch");
        assert_eq!(synapses.n_post(), self.cfg.n_excitatory, "post population mismatch");
        debug_assert!(self.ledger.is_idle(), "replacing an unsettled synapse matrix");
        if !matches!(self.transposed, TransposedView::Absent) {
            self.transposed = TransposedView::Owned(TransposedConductances::new(&synapses));
        }
        self.synapses = SynapseStore::Owned(synapses);
    }

    /// Current simulated time (ms).
    #[must_use]
    pub fn time_ms(&self) -> f64 {
        self.time_ms
    }

    /// The adaptive-threshold offsets (homeostasis state).
    #[must_use]
    pub fn thetas(&self) -> Vec<f64> {
        self.cells.iter().map(|c| c.theta).collect()
    }

    /// Overwrites the adaptive thresholds — the homeostasis half of
    /// restoring a checkpoint or resuming a replica-merge window.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the excitatory population.
    pub fn set_thetas(&mut self, thetas: &[f64]) {
        assert_eq!(thetas.len(), self.cells.len(), "theta population mismatch");
        for (cell, &theta) in self.cells.iter_mut().zip(thetas) {
            cell.theta = theta;
        }
    }

    /// Sets the training clock (step counter and simulated time). Used when
    /// resuming training from a checkpoint or a replica-merge window: the
    /// input Philox draws are keyed by the step counter, so a resumed
    /// engine must continue from the exact counter the interrupted run
    /// would have reached to reproduce its trajectory.
    pub fn set_clock(&mut self, step: u64, time_ms: f64) {
        debug_assert!(self.ledger.is_idle(), "re-clocking with unsettled plasticity events");
        self.step = step;
        self.time_ms = time_ms;
    }

    /// The training step counter (paired with [`WtaEngine::set_clock`]).
    #[must_use]
    pub fn clock(&self) -> (u64, f64) {
        (self.step, self.time_ms)
    }

    /// Enables or disables spike-event recording.
    pub fn record_raster(&mut self, enable: bool) {
        self.raster = if enable { Some(SpikeRaster::new()) } else { None };
    }

    /// Takes the recorded raster, leaving an empty one if recording is
    /// enabled.
    pub fn take_raster(&mut self) -> Option<SpikeRaster> {
        self.raster.as_mut().map(std::mem::take)
    }

    /// Starts (or stops, with `None`) recording the membrane potential of
    /// one excitatory neuron at every step — the Fig. 1(b) style trace.
    ///
    /// # Panics
    ///
    /// Panics if the neuron index is out of range.
    pub fn trace_potential(&mut self, neuron: Option<usize>) {
        if let Some(j) = neuron {
            assert!(j < self.cfg.n_excitatory, "traced neuron out of range");
        }
        self.traced_neuron = neuron;
        self.potential_trace.clear();
    }

    /// Takes the recorded `(time_ms, v)` membrane trace.
    pub fn take_potential_trace(&mut self) -> Vec<(f64, f64)> {
        std::mem::take(&mut self.potential_trace)
    }

    /// Rescales every receptive field so its conductances sum to `target`,
    /// re-quantizing under the configured rounding mode (Diehl-style weight
    /// normalization; an extension over the paper, off by default).
    pub fn normalize_receptive_fields(&mut self, target: f64) {
        assert!(target > 0.0, "normalization target must be positive");
        debug_assert!(self.ledger.is_idle(), "normalizing an unsettled synapse matrix");
        let ctx = self.synapses.get().update_ctx();
        let philox = self.philox;
        let step = self.step;
        let n_pre = self.cfg.n_inputs;
        let row_origin = self.synapses.get().row_origin();
        self.device.launch_rows_mut(
            "normalize_weights",
            self.synapses.get_mut().as_flat_mut(),
            n_pre,
            |j, row| {
                let sum: f64 = row.iter().sum();
                if sum <= 0.0 {
                    return;
                }
                let scale = target / sum;
                for (i, g) in row.iter_mut().enumerate() {
                    let syn = ((row_origin + j) * n_pre + i) as u64;
                    let u = philox.uniform2(STREAM_KIND_SYNAPSE | syn, step.wrapping_add(1));
                    *g = ctx.requantize(*g * scale, u);
                }
            },
        );
        if let TransposedView::Owned(gt) = &mut self.transposed {
            let cells = gt.refresh(self.synapses.get(), None, None);
            self.device.bump_counter("transpose_cells_refreshed", cells);
        }
    }

    /// Resets membrane potentials, synaptic currents, inhibition, and the
    /// pre/post spike timers — everything except the learned conductances
    /// and the homeostasis thresholds. Called between image presentations.
    pub fn reset_transients(&mut self) {
        debug_assert!(self.ledger.is_idle(), "resetting with unsettled plasticity events");
        let init_state = match self.cfg.neuron {
            NeuronModelKind::Lif => LifNeuron::new(self.cfg.lif).initial_state(),
            NeuronModelKind::Izhikevich(p) => IzhikevichNeuron::new(p).initial_state(),
            NeuronModelKind::Adex(p) => AdexNeuron::new(p).initial_state(),
        };
        for c in &mut self.cells {
            c.v = init_state.v;
            c.recovery = init_state.recovery;
            c.refractory_ms = 0.0;
            c.inhibited_until = f64::NEG_INFINITY;
            c.last_spike = f64::NEG_INFINITY;
            c.spiked = false;
        }
        self.i_syn.fill(0.0);
        self.last_pre.fill(f64::NEG_INFINITY);
        self.inh_drive.fill(0.0);
        // A canonical start also clears the spike flags: the dense delivery
        // kernel gates on the whole flag array and the frozen-presentation
        // path stages flags incrementally, so the previous presentation's
        // final step must not leak in. (The encode kernel overwrites every
        // flag each step, so this cannot change a training trajectory.)
        self.input_spiked.fill(0);
        self.active_inputs = 0;
        if let Some(inh) = &mut self.inh_cells {
            let init = LifNeuron::new(self.cfg.lif).initial_state();
            inh.fill(init);
        }
    }

    /// Presents one stimulus for `duration_ms`: each input train fires as a
    /// Poisson process at `rates_hz[i]`. With `plastic` the STDP rule and
    /// homeostasis run; without, the network only infers.
    ///
    /// Returns the spike count of every excitatory neuron during this
    /// presentation.
    ///
    /// # Panics
    ///
    /// Panics if `rates_hz.len()` differs from the configured input count.
    pub fn present(&mut self, rates_hz: &[f64], duration_ms: f64, plastic: bool) -> Vec<u32> {
        assert_eq!(
            rates_hz.len(),
            self.cfg.n_inputs,
            "rate vector does not match input population"
        );
        assert!(
            !(plastic && self.is_frozen()),
            "frozen replica engines cannot learn (mounted from an EvalSnapshot)"
        );
        let _span = snn_trace::span_cat("engine/present", "engine");
        let dt = self.cfg.dt_ms;
        // Per-step spike probability; a train faster than 1/dt saturates.
        let p_spike: Vec<f64> =
            rates_hz.iter().map(|&f| (f * dt / 1000.0).clamp(0.0, 1.0)).collect();
        let steps = (duration_ms / dt).round() as u64;
        let mut counts = vec![0u32; self.cfg.n_excitatory];
        for _ in 0..steps {
            let _step = snn_trace::step_span("engine/step");
            self.step_once(&p_spike, plastic, &mut counts);
        }
        self.flush_plasticity();
        self.acct.flush(self.device);
        counts
    }

    /// Presents one *precomputed* stimulus with plasticity off — the frozen
    /// evaluation path. `trains` supplies every step's spiking inputs
    /// directly (generated outside the engine, keyed by image index), so
    /// the presentation consumes no engine RNG and starts from the
    /// canonical post-[`WtaEngine::reset_transients`] state at local time
    /// zero: the returned spike counts are a pure function of (weights,
    /// thresholds, trains) — bit-identical on any engine mounting the same
    /// snapshot, at any worker count, no matter which replica runs the
    /// image or in what order presentations are queued.
    ///
    /// The engine's training clock and step counter are saved and restored
    /// around the presentation, so interleaving frozen probes with training
    /// does not perturb the training trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the trains' input count or step width disagree with the
    /// engine configuration.
    pub fn present_frozen(&mut self, trains: &SpikeTrains) -> Vec<u32> {
        assert_eq!(
            trains.n_inputs(),
            self.cfg.n_inputs,
            "train set does not match input population"
        );
        assert!(
            (trains.dt_ms() - self.cfg.dt_ms).abs() < 1e-12,
            "train step width does not match the configured dt"
        );
        debug_assert!(self.ledger.is_idle(), "frozen presentation with unsettled plasticity");
        let _span = snn_trace::span_cat("engine/present_frozen", "engine");
        self.reset_transients();
        // Local time zero: f64 arithmetic is not translation-invariant, so
        // identical outcomes require an identical clock, not just identical
        // inputs.
        let saved_time = self.time_ms;
        let saved_step = self.step;
        self.time_ms = 0.0;
        self.step = 0;
        let mut counts = vec![0u32; self.cfg.n_excitatory];
        // Inhibition fast-forward (see [`WtaEngine::step_quiet`]): inside a
        // winner-take-all suppression window every inhibited neuron's update
        // is the provable no-op `spiked = false; v = v_reset`, so only the
        // event's spikers need integrating and the full-population kernel
        // collapses to the synaptic-current fold. Requires the LIF model
        // (other models touch recovery state even when suppressed), implicit
        // inhibition, a transposed view for the fold, and no per-step
        // observers.
        let quiet_ok = matches!(self.cfg.neuron, NeuronModelKind::Lif)
            && matches!(self.cfg.inhibition, InhibitionMode::Implicit)
            && self.transposed.view().is_some()
            && self.raster.is_none()
            && self.traced_neuron.is_none()
            && self.cfg.t_inh_ms > 0.0;
        let mut quiet_until = f64::NEG_INFINITY;
        let mut quiet_active: Vec<u32> = Vec::new();
        for s in 0..trains.steps() {
            let active = trains.active(s);
            if quiet_ok && self.time_ms < quiet_until {
                let _step = snn_trace::step_span("engine/step_quiet");
                self.step_quiet(active, &mut quiet_active, &mut quiet_until, &mut counts);
                continue;
            }
            let _step = snn_trace::step_span("engine/step");
            self.stage_active(active);
            self.step_core(false, &mut counts);
            if quiet_ok && !self.spiking_posts.is_empty() {
                self.enter_quiet(&mut quiet_active, &mut quiet_until);
            }
        }
        self.clear_active();
        self.time_ms = saved_time;
        self.step = saved_step;
        self.acct.flush(self.device);
        counts
    }

    /// Presents one precomputed stimulus on a **frozen replica** with the
    /// full training dynamics running — homeostasis evolves and the causal
    /// STDP phase fires — but every would-be weight update is *recorded*
    /// instead of applied: the returned per-row [`PostEvent`] lists, replayed
    /// through [`SettleCtx::commit_synapse_value`] with the presentation's
    /// pre-spike time table, produce exactly the updates a serial engine
    /// would have made presenting these trains at the same step counter
    /// against the same (frozen) round-start weights.
    ///
    /// `base_step` is the presentation's global step origin: the engine's
    /// step counter runs `base_step..base_step + trains.steps()`, so every
    /// recorded event's `(synapse, step)` draw key — and every input draw a
    /// [`SpikeTrains`] generator used — is globally unique across the
    /// round's presentations.
    ///
    /// The local clock starts at zero (accumulated per step exactly as in
    /// training, so event `t_ms` values match a same-shaped pre-spike time
    /// table), and the entry thetas are restored on exit with the per-cell
    /// net change returned as the third tuple element: the round's theta
    /// evolution is folded in at commit time, in presentation order, not
    /// per-replica.
    ///
    /// No winner-take-all quiet fast-forward runs here: homeostasis decays
    /// every neuron's theta every step, which the suppression-window
    /// shortcut of [`WtaEngine::present_frozen`] would skip.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not a frozen replica, if the rule consumes
    /// pre-side events (the deferral protocol only covers post-triggered
    /// updates), or if the trains' shape disagrees with the configuration.
    pub fn present_recording(
        &mut self,
        trains: &SpikeTrains,
        base_step: u64,
    ) -> (Vec<u32>, Vec<Vec<PostEvent>>, Vec<f64>) {
        assert!(
            self.is_frozen(),
            "recorded presentations run on frozen replicas of the round snapshot"
        );
        assert!(
            !self.rule.uses_pre_events(),
            "recorded presentations require a post-triggered rule"
        );
        assert_eq!(
            trains.n_inputs(),
            self.cfg.n_inputs,
            "train set does not match input population"
        );
        assert!(
            (trains.dt_ms() - self.cfg.dt_ms).abs() < 1e-12,
            "train step width does not match the configured dt"
        );
        debug_assert!(self.ledger.is_idle(), "recorded presentation with unsettled plasticity");
        let _span = snn_trace::span_cat("engine/present_recording", "engine");
        self.reset_transients();
        let saved_time = self.time_ms;
        let saved_step = self.step;
        self.time_ms = 0.0;
        self.step = base_step;
        let entry_thetas = self.thetas();
        self.recording = Some(vec![Vec::new(); self.cfg.n_excitatory]);
        let mut counts = vec![0u32; self.cfg.n_excitatory];
        for s in 0..trains.steps() {
            let active = trains.active(s);
            let _step = snn_trace::step_span("engine/step");
            self.stage_active(active);
            self.step_core(true, &mut counts);
        }
        self.clear_active();
        let theta_delta: Vec<f64> = self
            .cells
            .iter()
            .zip(&entry_thetas)
            .map(|(cell, &theta0)| cell.theta - theta0)
            .collect();
        self.set_thetas(&entry_thetas);
        self.time_ms = saved_time;
        self.step = saved_step;
        let events = self.recording.take().expect("recording active for the presentation");
        self.acct.flush(self.device);
        (counts, events, theta_delta)
    }

    /// One frozen-evaluation step taken entirely inside a winner-take-all
    /// suppression window (`t < quiet_until`). Every neuron outside
    /// `quiet_active` is inhibited, and the inhibited arm of the LIF update
    /// is `spiked = false; v = v_reset` — both already true in the stored
    /// state (see [`WtaEngine::enter_quiet`]) — so the full-population
    /// integration kernel is a provable no-op for them and is skipped
    /// wholesale. What remains per step is the canonical synaptic-current
    /// fold over the whole population (the current trajectory must stay
    /// exact for when neurons rejoin) plus the ordinary per-neuron update
    /// of the handful of uninhibited spikers, whose refractory countdown
    /// and threshold crossings the window does not protect against.
    ///
    /// Every floating-point operation that still runs is the same op in the
    /// same order as [`WtaEngine::step_core`], so the path is bit-identical
    /// to the per-step pipeline; it differs only in the work it can prove
    /// away. A spike inside the window re-enters the standard
    /// winner-take-all commit and restarts the window from this step.
    fn step_quiet(
        &mut self,
        spikers: &[u32],
        quiet_active: &mut Vec<u32>,
        quiet_until: &mut f64,
        counts: &mut [u32],
    ) {
        let t = self.time_ms;
        let dt = self.cfg.dt_ms;
        let n_pre = self.cfg.n_inputs;
        let n_exc = self.cfg.n_excitatory;
        let n_active = spikers.len();
        self.acct.active_fraction.merge_sample(n_active as f64 / n_pre as f64);
        self.acct.active_spikes += n_active as u64;
        for &i in spikers {
            self.last_pre[i as usize] = t;
        }
        // The synaptic-current fold of the fused delivery kernel, minus the
        // integration it normally feeds: `i_syn[j] = i_syn[j]·decay +
        // Σ_b block_b[j]` with the same SPIKE_BLOCK partial-sum grouping.
        {
            let v_spike = self.cfg.v_spike;
            let decay = self.syn_decay;
            let gt = self.transposed.view().expect("quiet step requires a transposed view");
            let i_syn = SharedSlice::new(&mut self.i_syn);
            let n_blocks = n_active.div_ceil(SPIKE_BLOCK);
            let cost = (n_active + 1) * n_exc;
            let bytes = ((n_active + 2) * n_exc * 8) as u64;
            self.device.launch_fused("deliver_decay_quiet", cost, bytes, |ctx| match *spikers {
                [] => {
                    for j in ctx.chunk(n_exc) {
                        // SAFETY: chunk() partitions 0..n_exc per worker.
                        unsafe { i_syn.write(j, i_syn.read(j) * decay) };
                    }
                }
                [i0] => {
                    let col = gt.col(i0 as usize);
                    for j in ctx.chunk(n_exc) {
                        // SAFETY: chunk() partitions 0..n_exc per worker.
                        unsafe { i_syn.write(j, i_syn.read(j) * decay + col[j] * v_spike) };
                    }
                }
                _ => {
                    for j in ctx.chunk(n_exc) {
                        // SAFETY: chunk() partitions 0..n_exc per worker.
                        let mut acc = unsafe { i_syn.read(j) } * decay;
                        for block in spikers.chunks(SPIKE_BLOCK) {
                            let mut iter = block.iter();
                            if let Some(&i0) = iter.next() {
                                let mut b = gt.col(i0 as usize)[j] * v_spike;
                                for &i in iter {
                                    b += gt.col(i as usize)[j] * v_spike;
                                }
                                acc += b;
                            }
                        }
                        // SAFETY: as above — j is in this worker's chunk.
                        unsafe { i_syn.write(j, acc) };
                    }
                }
            });
            self.acct.blocks += n_blocks as u64;
            self.acct.dense_items_skipped += ((n_pre - n_active) * n_exc) as u64;
        }
        // Only the uninhibited neurons can change state or spike.
        let lif_params = self.cfg.lif;
        let theta_decay = self.theta_decay;
        let mut any_spiked = false;
        for &j in quiet_active.iter() {
            let j = j as usize;
            let cell = &mut self.cells[j];
            integrate_cell_lif(cell, self.i_syn[j], t, dt, lif_params, theta_decay, false);
            any_spiked |= cell.spiked;
        }
        if any_spiked {
            // The standard frozen winner-take-all commit (no raster, no
            // homeostasis bump), scanning only the neurons that could spike.
            self.spiking_posts.clear();
            for &j in quiet_active.iter() {
                if self.cells[j as usize].spiked {
                    self.spiking_posts.push(j);
                    self.cells[j as usize].last_spike = t;
                    counts[j as usize] += 1;
                }
            }
            let until = t + self.cfg.t_inh_ms;
            let v_reset = self.cfg.lif.v_reset;
            for cell in &mut self.cells {
                if !cell.spiked {
                    cell.inhibited_until = until;
                    cell.v = v_reset;
                }
            }
            quiet_active.clear();
            quiet_active.extend_from_slice(&self.spiking_posts);
            *quiet_until = until;
        }
        self.step += 1;
        self.time_ms += dt;
    }

    /// Opens a winner-take-all suppression window after a step that spiked:
    /// records the window deadline and the spikers (the only neurons the
    /// window leaves uninhibited), and pre-applies the inhibited arm's
    /// `v = v_reset` so every skipped update is a no-op on the stored state.
    /// The deadline is read back from a suppressed cell rather than
    /// recomputed, so the `t < quiet_until` gate compares the exact f64 the
    /// per-step inhibition branch would.
    fn enter_quiet(&mut self, quiet_active: &mut Vec<u32>, quiet_until: &mut f64) {
        let Some(suppressed) = self.cells.iter().find(|c| !c.spiked) else {
            // Every neuron spiked: nothing is inhibited and no window opens.
            return;
        };
        *quiet_until = suppressed.inhibited_until;
        let v_reset = self.cfg.lif.v_reset;
        for cell in &mut self.cells {
            if !cell.spiked {
                cell.v = v_reset;
            }
        }
        quiet_active.clear();
        quiet_active.extend_from_slice(&self.spiking_posts);
    }

    /// Settles every deferred plasticity event into the synapse matrix and
    /// clears the ledger. Called automatically at the end of every
    /// [`WtaEngine::present`]; a no-op in eager mode (or when nothing is
    /// pending), so the matrix is always settled at every public
    /// observation point.
    pub fn flush_plasticity(&mut self) {
        if self.ledger.is_idle() {
            return;
        }
        let _span = snn_trace::span_cat("engine/settle", "engine");
        let outstanding = self.ledger.outstanding_updates();
        let sctx = self.synapses.get().settle_ctx(&*self.rule, self.philox);
        let n_pre = self.cfg.n_inputs;
        let last_pre = &self.last_pre;
        let (events, applied, active) = self.ledger.split();
        Self::launch_settle(
            self.device,
            "stdp_flush_settle",
            active,
            self.synapses.get_mut().as_flat_mut(),
            applied,
            sctx,
            events,
            n_pre,
            last_pre,
            None,
        );
        self.device.bump_counter("stdp_flush_rows", active.len() as u64);
        self.device.bump_counter("stdp_updates_settled_at_flush", outstanding);
        if let TransposedView::Owned(gt) = &mut self.transposed {
            let cells = gt.refresh(self.synapses.get(), Some(active), None);
            self.device.bump_counter("transpose_cells_refreshed", cells);
        }
        self.ledger.clear_settled();
    }

    /// Launches one gather settle kernel: for each listed row, apply its
    /// pending events to the given columns (`None` = the whole row). The
    /// per-row work is proportional to pending events × touched columns —
    /// the active-pair iteration at the heart of the lazy path.
    #[allow(clippy::too_many_arguments)]
    fn launch_settle(
        device: &Device,
        name: &'static str,
        rows: &[u32],
        g: &mut [f64],
        applied: &mut [u32],
        sctx: SettleCtx<'_>,
        events: &[Vec<PostEvent>],
        n_pre: usize,
        last_pre: &[f64],
        columns: Option<&[u32]>,
    ) {
        // The per-row settle work is pending events × touched columns, not
        // just the row count — a short active list with deep event queues
        // still deserves the pool.
        let cols_len = columns.map_or(n_pre, <[u32]>::len);
        let work = rows
            .iter()
            .map(|&j| events[j as usize].len())
            .sum::<usize>()
            .saturating_mul(cols_len);
        device.launch_gather_rows_mut(name, rows, g, applied, n_pre, work, |_k, j, g_row, a_row| {
            let evs = events[j].as_slice();
            match columns {
                Some(cols) => {
                    for &i in cols {
                        let i = i as usize;
                        sctx.settle_synapse(&mut g_row[i], &mut a_row[i], evs, j, i, last_pre[i]);
                    }
                }
                None => {
                    for i in 0..n_pre {
                        sctx.settle_synapse(&mut g_row[i], &mut a_row[i], evs, j, i, last_pre[i]);
                    }
                }
            }
        });
    }

    /// One `dt` step of the full pipeline: encode + compact this step's
    /// input spikes, then run the core phases.
    fn step_once(&mut self, p_spike: &[f64], plastic: bool, counts: &mut [u32]) {
        self.encode_step(p_spike);
        self.step_core(plastic, counts);
    }

    /// Phase (1) of the step pipeline: encode this step's input spikes and
    /// stage the compacted active list. The draws are keyed `(input, step)`
    /// from the engine seed and nothing else, so every shard of a sharded
    /// engine (same seed, same clock) encodes the *identical* spike train —
    /// the input broadcast of DESIGN.md §16 costs no exchange traffic.
    pub(crate) fn encode_step(&mut self, p_spike: &[f64]) {
        let step = self.step;
        let philox = self.philox;
        let n_pre = self.cfg.n_inputs;

        // (1) Fused encode + compact kernel: Bernoulli(p) per train from
        // the train's own counter stream, then a two-phase parallel
        // compaction of the spiking indices into the active-spike list.
        // Workers own contiguous ascending chunks and write their spikes at
        // an exclusive prefix offset of the per-worker counts, so the list
        // is globally ascending at any worker count.
        {
            self.worker_slots.fill(0);
            let p_spike_ref = p_spike;
            let spiked = SharedSlice::new(&mut self.input_spiked);
            let list = SharedSlice::new(self.spike_list.as_mut_slice());
            let slots = SharedSlice::new(&mut self.worker_slots);
            let bytes = (n_pre * (8 + 2 + 4)) as u64;
            self.device.launch_fused("encode_compact", n_pre * 2, bytes, |ctx| {
                let chunk = ctx.chunk(n_pre);
                let mut count = 0u32;
                for i in chunk.clone() {
                    let u = philox.uniform(STREAM_KIND_INPUT | i as u64, step);
                    let s = u8::from(u < p_spike_ref[i]);
                    // SAFETY: chunk() ranges partition 0..n_pre per worker.
                    unsafe { spiked.write(i, s) };
                    count += u32::from(s);
                }
                // SAFETY: one count slot per worker.
                unsafe { slots.write(ctx.worker(), count) };
                ctx.sync();
                let mut offset = 0usize;
                for w in 0..ctx.worker() {
                    // SAFETY: the counts are read-only in this stage.
                    offset += unsafe { slots.read(w) } as usize;
                }
                for i in chunk {
                    // SAFETY: this worker wrote `i` itself in stage 1.
                    if unsafe { spiked.read(i) } != 0 {
                        // SAFETY: prefix offsets give disjoint output ranges.
                        unsafe { list.write(offset, i as u32) };
                        offset += 1;
                    }
                }
            });
        }
        self.active_inputs = self.worker_slots.iter().map(|&c| c as usize).sum::<usize>();
    }

    /// Stages a precomputed active-input list exactly where the encode
    /// kernel would have left it: retires the previous step's flags,
    /// copies the (ascending) list, raises its flags, and records the
    /// count. The shared staging step of [`WtaEngine::present_frozen`],
    /// [`WtaEngine::present_recording`], and the sharded driver.
    pub(crate) fn stage_active(&mut self, active: &[u32]) {
        let prev = self.active_inputs;
        let list = self.spike_list.as_mut_slice();
        for &i in &list[..prev] {
            self.input_spiked[i as usize] = 0;
        }
        list[..active.len()].copy_from_slice(active);
        for &i in active {
            self.input_spiked[i as usize] = 1;
        }
        self.active_inputs = active.len();
    }

    /// Retires the staged active list, leaving the flag array clean for
    /// whatever runs next (the inverse of [`WtaEngine::stage_active`]).
    pub(crate) fn clear_active(&mut self) {
        let list = self.spike_list.as_slice();
        for &i in &list[..self.active_inputs] {
            self.input_spiked[i as usize] = 0;
        }
        self.active_inputs = 0;
    }

    /// Phases (1b)–(6) of the step pipeline, consuming the staged
    /// active-spike list (`spike_list[..active_inputs]` plus the coherent
    /// `input_spiked` flags) — staged either by the encode kernel
    /// ([`WtaEngine::step_once`]) or copied from precomputed trains
    /// ([`WtaEngine::present_frozen`]).
    fn step_core(&mut self, plastic: bool, counts: &mut [u32]) {
        let any_spiked = self.step_integrate(plastic, counts);
        self.step_commit(any_spiked, plastic);
    }

    /// Phases (1b)–(5-scan) of the step pipeline: touch-time settle,
    /// pre-side depression, the fused delivery + integration kernel, and
    /// the winner-take-all spiker scan (last-spike stamps, homeostasis
    /// bump, counts, raster). Returns whether any *local* neuron spiked.
    ///
    /// Split from [`WtaEngine::step_commit`] so a sharded driver
    /// (`sim::sharded`) can integrate every shard, exchange the spiker
    /// lists, and only then commit inhibition with the *global* spike
    /// flag — the winner-take-all suppression of DESIGN.md §16. A
    /// single-device step is exactly `step_commit(step_integrate(..))`.
    pub(crate) fn step_integrate(&mut self, plastic: bool, counts: &mut [u32]) -> bool {
        let t = self.time_ms;
        let dt = self.cfg.dt_ms;
        let step = self.step;
        let philox = self.philox;
        let n_pre = self.cfg.n_inputs;
        let n_active = self.active_inputs;
        self.acct.active_fraction.merge_sample(n_active as f64 / n_pre as f64);
        self.acct.active_spikes += n_active as u64;
        let spikers = &self.spike_list.as_slice()[..n_active];

        // (1b) Touch-time settle (lazy path): a spiking input's column is
        // about to be read by the accumulation kernel and its timestamp is
        // about to change, so deferred updates on (active row × spiking
        // column) pairs must land NOW, while `last_pre` still holds the
        // value the eager path read when each event was recorded.
        if !self.ledger.is_idle() && n_active > 0 {
            let sctx = self.synapses.get().settle_ctx(&*self.rule, philox);
            let last_pre = &self.last_pre;
            let (events, applied, active) = self.ledger.split();
            Self::launch_settle(
                self.device,
                "stdp_touch_settle",
                active,
                self.synapses.get_mut().as_flat_mut(),
                applied,
                sctx,
                events,
                n_pre,
                last_pre,
                Some(spikers),
            );
            // The settle mutated the (active rows × spiking columns)
            // rectangle, and the sparse kernel is about to stream exactly
            // those columns — re-mirror them into the transposed view.
            if let TransposedView::Owned(gt) = &mut self.transposed {
                let cells = gt.refresh(self.synapses.get(), Some(active), Some(spikers));
                self.device.bump_counter("transpose_cells_refreshed", cells);
            }
        }
        for &i in spikers {
            self.last_pre[i as usize] = t;
        }

        // (2) Anti-causal depression kernel: a pre spike arriving after a
        // recent post spike may depress. Neither built-in rule uses this
        // pathway (depression is consolidated at the post event), but the
        // dispatch supports custom rules that do.
        if plastic && self.rule.uses_pre_events() && n_active > 0 {
            let ctx = self.synapses.get().update_ctx();
            let rule = &*self.rule;
            let cells = &self.cells;
            let row_origin = self.synapses.get().row_origin();
            self.device.launch_rows_mut(
                "stdp_pre_dep",
                self.synapses.get_mut().as_flat_mut(),
                n_pre,
                |j, row| {
                    let dt_pair = t - cells[j].last_spike;
                    if !dt_pair.is_finite() {
                        return;
                    }
                    for &i in spikers {
                        let syn = ((row_origin + j) * n_pre + i as usize) as u64;
                        let u_accept = philox.uniform2(STREAM_KIND_SYNAPSE | syn, step);
                        if let Some(kind) = rule.on_pre_spike(dt_pair, u_accept) {
                            let u_round =
                                f64::from(philox.at(STREAM_KIND_SYNAPSE | syn, step, 3))
                                    / (u64::from(u32::MAX) + 1) as f64;
                            row[i as usize] = ctx.updated(row[i as usize], kind, u_round);
                        }
                    }
                },
            );
            if let TransposedView::Owned(gt) = &mut self.transposed {
                let cells = gt.refresh(self.synapses.get(), None, Some(spikers));
                self.device.bump_counter("transpose_cells_refreshed", cells);
            }
        }

        // (3+4) Fused current-delivery + neuron-update kernel (Eqs. 1–3
        // plus adaptive threshold). Both delivery modes compute the exact
        // same canonical blocked fold — `i_syn[j] = i_syn[j]·decay +
        // Σ_b block_b[j]`, blocks of SPIKE_BLOCK ascending active inputs —
        // so they are bit-identical; they differ only in how the blocks are
        // produced (full-row scan vs transposed-column scatter).
        // Output spikes this step, counted inside the fused kernels so the
        // winner-take-all scan below can be skipped on silent steps (the
        // overwhelmingly common case under rate coding). Each worker adds
        // its chunk's tally once; only the total is read, so the relaxed
        // ordering and the addition order are irrelevant to determinism.
        let step_spikes = std::sync::atomic::AtomicU32::new(0);
        'delivery: {
            let v_spike = self.cfg.v_spike;
            let decay = self.syn_decay;
            let lif_params = self.cfg.lif;
            let neuron_kind = self.cfg.neuron;
            let theta_decay = self.theta_decay;
            let homeostasis = plastic && self.cfg.theta_plus > 0.0;
            let n_exc = self.cfg.n_excitatory;
            let decay_inh = matches!(self.cfg.inhibition, InhibitionMode::Explicit { .. });
            let cell_bytes = n_exc * (16 + std::mem::size_of::<ExcCell>() * 2);
            let i_syn = SharedSlice::new(&mut self.i_syn);
            let cells = SharedSlice::new(&mut self.cells);
            let inh_drive = SharedSlice::new(&mut self.inh_drive);
            match self.transposed.view() {
                // Sparse path: scatter each (spike block × neuron tile)
                // rectangle of partial sums from the transposed view, then
                // reduce the blocks in ascending order, fused with the
                // neuron integration.
                Some(gt) => {
                    let n_blocks = n_active.div_ceil(SPIKE_BLOCK);
                    let n_tiles = n_exc.div_ceil(POST_TILE).max(1);
                    let scatter_items = n_blocks * n_tiles;
                    let cost = (n_active + n_blocks + 4) * n_exc;
                    let bytes = ((n_active + 2 * n_blocks + 2) * n_exc * 8 + cell_bytes) as u64;
                    if n_blocks <= 1 {
                        // Single-block fast path (the common case at rate-
                        // coded activity: ≤ SPIKE_BLOCK active inputs per
                        // step). The canonical fold has exactly one block
                        // term, so its partial sum can be kept in-register
                        // per neuron — same multiply/add sequence as the
                        // scatter stage writes, with no partial-buffer
                        // traffic and no barrier.
                        let step_spikes = &step_spikes;
                        self.device.launch_fused("deliver_integrate_sparse", cost, bytes, |ctx| {
                            // The one- and two-spiker cases dominate under
                            // rate coding; hoisting their column slices out
                            // of the neuron loop avoids re-slicing the
                            // transposed view per neuron. Both specializations
                            // run the identical multiply/add sequence.
                            let mut spiked = 0u32;
                            match *spikers {
                                [] => {
                                    for j in ctx.chunk(n_exc) {
                                        // SAFETY: chunk() partitions 0..n_exc
                                        // per worker.
                                        let acc = unsafe { i_syn.read(j) } * decay;
                                        unsafe { i_syn.write(j, acc) };
                                        let cell = unsafe { cells.get_mut(j) };
                                        integrate_cell(
                                            cell, acc, t, dt, neuron_kind, lif_params,
                                            theta_decay, homeostasis,
                                        );
                                        spiked += u32::from(cell.spiked);
                                        if decay_inh {
                                            // SAFETY: as above — j is in this worker's chunk.
                                            unsafe { *inh_drive.get_mut(j) *= decay };
                                        }
                                    }
                                }
                                [i0] => {
                                    let col = gt.col(i0 as usize);
                                    for j in ctx.chunk(n_exc) {
                                        // SAFETY: chunk() partitions 0..n_exc
                                        // per worker.
                                        let acc =
                                            unsafe { i_syn.read(j) } * decay + col[j] * v_spike;
                                        unsafe { i_syn.write(j, acc) };
                                        let cell = unsafe { cells.get_mut(j) };
                                        integrate_cell(
                                            cell, acc, t, dt, neuron_kind, lif_params,
                                            theta_decay, homeostasis,
                                        );
                                        spiked += u32::from(cell.spiked);
                                        if decay_inh {
                                            // SAFETY: as above — j is in this worker's chunk.
                                            unsafe { *inh_drive.get_mut(j) *= decay };
                                        }
                                    }
                                }
                                _ => {
                                    for j in ctx.chunk(n_exc) {
                                        // SAFETY: chunk() partitions 0..n_exc
                                        // per worker.
                                        let mut acc = unsafe { i_syn.read(j) } * decay;
                                        let mut iter = spikers.iter();
                                        if let Some(&i0) = iter.next() {
                                            let mut block = gt.col(i0 as usize)[j] * v_spike;
                                            for &i in iter {
                                                block += gt.col(i as usize)[j] * v_spike;
                                            }
                                            acc += block;
                                        }
                                        // SAFETY: as above — j is in this worker's chunk.
                                        unsafe { i_syn.write(j, acc) };
                                        let cell = unsafe { cells.get_mut(j) };
                                        integrate_cell(
                                            cell, acc, t, dt, neuron_kind, lif_params,
                                            theta_decay, homeostasis,
                                        );
                                        spiked += u32::from(cell.spiked);
                                        if decay_inh {
                                            // SAFETY: as above — j is in this worker's chunk.
                                            unsafe { *inh_drive.get_mut(j) *= decay };
                                        }
                                    }
                                }
                            }
                            step_spikes.fetch_add(spiked, std::sync::atomic::Ordering::Relaxed);
                        });
                        self.acct.blocks += n_blocks as u64;
                        self.acct.dense_items_skipped += ((n_pre - n_active) * n_exc) as u64;
                        // The multi-block machinery below is skipped
                        // entirely; fall through to the trace probe.
                        break 'delivery;
                    }
                    // The first spike of each block *assigns* its rectangle
                    // (bit-identical to zero-then-accumulate, since every
                    // block is non-empty), so the persistent buffer needs
                    // no zeroing pass between steps.
                    let needed = n_blocks * n_exc;
                    if self.partial_sums.len() < needed {
                        self.partial_sums.resize(needed, 0.0);
                    }
                    let partial_view = SharedSlice::new(&mut self.partial_sums[..needed]);
                    let step_spikes = &step_spikes;
                    self.device.launch_fused("deliver_integrate_sparse", cost, bytes, |ctx| {
                        for k in ctx.strided(scatter_items) {
                            let b = k / n_tiles;
                            let tile = k % n_tiles;
                            let j0 = tile * POST_TILE;
                            let j1 = ((tile + 1) * POST_TILE).min(n_exc);
                            let lo = b * SPIKE_BLOCK;
                            let hi = (lo + SPIKE_BLOCK).min(n_active);
                            // SAFETY: each (block, tile) pair is owned by
                            // exactly one work item, and work items
                            // partition over workers.
                            let part =
                                unsafe { partial_view.slice_mut(b * n_exc + j0..b * n_exc + j1) };
                            let mut first = true;
                            for &i in &spikers[lo..hi] {
                                let col = &gt.col(i as usize)[j0..j1];
                                if first {
                                    for (p, &gv) in part.iter_mut().zip(col) {
                                        *p = gv * v_spike;
                                    }
                                    first = false;
                                } else {
                                    for (p, &gv) in part.iter_mut().zip(col) {
                                        *p += gv * v_spike;
                                    }
                                }
                            }
                        }
                        ctx.sync();
                        let mut spiked = 0u32;
                        for j in ctx.chunk(n_exc) {
                            // SAFETY: chunk() partitions 0..n_exc; stage-1
                            // writes to `partial_view` are ordered by the
                            // barrier and read-only here.
                            let mut acc = unsafe { i_syn.read(j) } * decay;
                            for b in 0..n_blocks {
                                acc += unsafe { partial_view.read(b * n_exc + j) };
                            }
                            unsafe { i_syn.write(j, acc) };
                            let cell = unsafe { cells.get_mut(j) };
                            integrate_cell(
                                cell, acc, t, dt, neuron_kind, lif_params, theta_decay,
                                homeostasis,
                            );
                            spiked += u32::from(cell.spiked);
                            if decay_inh {
                                // SAFETY: as above — j is in this worker's chunk.
                                unsafe { *inh_drive.get_mut(j) *= decay };
                            }
                        }
                        step_spikes.fetch_add(spiked, std::sync::atomic::Ordering::Relaxed);
                    });
                    self.acct.blocks += n_blocks as u64;
                    self.acct.dense_items_skipped += ((n_pre - n_active) * n_exc) as u64;
                }
                // Dense path: every neuron scans its whole synapse row,
                // gated on the spike flags, folding active inputs into the
                // same SPIKE_BLOCK-sized partial blocks.
                None => {
                    let g = self.synapses.get().as_flat();
                    let flags = &self.input_spiked;
                    let cost = n_exc * (n_pre + 4);
                    let bytes = (n_exc * n_pre * 8 + n_pre + n_exc * 16 + cell_bytes) as u64;
                    let step_spikes = &step_spikes;
                    self.device.launch_fused("deliver_integrate_dense", cost, bytes, |ctx| {
                        let mut spiked = 0u32;
                        for j in ctx.chunk(n_exc) {
                            let row = &g[j * n_pre..(j + 1) * n_pre];
                            // SAFETY: chunk() partitions 0..n_exc per worker.
                            let mut acc = unsafe { i_syn.read(j) } * decay;
                            let mut block_acc = 0.0;
                            let mut seen = 0usize;
                            for (i, &s) in flags.iter().enumerate() {
                                if s != 0 {
                                    block_acc += row[i] * v_spike;
                                    seen += 1;
                                    if seen == SPIKE_BLOCK {
                                        acc += block_acc;
                                        block_acc = 0.0;
                                        seen = 0;
                                    }
                                }
                            }
                            if seen > 0 {
                                acc += block_acc;
                            }
                            // SAFETY: as above — j is in this worker's chunk.
                            unsafe { i_syn.write(j, acc) };
                            let cell = unsafe { cells.get_mut(j) };
                            integrate_cell(
                                cell, acc, t, dt, neuron_kind, lif_params, theta_decay,
                                homeostasis,
                            );
                            spiked += u32::from(cell.spiked);
                            if decay_inh {
                                // SAFETY: as above — j is in this worker's chunk.
                                unsafe { *inh_drive.get_mut(j) *= decay };
                            }
                        }
                        step_spikes.fetch_add(spiked, std::sync::atomic::Ordering::Relaxed);
                    });
                    self.acct.dense_items += (n_exc * n_pre) as u64;
                }
            }
        }

        if let Some(j) = self.traced_neuron {
            self.potential_trace.push((t, self.cells[j].v));
        }

        // (5) Winner-take-all: every spiker's inhibition partner suppresses
        // all non-spiking excitatory neurons for t_inh (Fig. 3). The scan
        // only acts on spiking cells, so when the delivery kernel counted
        // none it is a provable no-op and is skipped wholesale.
        let mut any_spiked = false;
        self.spiking_posts.clear();
        if step_spikes.load(std::sync::atomic::Ordering::Relaxed) > 0 {
            for (j, cell) in self.cells.iter_mut().enumerate() {
                if cell.spiked {
                    any_spiked = true;
                    self.spiking_posts.push(j as u32);
                    cell.last_spike = t;
                    if plastic {
                        cell.theta += self.cfg.theta_plus;
                    }
                    counts[j] += 1;
                    if let Some(r) = &mut self.raster {
                        r.push(t, j as u32);
                    }
                }
            }
        }
        any_spiked
    }

    /// Phases (5-inhibit) and (6) of the step pipeline plus the clock
    /// advance: winner-take-all suppression driven by `any_spiked`, then
    /// causal STDP over the *local* spikers collected by
    /// [`WtaEngine::step_integrate`].
    ///
    /// `any_spiked` is the population-wide spike flag. In a single-device
    /// step it is exactly the integrate phase's return value; a sharded
    /// driver passes the OR over all shards so implicit inhibition
    /// suppresses a shard's non-spikers even when the step's only winners
    /// live on another shard. The plasticity phase needs no such widening:
    /// it iterates only `spiking_posts`, and every per-synapse draw is
    /// keyed by the global row index, so running it shard-locally is
    /// bit-identical to the whole-population kernel (spike-free rows are
    /// no-ops and the counter-based Philox consumes no state).
    pub(crate) fn step_commit(&mut self, any_spiked: bool, plastic: bool) {
        let t = self.time_ms;
        let dt = self.cfg.dt_ms;
        let step = self.step;
        let philox = self.philox;
        let n_pre = self.cfg.n_inputs;
        let n_active = self.active_inputs;
        let spikers = &self.spike_list.as_slice()[..n_active];
        match self.cfg.inhibition {
            InhibitionMode::Implicit => {
                if any_spiked {
                    let until = t + self.cfg.t_inh_ms;
                    for cell in &mut self.cells {
                        if !cell.spiked {
                            cell.inhibited_until = until;
                        }
                    }
                }
            }
            InhibitionMode::Explicit { w_exc_to_inh } => {
                // Drive each spiker's private inhibitory partner; the
                // partner integrates like any LIF neuron and only its own
                // spike opens the suppression window. (The per-step drive
                // decay already ran inside the fused delivery kernel.)
                for (j, cell) in self.cells.iter().enumerate() {
                    if cell.spiked {
                        self.inh_drive[j] += w_exc_to_inh;
                    }
                }
                let lif = LifNeuron::new(self.cfg.lif);
                let inh = self.inh_cells.as_mut().expect("explicit mode has partners");
                let mut inh_spikers: Vec<usize> = Vec::new();
                for (j, state) in inh.iter_mut().enumerate() {
                    if lif.step(state, self.inh_drive[j], dt) {
                        inh_spikers.push(j);
                    }
                }
                if !inh_spikers.is_empty() {
                    let until = t + self.cfg.t_inh_ms;
                    for (k, cell) in self.cells.iter_mut().enumerate() {
                        if inh_spikers.iter().any(|&j| j != k) {
                            cell.inhibited_until = cell.inhibited_until.max(until);
                        }
                    }
                }
            }
        }

        // (6) Causal STDP: every incoming synapse of a spiking neuron
        // consults the rule with its pre spike timer (Eqs. 4–6). The eager
        // path scans the whole matrix now; the lazy path records one event
        // per spiking row and settles only the coincident (spiking input ×
        // spiking post) pairs, deferring the rest to touch time. Gated on
        // the *local* spikers: under sharding `any_spiked` may be true
        // while this shard stayed silent, and a silent shard's plasticity
        // phase is a provable no-op.
        if plastic && !self.spiking_posts.is_empty() {
            // Recorded presentation (parallel training): the post events are
            // captured for a deferred commit against the shared matrix —
            // weights and ledger stay untouched, so this branch is legal on
            // frozen replicas.
            if let Some(rec) = &mut self.recording {
                for &j in &self.spiking_posts {
                    rec[j as usize].push(PostEvent { step, t_ms: t });
                }
                self.device.bump_counter(
                    "stdp_updates_recorded",
                    self.spiking_posts.len() as u64 * n_pre as u64,
                );
                self.step += 1;
                self.time_ms += dt;
                return;
            }
            match self.exec {
                PlasticityExecution::Eager => {
                    let ctx = self.synapses.get().update_ctx();
                    let rule = &*self.rule;
                    let cells = &self.cells;
                    let last_pre = &self.last_pre;
                    let row_origin = self.synapses.get().row_origin();
                    self.device.launch_rows_mut(
                        "stdp_post",
                        self.synapses.get_mut().as_flat_mut(),
                        n_pre,
                        |j, row| {
                            if !cells[j].spiked {
                                return;
                            }
                            for (i, g) in row.iter_mut().enumerate() {
                                let dt_pair = t - last_pre[i];
                                let syn = ((row_origin + j) * n_pre + i) as u64;
                                let u_accept = philox.uniform(STREAM_KIND_SYNAPSE | syn, step);
                                if let Some(kind) = rule.on_post_spike(dt_pair, u_accept) {
                                    let u_round =
                                        f64::from(philox.at(STREAM_KIND_SYNAPSE | syn, step, 2))
                                            / (u64::from(u32::MAX) + 1) as f64;
                                    *g = ctx.updated(*g, kind, u_round);
                                }
                            }
                        },
                    );
                    if let TransposedView::Owned(gt) = &mut self.transposed {
                        let cells =
                            gt.refresh(self.synapses.get(), Some(&self.spiking_posts), None);
                        self.device.bump_counter("transpose_cells_refreshed", cells);
                    }
                }
                PlasticityExecution::Lazy => {
                    for &j in &self.spiking_posts {
                        self.ledger.record_post(j as usize, step, t);
                    }
                    self.device.bump_counter(
                        "stdp_updates_deferred",
                        self.spiking_posts.len() as u64 * n_pre as u64,
                    );
                    self.device.bump_counter(
                        "stdp_dense_items_skipped",
                        self.cfg.n_excitatory as u64 * n_pre as u64,
                    );
                    // Coincident pairs pair with `last_pre = t` (Δt = 0) in
                    // the eager path, so they must settle before this step's
                    // timestamps go stale — earlier events on these synapses
                    // were already settled by this step's touch pass.
                    if n_active > 0 {
                        let sctx = self.synapses.get().settle_ctx(&*self.rule, philox);
                        let last_pre = &self.last_pre;
                        let (events, applied, _) = self.ledger.split();
                        Self::launch_settle(
                            self.device,
                            "stdp_post_settle",
                            &self.spiking_posts,
                            self.synapses.get_mut().as_flat_mut(),
                            applied,
                            sctx,
                            events,
                            n_pre,
                            last_pre,
                            Some(spikers),
                        );
                        if let TransposedView::Owned(gt) = &mut self.transposed {
                            let cells = gt.refresh(
                                self.synapses.get(),
                                Some(&self.spiking_posts),
                                Some(spikers),
                            );
                            self.device.bump_counter("transpose_cells_refreshed", cells);
                        }
                    }
                }
            }
        }

        self.step += 1;
        self.time_ms += dt;
    }
}

/// The per-neuron integration body (Eqs. 1–2 plus adaptive threshold),
/// shared verbatim by the dense and sparse arms of the fused delivery
/// kernel so the two paths cannot drift apart.
#[allow(clippy::too_many_arguments)]
/// LIF specialization of [`integrate_cell`]: the same floating-point
/// operations in the same order (so it is bit-identical to routing through
/// [`LifNeuron::step`]), but without the `NeuronState` shuffle, the
/// per-neuron model dispatch, or the untouched `recovery` field traffic —
/// this loop body is the hot path of every delivery kernel.
#[inline(always)]
pub(crate) fn integrate_cell_lif(
    cell: &mut ExcCell,
    i_syn_j: f64,
    t: f64,
    dt: f64,
    p: LifParams,
    theta_decay: f64,
    homeostasis: bool,
) {
    cell.spiked = false;
    if homeostasis {
        cell.theta *= theta_decay;
    }
    if t < cell.inhibited_until {
        cell.v = p.v_reset;
        return;
    }
    if cell.refractory_ms > 0.0 {
        cell.refractory_ms = (cell.refractory_ms - dt).max(0.0);
        cell.v = p.v_reset;
        return;
    }
    let dv = p.a + p.b * cell.v + p.c * i_syn_j;
    let v = cell.v + dv * dt;
    // Homeostasis shifts the LIF threshold directly.
    if v > p.v_threshold + cell.theta {
        cell.v = p.v_reset;
        cell.refractory_ms = p.t_refractory_ms;
        cell.spiked = true;
    } else {
        cell.v = v;
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn integrate_cell(
    cell: &mut ExcCell,
    i_syn_j: f64,
    t: f64,
    dt: f64,
    neuron_kind: NeuronModelKind,
    lif_params: LifParams,
    theta_decay: f64,
    homeostasis: bool,
) {
    if matches!(neuron_kind, NeuronModelKind::Lif) {
        return integrate_cell_lif(cell, i_syn_j, t, dt, lif_params, theta_decay, homeostasis);
    }
    cell.spiked = false;
    if homeostasis {
        cell.theta *= theta_decay;
    }
    let inhibited = t < cell.inhibited_until;
    let mut state = NeuronState {
        v: cell.v,
        recovery: cell.recovery,
        refractory_ms: cell.refractory_ms,
    };
    let spiked = match neuron_kind {
        NeuronModelKind::Lif => unreachable!("handled by the specialized path"),
        NeuronModelKind::Izhikevich(p) => {
            if inhibited {
                return;
            }
            // Two-variable models take θ as an inhibitory current offset.
            IzhikevichNeuron::new(p).step(&mut state, i_syn_j - cell.theta, dt)
        }
        NeuronModelKind::Adex(p) => {
            if inhibited {
                return;
            }
            AdexNeuron::new(p).step(&mut state, i_syn_j - cell.theta, dt)
        }
    };
    cell.v = state.v;
    cell.recovery = state.recovery;
    cell.refractory_ms = state.refractory_ms;
    cell.spiked = spiked;
}

impl std::fmt::Debug for WtaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WtaEngine")
            .field("n_inputs", &self.cfg.n_inputs)
            .field("n_excitatory", &self.cfg.n_excitatory)
            .field("rule", &self.cfg.rule)
            .field("precision", &self.cfg.precision)
            .field("delivery", &self.cfg.delivery)
            .field("active_inputs", &self.active_inputs)
            .field("time_ms", &self.time_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Preset, RuleKind};
    use gpu_device::DeviceConfig;

    fn cfg(n_in: usize, n_exc: usize) -> NetworkConfig {
        NetworkConfig::from_preset(Preset::FullPrecision, n_in, n_exc)
    }

    fn strong_rates(n: usize) -> Vec<f64> {
        vec![200.0; n]
    }

    #[test]
    fn silent_inputs_produce_no_spikes() {
        let device = Device::new(DeviceConfig::serial());
        let mut e = WtaEngine::new(cfg(16, 4), &device, 1);
        let counts = e.present(&[0.0; 16], 200.0, true);
        assert!(counts.iter().all(|&c| c == 0));
        assert!(e.synapses().check_invariants());
    }

    #[test]
    fn strong_input_drives_spiking() {
        let device = Device::new(DeviceConfig::serial());
        let mut cfg = cfg(16, 4);
        cfg.v_spike = 2.0;
        let mut e = WtaEngine::new(cfg, &device, 1);
        let counts = e.present(&strong_rates(16), 500.0, false);
        assert!(counts.iter().sum::<u32>() > 0, "counts = {counts:?}");
    }

    #[test]
    fn learning_potentiates_active_synapses() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 2);
        c.v_spike = 2.0;
        c.theta_plus = 0.0;
        let mut e = WtaEngine::new(c, &device, 3);
        // Drive inputs 0..8 hard, leave 8..16 silent.
        let mut rates = vec![0.0; 16];
        for r in rates.iter_mut().take(8) {
            *r = 150.0;
        }
        let before_active: f64 =
            (0..8).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        let counts = e.present(&rates, 2000.0, true);
        assert!(counts.iter().sum::<u32>() > 0, "network must spike to learn");
        let after_active: f64 =
            (0..8).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        assert!(
            after_active > before_active,
            "active synapses should potentiate: {before_active} -> {after_active}"
        );
        assert!(e.synapses().check_invariants());
    }

    #[test]
    fn deterministic_rule_depresses_silent_synapses() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 2).with_rule(RuleKind::Deterministic);
        c.v_spike = 2.0;
        c.theta_plus = 0.0;
        let mut e = WtaEngine::new(c, &device, 3);
        let mut rates = vec![0.0; 16];
        for r in rates.iter_mut().take(8) {
            *r = 150.0;
        }
        let before_silent: f64 =
            (8..16).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        let counts = e.present(&rates, 2000.0, true);
        assert!(counts.iter().sum::<u32>() > 0);
        let after_silent: f64 =
            (8..16).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        assert!(
            after_silent < before_silent,
            "silent synapses should depress under the baseline rule"
        );
    }

    #[test]
    fn inference_never_changes_conductances() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        let mut e = WtaEngine::new(c, &device, 9);
        let before = e.synapses().as_flat().to_vec();
        let _ = e.present(&strong_rates(16), 500.0, false);
        assert_eq!(e.synapses().as_flat(), &before[..]);
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let run = |seed: u64| {
            let device = Device::new(DeviceConfig::serial());
            let mut c = cfg(16, 4);
            c.v_spike = 2.0;
            let mut e = WtaEngine::new(c, &device, seed);
            let counts = e.present(&strong_rates(16), 300.0, true);
            (counts, e.synapses().as_flat().to_vec())
        };
        let (c1, g1) = run(5);
        let (c2, g2) = run(5);
        let (c3, g3) = run(6);
        assert_eq!(c1, c2);
        assert_eq!(g1, g2);
        assert!(c1 != c3 || g1 != g3, "different seeds should diverge");
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // 256 × 32 synapses exceed the device's inline threshold, so the
        // STDP kernels genuinely run on the pool at workers > 1.
        let run = |workers: usize| {
            let device = Device::new(DeviceConfig::default().with_workers(workers));
            let mut c = cfg(256, 32);
            c.v_spike = 1.0;
            let mut e = WtaEngine::new(c, &device, 11);
            let counts = e.present(&strong_rates(256), 300.0, true);
            (counts, e.synapses().as_flat().to_vec())
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
    }

    #[test]
    fn wta_inhibition_limits_simultaneous_winners() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 8);
        c.v_spike = 3.0;
        c.t_inh_ms = 50.0;
        c.theta_plus = 0.0;
        let mut e = WtaEngine::new(c, &device, 2);
        e.record_raster(true);
        let _ = e.present(&strong_rates(16), 200.0, false);
        let raster = e.take_raster().unwrap();
        // Group spikes by time: after the first spike, inhibition must keep
        // the other neurons silent for t_inh.
        let events = raster.events();
        assert!(!events.is_empty());
        // All spikes in the first step are simultaneous winners; every
        // other neuron must stay silent for the whole inhibition window.
        let t0 = events[0].0;
        let winners: std::collections::HashSet<u32> =
            events.iter().take_while(|&&(t, _)| t == t0).map(|&(_, n)| n).collect();
        for &(t, n) in events {
            if t > t0 && t < t0 + 50.0 {
                assert!(
                    winners.contains(&n),
                    "non-winner {n} spiked at {t} inside the inhibition window"
                );
            }
        }
    }

    #[test]
    fn reset_transients_preserves_learning_state() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        let mut e = WtaEngine::new(c, &device, 7);
        let _ = e.present(&strong_rates(16), 300.0, true);
        let g = e.synapses().as_flat().to_vec();
        let theta = e.thetas();
        e.reset_transients();
        assert_eq!(e.synapses().as_flat(), &g[..]);
        assert_eq!(e.thetas(), theta);
    }

    #[test]
    fn homeostasis_raises_thresholds_of_active_neurons() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        c.theta_plus = 0.1;
        let mut e = WtaEngine::new(c, &device, 4);
        let counts = e.present(&strong_rates(16), 500.0, true);
        let thetas = e.thetas();
        for (j, (&count, &theta)) in counts.iter().zip(&thetas).enumerate() {
            if count > 0 {
                assert!(theta > 0.0, "spiking neuron {j} should have raised threshold");
            }
        }
    }

    #[test]
    fn rate_vector_length_is_checked() {
        let device = Device::new(DeviceConfig::serial());
        let mut e = WtaEngine::new(cfg(16, 4), &device, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.present(&[1.0; 8], 10.0, false)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn weight_normalization_hits_target_and_stays_on_grid() {
        let device = Device::new(DeviceConfig::serial());
        for preset in [Preset::FullPrecision, Preset::Bit8] {
            let c = NetworkConfig::from_preset(preset, 32, 4);
            let mut e = WtaEngine::new(c, &device, 3);
            let target = 10.0;
            e.normalize_receptive_fields(target);
            assert!(e.synapses().check_invariants(), "{preset:?}");
            for j in 0..4 {
                let sum: f64 = e.synapses().row(j).iter().sum();
                // Fixed-point rows land within one LSB per synapse of the
                // target; float rows are exact.
                let tol = match preset {
                    Preset::Bit8 => 32.0 / 128.0,
                    _ => 1e-9,
                };
                assert!((sum - target).abs() <= tol, "{preset:?}: row {j} sums to {sum}");
            }
        }
    }

    #[test]
    fn potential_trace_records_every_step() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        let mut e = WtaEngine::new(c.clone(), &device, 1);
        e.trace_potential(Some(2));
        let _ = e.present(&strong_rates(16), 50.0, false);
        let trace = e.take_potential_trace();
        assert_eq!(trace.len(), 100); // 50 ms at 0.5 ms steps
        assert!(trace.iter().all(|&(_, v)| v.is_finite()));
        // Times strictly increase by dt.
        for pair in trace.windows(2) {
            assert!((pair[1].0 - pair[0].0 - c.dt_ms).abs() < 1e-9);
        }
        // Stopping the trace clears and stops recording.
        e.trace_potential(None);
        let _ = e.present(&strong_rates(16), 10.0, false);
        assert!(e.take_potential_trace().is_empty());
    }

    #[test]
    fn explicit_inhibitory_layer_suppresses_activity() {
        use crate::config::InhibitionMode;
        // A partner layer that can fire suppresses far more activity than
        // one that never reaches threshold (w = 0 ⇒ no inhibition at all).
        let run = |w_exc_to_inh: f64| {
            let device = Device::new(DeviceConfig::serial());
            let mut c = cfg(16, 8);
            c.v_spike = 3.0;
            c.t_inh_ms = 50.0;
            c.theta_plus = 0.0;
            c.inhibition = InhibitionMode::Explicit { w_exc_to_inh };
            let mut e = WtaEngine::new(c, &device, 2);
            e.present(&strong_rates(16), 300.0, false).iter().sum::<u32>()
        };
        let uninhibited = run(0.0);
        let inhibited = run(20.0);
        assert!(inhibited > 0, "explicit mode must still spike");
        assert!(
            inhibited * 2 < uninhibited,
            "partner-gated inhibition should suppress most spikes: {inhibited} vs {uninhibited}"
        );
    }

    #[test]
    fn explicit_mode_learns_like_implicit() {
        use crate::config::InhibitionMode;
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 2);
        c.v_spike = 2.0;
        c.theta_plus = 0.0;
        c.inhibition = InhibitionMode::Explicit { w_exc_to_inh: 20.0 };
        let mut e = WtaEngine::new(c, &device, 3);
        let mut rates = vec![0.0; 16];
        for r in rates.iter_mut().take(8) {
            *r = 150.0;
        }
        let before: f64 = (0..8).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        let counts = e.present(&rates, 2000.0, true);
        assert!(counts.iter().sum::<u32>() > 0);
        let after: f64 = (0..8).map(|i| e.synapses().get(i, 0) + e.synapses().get(i, 1)).sum();
        assert!(after > before, "active synapses should potentiate: {before} -> {after}");
    }

    #[test]
    fn izhikevich_layer_spikes_and_learns() {
        use crate::config::NeuronModelKind;
        use crate::neuron::IzhikevichParams;
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.neuron = NeuronModelKind::Izhikevich(IzhikevichParams::regular_spiking());
        c.v_spike = 4.0; // Izhikevich needs ~10 units of drive
        let mut e = WtaEngine::new(c, &device, 5);
        let counts = e.present(&strong_rates(16), 500.0, true);
        assert!(counts.iter().sum::<u32>() > 0, "Izhikevich layer must spike");
        assert!(e.synapses().check_invariants());
    }

    #[test]
    fn adex_layer_spikes() {
        use crate::config::NeuronModelKind;
        use crate::neuron::AdexParams;
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.neuron = NeuronModelKind::Adex(AdexParams::default());
        c.v_spike = 250.0; // AdEx currents are in pA
        let mut e = WtaEngine::new(c, &device, 5);
        let counts = e.present(&strong_rates(16), 500.0, false);
        assert!(counts.iter().sum::<u32>() > 0, "AdEx layer must spike");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.dt_ms = -1.0;
        assert!(WtaEngine::try_new(c, &device, 0).is_err());
    }

    #[test]
    fn lazy_execution_is_the_default() {
        let device = Device::new(DeviceConfig::serial());
        let e = WtaEngine::new(cfg(16, 4), &device, 1);
        assert_eq!(e.plasticity_execution(), PlasticityExecution::Lazy);
        let e = WtaEngine::new(cfg(16, 4).with_plasticity(PlasticityExecution::Eager), &device, 1);
        assert_eq!(e.plasticity_execution(), PlasticityExecution::Eager);
    }

    /// The heart of the lazy-plasticity contract: for the same seed, the
    /// deferred path must reproduce the eager path bit for bit — counts,
    /// conductances, thresholds and the full spike raster — for every
    /// rule under both full and low precision.
    #[test]
    fn lazy_matches_eager_bit_for_bit() {
        let device = Device::new(DeviceConfig::serial());
        for preset in [Preset::FullPrecision, Preset::Bit8, Preset::Bit2] {
            for rule in [RuleKind::Stochastic, RuleKind::Deterministic] {
                let run = |exec: PlasticityExecution| {
                    let mut c = NetworkConfig::from_preset(preset, 24, 6)
                        .with_rule(rule)
                        .with_plasticity(exec);
                    c.v_spike = 2.0;
                    let mut e = WtaEngine::new(c, &device, 17);
                    e.record_raster(true);
                    let mut rates = vec![0.0; 24];
                    for (i, r) in rates.iter_mut().enumerate() {
                        *r = if i % 3 == 0 { 120.0 } else { 15.0 };
                    }
                    let counts = e.present(&rates, 500.0, true);
                    (counts, e.synapses().as_flat().to_vec(), e.thetas(), e.take_raster())
                };
                let eager = run(PlasticityExecution::Eager);
                let lazy = run(PlasticityExecution::Lazy);
                assert_eq!(eager, lazy, "{preset:?}/{rule:?} diverged");
            }
        }
    }

    #[test]
    fn lazy_matches_eager_on_the_worker_pool() {
        // 256 × 32 synapses exceed the inline threshold, so the settle
        // gather kernels genuinely run on the pool.
        let run = |workers: usize, exec: PlasticityExecution| {
            let device = Device::new(DeviceConfig::default().with_workers(workers));
            let mut c = cfg(256, 32).with_plasticity(exec);
            c.v_spike = 1.0;
            let mut e = WtaEngine::new(c, &device, 11);
            let counts = e.present(&strong_rates(256), 300.0, true);
            (counts, e.synapses().as_flat().to_vec())
        };
        let eager_serial = run(1, PlasticityExecution::Eager);
        assert_eq!(eager_serial, run(1, PlasticityExecution::Lazy));
        assert_eq!(eager_serial, run(4, PlasticityExecution::Lazy));
    }

    #[test]
    fn lazy_run_reports_deferred_work_and_flushes() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        let mut e = WtaEngine::new(c, &device, 1);
        let counts = e.present(&strong_rates(16), 300.0, true);
        assert!(counts.iter().sum::<u32>() > 0, "network must spike");
        // The matrix is settled at present() exit; a second flush is a no-op.
        let g = e.synapses().as_flat().to_vec();
        e.flush_plasticity();
        assert_eq!(e.synapses().as_flat(), &g[..]);
        let report = device.profile();
        let deferred = report.counter("stdp_updates_deferred").unwrap_or(0);
        let skipped = report.counter("stdp_dense_items_skipped").unwrap_or(0);
        assert!(deferred > 0, "spiking plastic run must defer updates");
        assert!(skipped >= deferred, "every deferral skips a dense scan");
        assert!(report.counter("stdp_flush_rows").unwrap_or(0) > 0);
    }

    #[test]
    fn sparse_delivery_is_the_default() {
        let device = Device::new(DeviceConfig::serial());
        let e = WtaEngine::new(cfg(16, 4), &device, 1);
        assert_eq!(e.current_delivery(), CurrentDelivery::Sparse);
        assert!(e.transposed.view().is_some(), "sparse mode keeps a transposed view");
        let e = WtaEngine::new(cfg(16, 4).with_delivery(CurrentDelivery::Dense), &device, 1);
        assert_eq!(e.current_delivery(), CurrentDelivery::Dense);
        assert!(e.transposed.view().is_none(), "dense mode carries no mirror");
    }

    /// The heart of the sparse-delivery contract: for the same seed, the
    /// active-list path must reproduce the dense full-row scan bit for bit
    /// — counts, conductances, thresholds and the full raster — under both
    /// rules and both inhibition modes.
    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        use crate::config::InhibitionMode;
        let device = Device::new(DeviceConfig::serial());
        for rule in [RuleKind::Stochastic, RuleKind::Deterministic] {
            for inhibition in
                [InhibitionMode::Implicit, InhibitionMode::Explicit { w_exc_to_inh: 20.0 }]
            {
                let run = |delivery: CurrentDelivery| {
                    let mut c = NetworkConfig::from_preset(Preset::Bit8, 24, 6)
                        .with_rule(rule)
                        .with_delivery(delivery);
                    c.v_spike = 2.0;
                    c.inhibition = inhibition;
                    let mut e = WtaEngine::new(c, &device, 17);
                    e.record_raster(true);
                    let mut rates = vec![0.0; 24];
                    for (i, r) in rates.iter_mut().enumerate() {
                        *r = if i % 3 == 0 { 120.0 } else { 15.0 };
                    }
                    let counts = e.present(&rates, 500.0, true);
                    (counts, e.synapses().as_flat().to_vec(), e.thetas(), e.take_raster())
                };
                let dense = run(CurrentDelivery::Dense);
                let sparse = run(CurrentDelivery::Sparse);
                assert_eq!(dense, sparse, "{rule:?}/{inhibition:?} diverged");
            }
        }
    }

    #[test]
    fn sparse_matches_dense_on_the_worker_pool() {
        // 256 × 32 synapses exceed the inline threshold, so the fused
        // delivery kernel genuinely runs (and compacts) on the pool.
        let run = |workers: usize, delivery: CurrentDelivery| {
            let device = Device::new(DeviceConfig::default().with_workers(workers));
            let mut c = cfg(256, 32).with_delivery(delivery);
            c.v_spike = 1.0;
            let mut e = WtaEngine::new(c, &device, 11);
            let counts = e.present(&strong_rates(256), 300.0, true);
            (counts, e.synapses().as_flat().to_vec())
        };
        let dense_serial = run(1, CurrentDelivery::Dense);
        assert_eq!(dense_serial, run(1, CurrentDelivery::Sparse));
        assert_eq!(dense_serial, run(4, CurrentDelivery::Sparse));
        assert_eq!(dense_serial, run(4, CurrentDelivery::Dense));
    }

    #[test]
    fn transposed_view_stays_coherent_through_learning() {
        let device = Device::new(DeviceConfig::serial());
        for exec in [PlasticityExecution::Lazy, PlasticityExecution::Eager] {
            let mut c = cfg(16, 4).with_plasticity(exec);
            c.v_spike = 2.0;
            let mut e = WtaEngine::new(c, &device, 7);
            let _ = e.present(&strong_rates(16), 300.0, true);
            e.normalize_receptive_fields(8.0);
            let gt = e.transposed.view().expect("sparse default keeps the view");
            assert!(gt.is_coherent(e.synapses.get()), "{exec:?} left the mirror stale");
        }
    }

    #[test]
    fn sparse_delivery_reports_active_list_metrics() {
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(16, 4);
        c.v_spike = 2.0;
        let mut e = WtaEngine::new(c, &device, 1);
        let _ = e.present(&strong_rates(16), 300.0, true);
        let report = device.profile();
        assert!(report.counter("delivery_active_spikes").unwrap_or(0) > 0);
        assert!(report.counter("delivery_dense_items_skipped").unwrap_or(0) > 0);
        assert!(report.counter("transpose_cells_refreshed").unwrap_or(0) > 0);
        let gauge = report.gauge("active_fraction").expect("gauge recorded every step");
        assert!(gauge.samples >= 600, "one sample per step");
        assert!(gauge.mean() > 0.0 && gauge.mean() <= 1.0);
        assert!(report.get("deliver_integrate_sparse").is_some());
        assert!(report.get("encode_compact").is_some());
    }

    /// A deterministic little train set exercising empty, singleton and
    /// multi-spike steps.
    fn test_trains(n_inputs: usize, steps: usize, dt_ms: f64) -> SpikeTrains {
        let mut trains = SpikeTrains::new(n_inputs, dt_ms);
        for s in 0..steps {
            let active: Vec<u32> = (0..n_inputs as u32).filter(|&i| (i as usize + s) % 3 == 0).collect();
            trains.push_step(&active);
        }
        trains
    }

    #[test]
    fn frozen_replica_matches_the_source_engine() {
        // Train a little, snapshot, and replay the same precomputed trains
        // on the source engine and on replicas in both delivery modes and
        // on a pooled device: all must agree bit for bit, and the source's
        // training state must be untouched by the frozen presentation.
        let device = Device::new(DeviceConfig::serial());
        let mut c = cfg(24, 6);
        c.v_spike = 2.0;
        let mut source = WtaEngine::new(c.clone(), &device, 17);
        let _ = source.present(&strong_rates(24), 300.0, true);
        let snap = source.snapshot();
        let trains = test_trains(24, 400, c.dt_ms);
        let time_before = source.time_ms();
        let expected = source.present_frozen(&trains);
        assert_eq!(source.time_ms(), time_before, "frozen probe must not advance the clock");
        assert!(expected.iter().sum::<u32>() > 0, "trains must drive spikes");

        let mut sparse = WtaEngine::replica(c.clone(), &device, 999, &snap).unwrap();
        assert!(sparse.is_frozen());
        assert_eq!(sparse.present_frozen(&trains), expected, "sparse replica diverged");
        // Purity: a second identical presentation reproduces the counts.
        assert_eq!(sparse.present_frozen(&trains), expected, "frozen replay diverged");

        let mut dense = WtaEngine::replica(
            c.clone().with_delivery(CurrentDelivery::Dense),
            &device,
            999,
            &snap,
        )
        .unwrap();
        assert_eq!(dense.present_frozen(&trains), expected, "dense replica diverged");

        let pooled = Device::new(DeviceConfig::default().with_workers(4));
        let mut on_pool = WtaEngine::replica(c, &pooled, 7, &snap).unwrap();
        assert_eq!(on_pool.present_frozen(&trains), expected, "pooled replica diverged");
    }

    #[test]
    #[should_panic(expected = "cannot learn")]
    fn frozen_replica_rejects_plastic_presentation() {
        let device = Device::new(DeviceConfig::serial());
        let c = cfg(16, 4);
        let source = WtaEngine::new(c.clone(), &device, 1);
        let snap = source.snapshot();
        let mut replica = WtaEngine::replica(c, &device, 1, &snap).unwrap();
        let _ = replica.present(&strong_rates(16), 10.0, true);
    }

    #[test]
    #[should_panic(expected = "population mismatch")]
    fn replica_shape_mismatch_is_rejected() {
        let device = Device::new(DeviceConfig::serial());
        let source = WtaEngine::new(cfg(16, 4), &device, 1);
        let snap = source.snapshot();
        let _ = WtaEngine::replica(cfg(16, 8), &device, 1, &snap);
    }

    #[test]
    fn compaction_produces_the_ascending_active_list() {
        // Saturating rates make every input spike every step; the compacted
        // list must then be exactly 0..n ascending at any worker count.
        for workers in [1, 4] {
            let device = Device::new(DeviceConfig::default().with_workers(workers));
            let mut c = cfg(4097, 4);
            c.v_spike = 0.0; // keep the network silent; we only test encoding
            let mut e = WtaEngine::new(c, &device, 3);
            let _ = e.present(&vec![2000.0; 4097], 1.0, false);
            assert_eq!(e.active_inputs, 4097, "workers={workers}");
            let expect: Vec<u32> = (0..4097).collect();
            assert_eq!(e.spike_list.as_slice(), &expect[..], "workers={workers}");
        }
    }
}
