//! Property tests on the core learning data structures: the synapse matrix
//! never leaves its grid or bounds under any update sequence, the
//! plasticity rules respect their probability semantics, and the engine's
//! observable state stays sane across random stimuli.

use gpu_device::{Device, DeviceConfig, Philox4x32};
use proptest::prelude::*;
use qformat::Rounding;
use snn_core::config::{NetworkConfig, PlasticityExecution, Preset, RuleKind, StochasticParams};
use snn_core::sim::WtaEngine;
use snn_core::stdp::{DeterministicStdp, PlasticityRule, StochasticStdp, UpdateKind};
use snn_core::synapse::{PlasticityLedger, SynapseMatrix, TransposedConductances};

fn arb_preset() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::Bit2),
        Just(Preset::Bit4),
        Just(Preset::Bit8),
        Just(Preset::Bit16),
        Just(Preset::FullPrecision),
    ]
}

fn arb_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Truncate),
        Just(Rounding::Nearest),
        Just(Rounding::Stochastic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever sequence of potentiations/depressions with whatever
    /// rounding draws is applied, every conductance stays in bounds and on
    /// the fixed-point grid.
    #[test]
    fn synapse_matrix_invariants_under_random_updates(
        preset in arb_preset(),
        rounding in arb_rounding(),
        seed in 0u64..500,
        ops in prop::collection::vec((0usize..64, prop::bool::ANY, 0.0f64..1.0), 0..400),
    ) {
        let cfg = NetworkConfig::from_preset(preset, 8, 8).with_rounding(rounding);
        let mut m = SynapseMatrix::new_random(&cfg, seed);
        for (idx, pot, u) in ops {
            let (pre, post) = (idx % 8, idx / 8);
            let kind = if pot { UpdateKind::Potentiate } else { UpdateKind::Depress };
            m.apply(pre, post, kind, u);
        }
        prop_assert!(m.check_invariants(), "invariants violated for {preset:?}/{rounding:?}");
    }

    /// Potentiation never decreases a conductance; depression never
    /// increases one.
    #[test]
    fn update_directions_are_monotone(
        preset in arb_preset(),
        rounding in arb_rounding(),
        g_frac in 0.0f64..1.0,
        u in 0.0f64..1.0,
    ) {
        let cfg = NetworkConfig::from_preset(preset, 4, 4).with_rounding(rounding);
        let m = SynapseMatrix::new_random(&cfg, 1);
        let (lo, hi) = m.bounds();
        // Snap the starting point onto the representable grid first.
        let g0 = m.updated_value(lo + g_frac * (hi - lo), UpdateKind::Potentiate, 1.0 - f64::EPSILON)
            .min(hi);
        let up = m.updated_value(g0, UpdateKind::Potentiate, u);
        let down = m.updated_value(g0, UpdateKind::Depress, u);
        prop_assert!(up >= g0 - 1e-12, "potentiation decreased {g0} -> {up}");
        prop_assert!(down <= g0 + 1e-12, "depression increased {g0} -> {down}");
    }

    /// The stochastic rule's acceptance is monotone in the draw: if a
    /// pairing is accepted at draw `u`, it is accepted at any smaller draw
    /// (with the same or stronger outcome ordering pot-before-dep).
    #[test]
    fn stochastic_acceptance_monotone_in_draw(
        dt in 0.0f64..200.0,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let rule = StochasticStdp::new(StochasticParams {
            gamma_pot: 0.7,
            tau_pot_ms: 30.0,
            gamma_dep: 0.5,
            tau_dep_ms: 10.0,
        });
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        if rule.on_post_spike(dt, hi) == Some(UpdateKind::Potentiate) {
            prop_assert_eq!(rule.on_post_spike(dt, lo), Some(UpdateKind::Potentiate));
        }
        if rule.on_post_spike(dt, lo).is_none() {
            prop_assert!(rule.on_post_spike(dt, hi).is_none());
        }
    }

    /// Presentations return one count per neuron, never panic for valid
    /// rates, and leave conductances on the grid.
    #[test]
    fn engine_presentations_stay_sane(
        preset in arb_preset(),
        rule in prop_oneof![Just(RuleKind::Deterministic), Just(RuleKind::Stochastic)],
        seed in 0u64..100,
        rate in 0.0f64..120.0,
    ) {
        let device = Device::new(DeviceConfig::serial());
        let cfg = NetworkConfig::from_preset(preset, 16, 4).with_rule(rule);
        let mut engine = WtaEngine::new(cfg, &device, seed);
        let counts = engine.present(&[rate; 16], 100.0, true);
        prop_assert_eq!(counts.len(), 4);
        prop_assert!(engine.synapses().check_invariants());
    }

    /// The lazy-plasticity settle contract, matrix level: for any random
    /// post-spike sequence, lazily settled conductances equal the values an
    /// eager per-event accumulation produces — bit for bit, since both draw
    /// from the same `(synapse, step)`-keyed Philox streams — and the
    /// matrix honors its grid/bounds invariants after *every* settle.
    #[test]
    fn lazy_settle_equals_eager_accumulation(
        preset in arb_preset(),
        rounding in arb_rounding(),
        rule_kind in prop_oneof![Just(RuleKind::Deterministic), Just(RuleKind::Stochastic)],
        seed in 0u64..500,
        raw_events in prop::collection::vec((0usize..6, 1u64..40), 1..30),
        // Offsets map to `last_pre = offset - 5.0` ∈ [-5, 0): always at or
        // before the earliest possible post event (step 1 → t = dt), since
        // the rule's `P_pot`/`P_dep` are only defined for Δt ≥ 0 — the
        // engine upholds that via its `last_pre ≤ t` invariant.
        pre_offsets in prop::collection::vec(0.0f64..5.0, 12),
    ) {
        const N_PRE: usize = 12;
        const N_POST: usize = 6;
        let cfg = NetworkConfig::from_preset(preset, N_PRE, N_POST)
            .with_rule(rule_kind)
            .with_rounding(rounding);
        let rule: Box<dyn PlasticityRule> = match rule_kind {
            RuleKind::Deterministic => Box::new(DeterministicStdp::new(cfg.ltp_window_ms)),
            RuleKind::Stochastic => Box::new(StochasticStdp::new(cfg.stochastic)),
        };
        let philox = Philox4x32::new(seed ^ 0xabcd);
        let dt_ms = cfg.dt_ms;
        // Sort sparse (row, step) pairs into a valid ascending spike
        // sequence; last_pre stays fixed, as it does between pre spikes.
        let mut events: Vec<(usize, u64)> = raw_events;
        events.sort_by_key(|&(_, step)| step);
        let last_pre: Vec<f64> = pre_offsets.iter().map(|&o| o - 5.0).collect();

        // Eager: apply every event the moment it happens.
        let mut eager = SynapseMatrix::new_random(&cfg, seed);
        let ctx = eager.update_ctx();
        for &(j, step) in &events {
            let t_ms = step as f64 * dt_ms;
            for i in 0..N_PRE {
                let syn = j * N_PRE + i;
                let stream = snn_core::streams::SYNAPSE | syn as u64;
                let u_accept = philox.uniform(stream, step);
                if let Some(kind) = rule.on_post_spike(t_ms - last_pre[i], u_accept) {
                    let u_round = f64::from(philox.at(stream, step, 2))
                        / (u64::from(u32::MAX) + 1) as f64;
                    let g = &mut eager.as_flat_mut()[syn];
                    *g = ctx.updated(*g, kind, u_round);
                }
            }
        }

        // Lazy: record everything, settle in two waves (a partial touch of
        // the even columns, then the full flush), checking invariants
        // after every settle.
        let mut lazy = SynapseMatrix::new_random(&cfg, seed);
        let mut ledger = PlasticityLedger::new(N_PRE, N_POST);
        for &(j, step) in &events {
            ledger.record_post(j, step, step as f64 * dt_ms);
        }
        {
            let sctx = lazy.settle_ctx(&*rule, philox);
            let (evs, applied, active) = ledger.split();
            for &j in active {
                let j = j as usize;
                for i in (0..N_PRE).step_by(2) {
                    let syn = j * N_PRE + i;
                    let mut g = lazy.as_flat()[syn];
                    sctx.settle_synapse(&mut g, &mut applied[syn], &evs[j], j, i, last_pre[i]);
                    lazy.as_flat_mut()[syn] = g;
                }
            }
        }
        prop_assert!(lazy.check_invariants(), "invariants broken after partial settle");
        lazy.settle_all(&mut ledger, &*rule, philox, &last_pre);
        prop_assert!(ledger.is_idle());
        prop_assert!(lazy.check_invariants(), "invariants broken after full settle");
        prop_assert_eq!(eager.as_flat(), lazy.as_flat(),
            "lazy settle diverged for {:?}/{:?}/{:?}", preset, rule_kind, rounding);
    }

    /// The lazy-plasticity contract, engine level: eager and lazy execution
    /// produce bit-identical conductances and spike counts for random
    /// presets, rules, seeds and stimuli.
    #[test]
    fn engine_lazy_equals_eager(
        preset in arb_preset(),
        rule in prop_oneof![Just(RuleKind::Deterministic), Just(RuleKind::Stochastic)],
        seed in 0u64..100,
        rate in 10.0f64..150.0,
    ) {
        let run = |exec: PlasticityExecution| {
            let device = Device::new(DeviceConfig::serial());
            let cfg = NetworkConfig::from_preset(preset, 16, 4)
                .with_rule(rule)
                .with_plasticity(exec);
            let mut engine = WtaEngine::new(cfg, &device, seed);
            let counts = engine.present(&[rate; 16], 150.0, true);
            (counts, engine.synapses().as_flat().to_vec(), engine.thetas())
        };
        prop_assert_eq!(run(PlasticityExecution::Eager), run(PlasticityExecution::Lazy));
    }
}

/// Non-proptest statistical check: engine input encoding matches the
/// requested Poisson rate (via the observable downstream effect — a single
/// always-on synapse row and the analytic LIF response would be
/// over-coupled, so we check the raster of a pass-through network).
#[test]
fn empirical_acceptance_of_rule_matches_probability_under_philox() {
    let rule = StochasticStdp::new(StochasticParams {
        gamma_pot: 0.6,
        tau_pot_ms: 25.0,
        gamma_dep: 0.4,
        tau_dep_ms: 10.0,
    });
    let philox = Philox4x32::new(99);
    let dt = 18.0;
    let n = 200_000u64;
    let accepted = (0..n)
        .filter(|&i| rule.on_post_spike(dt, philox.uniform(0, i)).is_some())
        .count();
    let rate = accepted as f64 / n as f64;
    let expect = (rule.p_pot(dt) + rule.p_dep(dt)).min(1.0);
    assert!(
        (rate - expect).abs() < 5e-3,
        "acceptance {rate} vs expected {expect} under Philox draws"
    );
}

// ---------------------------------------------------------------------------
// Transposed-view coherence (the `transposed-coherence` snn-lint rule,
// checked dynamically): the engine's mirror maintenance reduced to its
// operation algebra.
// ---------------------------------------------------------------------------

/// One mutate-then-refresh pair, mirroring an actual engine mutation site:
/// full-matrix normalization (`refresh(None, None)`), a row-rectangle
/// learning pass (`refresh(Some(rows), None)` — flush/eager post-STDP), a
/// column pass (`refresh(None, Some(cols))`), the touch-pass rectangle
/// (`refresh(Some(rows), Some(cols))`), and `set_synapses`' from-scratch
/// rebuild.
#[derive(Debug, Clone)]
enum MirrorOp {
    FullPass,
    RowPass(Vec<u8>),
    ColPass(Vec<u8>),
    RectPass(Vec<u8>, Vec<u8>),
    Rebuild,
}

fn arb_mirror_op() -> impl Strategy<Value = MirrorOp> {
    let idx = prop::collection::vec(any::<u8>(), 1..5);
    prop_oneof![
        Just(MirrorOp::FullPass),
        idx.clone().prop_map(MirrorOp::RowPass),
        idx.clone().prop_map(MirrorOp::ColPass),
        (idx.clone(), idx).prop_map(|(r, c)| MirrorOp::RectPass(r, c)),
        Just(MirrorOp::Rebuild),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of the engine's mutate→refresh pairs keeps the
    /// transposed mirror bit-identical to a from-scratch rebuild. This is
    /// the dynamic complement of the static `transposed-coherence` lint:
    /// the lint proves every mutator *calls* the coherence API, this test
    /// proves the API, applied to the rectangle that was mutated, is
    /// *sufficient*.
    #[test]
    fn transposed_view_coherent_under_engine_op_algebra(
        seed in 0u64..512,
        ops in prop::collection::vec(arb_mirror_op(), 1..16),
        vals in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 8, 5);
        let mut m = SynapseMatrix::new_random(&cfg, seed);
        let (n_pre, n_post) = (m.n_pre(), m.n_post());
        let mut view = TransposedConductances::new(&m);
        prop_assert!(view.is_coherent(&m));

        let mut vi = 0usize;
        let mut next = || {
            vi += 1;
            vals[(vi - 1) % vals.len()]
        };
        for op in &ops {
            match op {
                MirrorOp::FullPass => {
                    for g in m.as_flat_mut() {
                        *g = next();
                    }
                    view.refresh(&m, None, None);
                }
                MirrorOp::RowPass(rows) => {
                    let rows: Vec<u32> =
                        rows.iter().map(|&r| u32::from(r) % n_post as u32).collect();
                    for &j in &rows {
                        for g in m.row_mut(j as usize) {
                            *g = next();
                        }
                    }
                    view.refresh(&m, Some(&rows), None);
                }
                MirrorOp::ColPass(cols) => {
                    let cols: Vec<u32> =
                        cols.iter().map(|&c| u32::from(c) % n_pre as u32).collect();
                    for &i in &cols {
                        for j in 0..n_post {
                            m.as_flat_mut()[j * n_pre + i as usize] = next();
                        }
                    }
                    view.refresh(&m, None, Some(&cols));
                }
                MirrorOp::RectPass(rows, cols) => {
                    let rows: Vec<u32> =
                        rows.iter().map(|&r| u32::from(r) % n_post as u32).collect();
                    let cols: Vec<u32> =
                        cols.iter().map(|&c| u32::from(c) % n_pre as u32).collect();
                    for &j in &rows {
                        for &i in &cols {
                            m.as_flat_mut()[j as usize * n_pre + i as usize] = next();
                        }
                    }
                    view.refresh(&m, Some(&rows), Some(&cols));
                }
                MirrorOp::Rebuild => {
                    for g in m.as_flat_mut() {
                        *g = next();
                    }
                    view = TransposedConductances::new(&m);
                }
            }
            prop_assert!(view.is_coherent(&m), "mirror diverged after {:?}", op);
        }

        // Bit-exact equality with a from-scratch rebuild, column by column.
        let rebuilt = TransposedConductances::new(&m);
        for i in 0..n_pre {
            prop_assert_eq!(view.col(i), rebuilt.col(i));
        }
    }

    /// Negative control: a mutation *without* the matching refresh is
    /// visible to `is_coherent` (so the assertions above have teeth).
    #[test]
    fn stale_mirror_is_detected(seed in 0u64..512, pre in 0usize..8, post in 0usize..5) {
        let cfg = NetworkConfig::from_preset(Preset::FullPrecision, 8, 5);
        let mut m = SynapseMatrix::new_random(&cfg, seed);
        let view = TransposedConductances::new(&m);
        let cell = &mut m.as_flat_mut()[post * 8 + pre];
        *cell = if *cell > 0.5 { *cell - 0.25 } else { *cell + 0.25 };
        prop_assert!(!view.is_coherent(&m));
    }
}
