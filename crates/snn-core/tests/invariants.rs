//! Property tests on the core learning data structures: the synapse matrix
//! never leaves its grid or bounds under any update sequence, the
//! plasticity rules respect their probability semantics, and the engine's
//! observable state stays sane across random stimuli.

use gpu_device::{Device, DeviceConfig, Philox4x32};
use proptest::prelude::*;
use qformat::Rounding;
use snn_core::config::{NetworkConfig, Preset, RuleKind, StochasticParams};
use snn_core::sim::WtaEngine;
use snn_core::stdp::{PlasticityRule, StochasticStdp, UpdateKind};
use snn_core::synapse::SynapseMatrix;

fn arb_preset() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::Bit2),
        Just(Preset::Bit4),
        Just(Preset::Bit8),
        Just(Preset::Bit16),
        Just(Preset::FullPrecision),
    ]
}

fn arb_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Truncate),
        Just(Rounding::Nearest),
        Just(Rounding::Stochastic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever sequence of potentiations/depressions with whatever
    /// rounding draws is applied, every conductance stays in bounds and on
    /// the fixed-point grid.
    #[test]
    fn synapse_matrix_invariants_under_random_updates(
        preset in arb_preset(),
        rounding in arb_rounding(),
        seed in 0u64..500,
        ops in prop::collection::vec((0usize..64, prop::bool::ANY, 0.0f64..1.0), 0..400),
    ) {
        let cfg = NetworkConfig::from_preset(preset, 8, 8).with_rounding(rounding);
        let mut m = SynapseMatrix::new_random(&cfg, seed);
        for (idx, pot, u) in ops {
            let (pre, post) = (idx % 8, idx / 8);
            let kind = if pot { UpdateKind::Potentiate } else { UpdateKind::Depress };
            m.apply(pre, post, kind, u);
        }
        prop_assert!(m.check_invariants(), "invariants violated for {preset:?}/{rounding:?}");
    }

    /// Potentiation never decreases a conductance; depression never
    /// increases one.
    #[test]
    fn update_directions_are_monotone(
        preset in arb_preset(),
        rounding in arb_rounding(),
        g_frac in 0.0f64..1.0,
        u in 0.0f64..1.0,
    ) {
        let cfg = NetworkConfig::from_preset(preset, 4, 4).with_rounding(rounding);
        let m = SynapseMatrix::new_random(&cfg, 1);
        let (lo, hi) = m.bounds();
        // Snap the starting point onto the representable grid first.
        let g0 = m.updated_value(lo + g_frac * (hi - lo), UpdateKind::Potentiate, 1.0 - f64::EPSILON)
            .min(hi);
        let up = m.updated_value(g0, UpdateKind::Potentiate, u);
        let down = m.updated_value(g0, UpdateKind::Depress, u);
        prop_assert!(up >= g0 - 1e-12, "potentiation decreased {g0} -> {up}");
        prop_assert!(down <= g0 + 1e-12, "depression increased {g0} -> {down}");
    }

    /// The stochastic rule's acceptance is monotone in the draw: if a
    /// pairing is accepted at draw `u`, it is accepted at any smaller draw
    /// (with the same or stronger outcome ordering pot-before-dep).
    #[test]
    fn stochastic_acceptance_monotone_in_draw(
        dt in 0.0f64..200.0,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let rule = StochasticStdp::new(StochasticParams {
            gamma_pot: 0.7,
            tau_pot_ms: 30.0,
            gamma_dep: 0.5,
            tau_dep_ms: 10.0,
        });
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        if rule.on_post_spike(dt, hi) == Some(UpdateKind::Potentiate) {
            prop_assert_eq!(rule.on_post_spike(dt, lo), Some(UpdateKind::Potentiate));
        }
        if rule.on_post_spike(dt, lo).is_none() {
            prop_assert!(rule.on_post_spike(dt, hi).is_none());
        }
    }

    /// Presentations return one count per neuron, never panic for valid
    /// rates, and leave conductances on the grid.
    #[test]
    fn engine_presentations_stay_sane(
        preset in arb_preset(),
        rule in prop_oneof![Just(RuleKind::Deterministic), Just(RuleKind::Stochastic)],
        seed in 0u64..100,
        rate in 0.0f64..120.0,
    ) {
        let device = Device::new(DeviceConfig::serial());
        let cfg = NetworkConfig::from_preset(preset, 16, 4).with_rule(rule);
        let mut engine = WtaEngine::new(cfg, &device, seed);
        let counts = engine.present(&[rate; 16], 100.0, true);
        prop_assert_eq!(counts.len(), 4);
        prop_assert!(engine.synapses().check_invariants());
    }
}

/// Non-proptest statistical check: engine input encoding matches the
/// requested Poisson rate (via the observable downstream effect — a single
/// always-on synapse row and the analytic LIF response would be
/// over-coupled, so we check the raster of a pass-through network).
#[test]
fn empirical_acceptance_of_rule_matches_probability_under_philox() {
    let rule = StochasticStdp::new(StochasticParams {
        gamma_pot: 0.6,
        tau_pot_ms: 25.0,
        gamma_dep: 0.4,
        tau_dep_ms: 10.0,
    });
    let philox = Philox4x32::new(99);
    let dt = 18.0;
    let n = 200_000u64;
    let accepted = (0..n)
        .filter(|&i| rule.on_post_spike(dt, philox.uniform(0, i)).is_some())
        .count();
    let rate = accepted as f64 / n as f64;
    let expect = (rule.p_pot(dt) + rule.p_dep(dt)).min(1.0);
    assert!(
        (rate - expect).abs() < 5e-3,
        "acceptance {rate} vs expected {expect} under Philox draws"
    );
}
