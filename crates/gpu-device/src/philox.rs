//! Philox4x32-10 counter-based random number generation.
//!
//! Philox is the generator family behind cuRAND's default device API. Being
//! counter-based, it has no sequential state: output block `i` of stream `s`
//! is a pure function `philox(key(seed, s), counter(i))`. That property is
//! what lets a GPU hand every thread its own reproducible stream, and it is
//! what makes our stochastic-STDP results independent of how kernel indices
//! are scheduled across workers.

/// The Philox4x32-10 block cipher: 10 rounds over a 128-bit counter with a
/// 64-bit key.
///
/// Constants follow Salmon et al., "Parallel random numbers: as easy as
/// 1, 2, 3" (SC'11), matching the cuRAND implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
}

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const ROUNDS: usize = 10;

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

impl Philox4x32 {
    /// Creates a generator keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Philox4x32 { key: [seed as u32, (seed >> 32) as u32] }
    }

    /// Encrypts one 128-bit counter block, producing four independent
    /// uniform `u32`s.
    #[must_use]
    pub fn block(&self, counter: [u32; 4]) -> [u32; 4] {
        let mut ctr = counter;
        let mut key = self.key;
        for _ in 0..ROUNDS {
            let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
            let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
            ctr = [
                hi1 ^ ctr[1] ^ key[0],
                lo1,
                hi0 ^ ctr[3] ^ key[1],
                lo0,
            ];
            key[0] = key[0].wrapping_add(PHILOX_W0);
            key[1] = key[1].wrapping_add(PHILOX_W1);
        }
        ctr
    }

    /// Returns the `word`-th `u32` (0..4) of the block addressed by
    /// (`stream`, `index`). This is the stateless kernel-side entry point.
    #[must_use]
    pub fn at(&self, stream: u64, index: u64, word: usize) -> u32 {
        debug_assert!(word < 4);
        let ctr = [
            index as u32,
            (index >> 32) as u32,
            stream as u32,
            (stream >> 32) as u32,
        ];
        self.block(ctr)[word]
    }

    /// A uniform draw in `[0, 1)` addressed by (`stream`, `index`).
    ///
    /// Uses all 32 bits of one output word: `u32 / 2^32`.
    #[must_use]
    pub fn uniform(&self, stream: u64, index: u64) -> f64 {
        f64::from(self.at(stream, index, 0)) / (u64::from(u32::MAX) + 1) as f64
    }

    /// A second independent uniform for the same (`stream`, `index`)
    /// address, drawn from a different output word.
    #[must_use]
    pub fn uniform2(&self, stream: u64, index: u64) -> f64 {
        f64::from(self.at(stream, index, 1)) / (u64::from(u32::MAX) + 1) as f64
    }

    /// Creates a sequential stream view over (`seed`, `stream`).
    #[must_use]
    pub fn stream(&self, stream: u64) -> PhiloxStream {
        PhiloxStream { gen: *self, stream, index: 0, cache: [0; 4], cached: 0 }
    }
}

/// A sequential iterator view over one Philox stream, for host-side code
/// that wants ordinary `next_*` RNG ergonomics (e.g. dataset generation).
#[derive(Debug, Clone)]
pub struct PhiloxStream {
    gen: Philox4x32,
    stream: u64,
    index: u64,
    cache: [u32; 4],
    cached: usize,
}

impl PhiloxStream {
    /// Next uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        if self.cached == 0 {
            let ctr = [
                self.index as u32,
                (self.index >> 32) as u32,
                self.stream as u32,
                (self.stream >> 32) as u32,
            ];
            self.cache = self.gen.block(ctr);
            self.index += 1;
            self.cached = 4;
        }
        self.cached -= 1;
        self.cache[self.cached]
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits, the full mantissa of an f64.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next uniform integer in `[0, bound)` by rejection-free scaling.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// A draw from the standard normal distribution (Box–Muller).
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_zero_key_zero_counter() {
        // Reference vector for Philox4x32-10 from the Random123 test suite:
        // key = {0,0}, counter = {0,0,0,0}.
        let g = Philox4x32::new(0);
        assert_eq!(
            g.block([0, 0, 0, 0]),
            [0x6627_E8D5, 0xE169_C58D, 0xBC57_AC4C, 0x9B00_DBD8]
        );
    }

    #[test]
    fn known_answer_all_ones() {
        // key = {0xffffffff, 0xffffffff}, counter = all ones.
        let g = Philox4x32::new(u64::MAX);
        assert_eq!(
            g.block([u32::MAX; 4]),
            [0x408F_276D, 0x41C8_3B0E, 0xA20B_C7C6, 0x6D54_51FD]
        );
    }

    #[test]
    fn counters_give_distinct_blocks() {
        let g = Philox4x32::new(42);
        let a = g.block([0, 0, 0, 0]);
        let b = g.block([1, 0, 0, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn stateless_at_matches_block() {
        let g = Philox4x32::new(7);
        let blk = g.block([5, 0, 9, 0]);
        for (w, &word) in blk.iter().enumerate() {
            assert_eq!(g.at(9, 5, w), word);
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let g = Philox4x32::new(123);
        for i in 0..10_000u64 {
            let u = g.uniform(0, i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let g = Philox4x32::new(99);
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| g.uniform(3, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn streams_are_independent() {
        let g = Philox4x32::new(1);
        let mut s0 = g.stream(0);
        let mut s1 = g.stream(1);
        let a: Vec<u32> = (0..16).map(|_| s0.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| s1.next_u32()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_is_reproducible() {
        let g = Philox4x32::new(1);
        let a: Vec<u64> = {
            let mut s = g.stream(5);
            (0..32).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = g.stream(5);
            (0..32).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments() {
        let g = Philox4x32::new(2024);
        let mut s = g.stream(0);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| s.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn next_below_respects_bound() {
        let g = Philox4x32::new(8);
        let mut s = g.stream(0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = s.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
