//! Typed device memory with host↔device transfer accounting.

use crate::memory::MemoryPool;
use crate::sync::Mutex;
use serde::Serialize;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cumulative host↔device traffic, in bytes and transfer counts.
///
/// The paper's Fig. 4 performance discussion attributes ParallelSpikeSim's
/// spike-simulation overhead to its unified data structures; these counters
/// let the benches report the equivalent memory-traffic picture.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TransferStats {
    /// Bytes copied host → device.
    pub htod_bytes: u64,
    /// Bytes copied device → host.
    pub dtoh_bytes: u64,
    /// Number of host → device transfers.
    pub htod_count: u64,
    /// Number of device → host transfers.
    pub dtoh_count: u64,
}

impl TransferStats {
    /// Total bytes moved in either direction.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.htod_bytes + self.dtoh_bytes
    }
}

/// A typed buffer in simulated device memory.
///
/// Reading and writing the contents from kernels goes through
/// [`DeviceBuffer::as_slice`] / [`DeviceBuffer::as_mut_slice`] (kernels run
/// on the device, so no transfer is recorded); moving data across the
/// simulated PCIe bus uses [`DeviceBuffer::copy_from_host`] /
/// [`DeviceBuffer::copy_to_host`], which update the owning device's
/// [`TransferStats`].
///
/// Buffers served by [`crate::Device::alloc`] are pool-backed: dropping
/// the buffer returns its backing store to the owning device's
/// [`MemoryPool`] for size-class reuse (the `Arc` keeps the pool alive
/// even if the buffer outlives a borrow of the device).
#[derive(Debug)]
pub struct DeviceBuffer<T: Copy + Send + 'static> {
    data: Vec<T>,
    label: &'static str,
    stats: Arc<Mutex<TransferStats>>,
    /// The recycler to return `data` to on drop; `None` for unpooled
    /// (test-constructed) buffers, which free normally.
    pool: Option<Arc<MemoryPool>>,
}

impl<T: Copy + Send + 'static> DeviceBuffer<T> {
    pub(crate) fn new(
        label: &'static str,
        data: Vec<T>,
        stats: Arc<Mutex<TransferStats>>,
    ) -> Self {
        {
            let mut s = stats.lock();
            s.htod_bytes += (data.len() * std::mem::size_of::<T>()) as u64;
            s.htod_count += 1;
        }
        DeviceBuffer { data, label, stats, pool: None }
    }

    /// A pool-backed buffer: `data` came from `pool` and returns to it
    /// on drop.
    pub(crate) fn new_pooled(
        label: &'static str,
        data: Vec<T>,
        stats: Arc<Mutex<TransferStats>>,
        pool: Arc<MemoryPool>,
    ) -> Self {
        let mut buf = Self::new(label, data, stats);
        buf.pool = Some(pool);
        buf
    }

    /// The debug label given at allocation.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side view of the contents (no transfer recorded).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view of the contents (no transfer recorded).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies `src` into the buffer, recording a host→device transfer.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.len()`.
    pub fn copy_from_host(&mut self, src: &[T]) {
        assert_eq!(src.len(), self.data.len(), "size mismatch on htod copy");
        self.data.copy_from_slice(src);
        let mut s = self.stats.lock();
        s.htod_bytes += std::mem::size_of_val(src) as u64;
        s.htod_count += 1;
    }

    /// Copies the buffer out to a host vector, recording a device→host
    /// transfer.
    #[must_use]
    pub fn copy_to_host(&self) -> Vec<T> {
        let mut s = self.stats.lock();
        s.dtoh_bytes += std::mem::size_of_val(self.data.as_slice()) as u64;
        s.dtoh_count += 1;
        drop(s);
        self.data.clone()
    }

    /// Fills the buffer with `value` on-device.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl<T: Copy + Send + 'static> Deref for DeviceBuffer<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Copy + Send + 'static> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy + Send + 'static> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(std::mem::take(&mut self.data));
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn stats() -> Arc<Mutex<TransferStats>> {
        Arc::new(Mutex::new(TransferStats::default()))
    }

    #[test]
    fn allocation_counts_as_htod() {
        let s = stats();
        let buf = DeviceBuffer::new("x", vec![0u64; 100], Arc::clone(&s));
        assert_eq!(buf.len(), 100);
        assert_eq!(s.lock().htod_bytes, 800);
        assert_eq!(s.lock().htod_count, 1);
    }

    #[test]
    fn copies_update_both_directions() {
        let s = stats();
        let mut buf = DeviceBuffer::new("x", vec![0.0f64; 10], Arc::clone(&s));
        buf.copy_from_host(&[1.0; 10]);
        let back = buf.copy_to_host();
        assert_eq!(back, vec![1.0; 10]);
        let snap = *s.lock();
        assert_eq!(snap.htod_bytes, 160); // alloc + copy
        assert_eq!(snap.dtoh_bytes, 80);
        assert_eq!(snap.total_bytes(), 240);
        assert_eq!(snap.dtoh_count, 1);
    }

    #[test]
    fn device_side_access_records_nothing() {
        let s = stats();
        let mut buf = DeviceBuffer::new("x", vec![5i32; 4], Arc::clone(&s));
        let before = *s.lock();
        buf.as_mut_slice()[0] = 7;
        assert_eq!(buf.as_slice()[0], 7);
        buf.fill(9);
        assert_eq!(*s.lock(), before);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_copy_rejected() {
        let s = stats();
        let mut buf = DeviceBuffer::new("x", vec![0u8; 4], s);
        buf.copy_from_host(&[0u8; 5]);
    }
}
