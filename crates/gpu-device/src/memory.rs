//! Per-device memory pooling: size-class free lists backing every
//! [`crate::DeviceBuffer`] allocation.
//!
//! A real CUDA allocator (`cudaMalloc`/`cudaFree`, or the stream-ordered
//! `cudaMallocAsync` pool) amortizes device allocations by recycling
//! freed blocks from size-class bins instead of round-tripping to the
//! driver. This module reproduces that discipline for the simulated
//! device: dropping a [`crate::DeviceBuffer`] returns its backing store
//! to the owning device's [`MemoryPool`], and the next allocation of a
//! compatible size class reuses it instead of touching the host
//! allocator.
//!
//! **Size classes** are power-of-two element counts per element type: a
//! request for `len` elements of `T` is served from the
//! `(T, len.next_power_of_two())` shelf. Classing by element count (not
//! bytes) keeps every recycled block type-exact, so reuse is a plain
//! `Vec` handoff with no transmutes — the pool holds no `unsafe` code at
//! all.
//!
//! **Observability**: the pool keeps running reuse/miss/release counters
//! and live/free/high-water byte gauges ([`PoolStats`]), published as
//! `device/pool_*` metrics through [`crate::Device::publish_pool_metrics`]
//! (schema: DESIGN.md §16). `fragmentation` is the fraction of
//! pool-managed bytes sitting idle on free shelves — the cost of the
//! size-class rounding that buys O(1) reuse.
//!
//! # Example
//!
//! ```
//! use gpu_device::{Device, DeviceConfig};
//!
//! let device = Device::new(DeviceConfig::serial());
//! let a = device.alloc("a", 1000, 0u32); // miss: fresh allocation
//! drop(a);                               // block parked on the free shelf
//! let _b = device.alloc("b", 900, 0u32); // hit: same 1024-element class
//! let stats = device.memory_stats();
//! assert_eq!(stats.reuse_hits, 1);
//! assert_eq!(stats.misses, 1);
//! assert!(stats.high_water_bytes >= stats.live_bytes);
//! ```

use crate::sync::Mutex;
use std::any::{Any, TypeId};
use std::collections::BTreeMap;

/// A snapshot of a [`MemoryPool`]'s accounting: allocation traffic
/// (hits/misses/releases) and byte occupancy (live/free/high-water).
///
/// Invariants maintained by the pool (and property-tested in
/// `crates/gpu-device/tests/memory_pool.rs`):
/// `high_water_bytes >= live_bytes`, `reuse_hits + misses` equals the
/// total number of served allocations, and `free_bytes` is exactly the
/// capacity parked on the free shelves.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served by recycling a freed block of the same class.
    pub reuse_hits: u64,
    /// Allocations that had to create a fresh backing store.
    pub misses: u64,
    /// Blocks returned to the pool by dropped buffers.
    pub releases: u64,
    /// Bytes currently checked out in live buffers (size-class capacity,
    /// not requested length — the rounding *is* the allocation).
    pub live_bytes: u64,
    /// Bytes currently parked on the free shelves, ready for reuse.
    pub free_bytes: u64,
    /// The maximum `live_bytes` ever observed.
    pub high_water_bytes: u64,
    /// Blocks currently parked on the free shelves.
    pub free_blocks: u64,
}

impl PoolStats {
    /// Fraction of pool-managed bytes (live + free) sitting idle on the
    /// free shelves; `0.0` when the pool manages nothing. This is the
    /// internal-fragmentation price of size-class recycling.
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let total = self.live_bytes + self.free_bytes;
        if total == 0 {
            return 0.0;
        }
        self.free_bytes as f64 / total as f64
    }

    /// Aggregates the stats of several pools (e.g. every device of a
    /// [`crate::DeviceManager`]) into one report.
    #[must_use]
    pub fn merged<'a, I: IntoIterator<Item = &'a PoolStats>>(stats: I) -> PoolStats {
        let mut out = PoolStats::default();
        for s in stats {
            out.reuse_hits += s.reuse_hits;
            out.misses += s.misses;
            out.releases += s.releases;
            out.live_bytes += s.live_bytes;
            out.free_bytes += s.free_bytes;
            out.high_water_bytes += s.high_water_bytes;
            out.free_blocks += s.free_blocks;
        }
        out
    }
}

/// One free shelf: recycled backing stores of a single `(type, class)`
/// pair, type-erased for storage. Every entry is a `Vec<T>` whose
/// capacity is exactly the class size, so a pop + `resize` never
/// reallocates.
type Shelf = Vec<Box<dyn Any + Send>>;

struct PoolInner {
    /// Free lists keyed by `(element type, class capacity)`. A `BTreeMap`
    /// keeps iteration order deterministic (and keeps the `snn-lint`
    /// hash-iteration rule trivially satisfied).
    shelves: BTreeMap<(TypeId, usize), Shelf>,
    stats: PoolStats,
}

/// The per-device allocation recycler (size-class free lists; see
/// DESIGN.md §16.1 for the design). Construction is internal — every
/// [`crate::Device`] owns one, created at device bring-up.
pub struct MemoryPool {
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for MemoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MemoryPool").field("stats", &stats).finish()
    }
}

/// The size class serving a request for `len` elements: the next power
/// of two, with a floor of one element so zero-length requests still
/// class cleanly.
fn class_for(len: usize) -> usize {
    len.max(1).next_power_of_two()
}

impl MemoryPool {
    pub(crate) fn new() -> Self {
        MemoryPool {
            inner: Mutex::new(PoolInner { shelves: BTreeMap::new(), stats: PoolStats::default() }),
        }
    }

    /// Checks out a `Vec<T>` of exactly `len` elements, every element
    /// `init`, backed by a recycled block of the `len`-covering size
    /// class when one is free (fresh otherwise). The returned vector's
    /// capacity is the class size.
    pub(crate) fn acquire<T: Copy + Send + 'static>(&self, len: usize, init: T) -> Vec<T> {
        let mut v = self.checkout::<T>(len);
        v.resize(len, init);
        v
    }

    /// Checks out a `Vec<T>` initialized as a copy of `src` (the
    /// `alloc_from_slice` path), with the same recycling as
    /// [`MemoryPool::acquire`].
    pub(crate) fn acquire_from_slice<T: Copy + Send + 'static>(&self, src: &[T]) -> Vec<T> {
        let mut v = self.checkout::<T>(src.len());
        v.extend_from_slice(src);
        v
    }

    /// The common checkout: an *empty* vector with capacity equal to the
    /// class covering `len`, recycled when possible, with all accounting
    /// done.
    fn checkout<T: Copy + Send + 'static>(&self, len: usize) -> Vec<T> {
        let class = class_for(len);
        let bytes = (class * std::mem::size_of::<T>()) as u64;
        let key = (TypeId::of::<T>(), class);
        let mut inner = self.inner.lock();
        let recycled = inner.shelves.get_mut(&key).and_then(Shelf::pop);
        let vec = match recycled {
            Some(block) => {
                inner.stats.reuse_hits += 1;
                inner.stats.free_bytes -= bytes;
                inner.stats.free_blocks -= 1;
                let mut v = *block
                    .downcast::<Vec<T>>()
                    .expect("shelf key pins the element type of every block");
                v.clear();
                v
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(class)
            }
        };
        inner.stats.live_bytes += bytes;
        inner.stats.high_water_bytes = inner.stats.high_water_bytes.max(inner.stats.live_bytes);
        debug_assert_eq!(vec.capacity(), class, "pooled blocks keep their class capacity");
        vec
    }

    /// Returns a buffer's backing store to its free shelf. Blocks whose
    /// capacity is not an exact class size (impossible for pool-served
    /// allocations, possible for buffers built around foreign vectors)
    /// are dropped instead of pooled, so the class accounting stays
    /// exact.
    pub(crate) fn release<T: Copy + Send + 'static>(&self, vec: Vec<T>) {
        let class = vec.capacity();
        let bytes = (class * std::mem::size_of::<T>()) as u64;
        let mut inner = self.inner.lock();
        if class == 0 || !class.is_power_of_two() {
            // Foreign block: it was never counted live, so just drop it.
            return;
        }
        inner.stats.live_bytes = inner.stats.live_bytes.saturating_sub(bytes);
        inner.stats.releases += 1;
        inner.stats.free_bytes += bytes;
        inner.stats.free_blocks += 1;
        inner.shelves.entry((TypeId::of::<T>(), class)).or_default().push(Box::new(vec));
    }

    /// A consistent snapshot of the pool's accounting.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Drops every parked free block, returning the bytes released to
    /// the host allocator. Live buffers are unaffected.
    pub fn trim(&self) -> u64 {
        let mut inner = self.inner.lock();
        let freed = inner.stats.free_bytes;
        inner.shelves.clear();
        inner.stats.free_bytes = 0;
        inner.stats.free_blocks = 0;
        freed
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(class_for(0), 1);
        assert_eq!(class_for(1), 1);
        assert_eq!(class_for(3), 4);
        assert_eq!(class_for(1000), 1024);
        assert_eq!(class_for(1024), 1024);
    }

    #[test]
    fn reuse_is_per_type_and_class() {
        let pool = MemoryPool::new();
        let a = pool.acquire::<u32>(100, 7);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 7));
        pool.release(a);
        // Same class, different type: no reuse.
        let b = pool.acquire::<f64>(100, 0.0);
        assert_eq!(pool.stats().reuse_hits, 0);
        // Same type and class: reused, fully reinitialized.
        let c = pool.acquire::<u32>(128, 9);
        assert_eq!(pool.stats().reuse_hits, 1);
        assert!(c.iter().all(|&x| x == 9));
        drop((b, c));
    }

    #[test]
    fn trim_empties_the_shelves() {
        let pool = MemoryPool::new();
        pool.release(pool.acquire::<u64>(64, 0));
        assert!(pool.stats().free_bytes > 0);
        let freed = pool.trim();
        assert_eq!(freed, 64 * 8);
        assert_eq!(pool.stats().free_bytes, 0);
        assert_eq!(pool.stats().free_blocks, 0);
    }

    #[test]
    fn fragmentation_is_free_over_total() {
        let pool = MemoryPool::new();
        assert_eq!(pool.stats().fragmentation(), 0.0);
        let a = pool.acquire::<u8>(1024, 0);
        pool.release(pool.acquire::<u8>(1024, 0));
        let s = pool.stats();
        assert!((s.fragmentation() - 0.5).abs() < 1e-12);
        drop(a);
    }
}
