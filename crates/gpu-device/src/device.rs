//! The simulated GPU device: allocation, kernel launch, profiling.

use crate::buffer::{DeviceBuffer, TransferStats};
use crate::fused::FusedCtx;
use crate::grid::LaunchDims;
use crate::memory::{MemoryPool, PoolStats};
use crate::pool::WorkerPool;
use crate::profiler::{KernelProfiler, ProfileReport};
use crate::sync::{Barrier, Mutex};
use std::sync::Arc;
use std::time::Instant;

/// Configuration for a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of worker threads ("streaming multiprocessors"). `1` runs all
    /// kernels inline on the calling thread.
    pub workers: usize,
    /// Threads per block for launches that do not specify geometry.
    pub block_size: usize,
    /// Launches whose estimated *cost* is below this threshold run inline
    /// on the calling thread: pool dispatch costs ~10 µs, so tiny kernels
    /// are faster serial. Cost is measured in unit work items — an item
    /// count scaled by the per-item kernel weight — so a short active list
    /// with a heavy per-item kernel still dispatches to the pool (see the
    /// `*_weighted` launch variants), while a long list of trivial items
    /// stays inline. Inline execution is observationally identical —
    /// kernels are pure per-index functions, so results do not depend on
    /// where they run.
    pub min_parallel_items: usize,
    /// Whether to record per-kernel timings.
    pub profile: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8);
        DeviceConfig {
            workers,
            block_size: LaunchDims::DEFAULT_BLOCK,
            profile: true,
            min_parallel_items: 4096,
        }
    }
}

impl DeviceConfig {
    /// A single-worker (serial) configuration, useful for determinism
    /// baselines and micro-benchmarks.
    #[must_use]
    pub fn serial() -> Self {
        DeviceConfig { workers: 1, ..Default::default() }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The host's available parallelism (1 when it cannot be determined) —
    /// the budget that [`Device::new_budgeted`] divides among replicas.
    #[must_use]
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A simulated GPU.
///
/// All launch methods are *deterministic in the worker count*: kernels are
/// pure per-index functions over disjoint data, reductions combine block
/// partials in block order, and randomness comes from counter-based
/// [`crate::Philox4x32`] streams. Running with 1 or 8 workers produces
/// bit-identical results; only wall time changes.
pub struct Device {
    pool: Option<WorkerPool>,
    config: DeviceConfig,
    profiler: KernelProfiler,
    transfers: Arc<Mutex<TransferStats>>,
    scratch: Mutex<Vec<Vec<f64>>>,
    /// Size-class allocation recycler backing every [`Device::alloc`];
    /// `Arc`-shared with the buffers it serves so a buffer outliving a
    /// borrow of the device still returns its block on drop.
    memory: Arc<MemoryPool>,
    /// `pool_reuse`/`pool_miss`/`pool_release` totals at the last
    /// [`Device::publish_pool_metrics`], so republishing emits deltas
    /// into the monotonic profiler counters instead of double-counting.
    pool_published: Mutex<(u64, u64, u64)>,
}

/// A zero-initialised `f64` scratch buffer leased from the device's
/// scratch pool (see [`Device::lease_scratch_f64`]). Dereferences to
/// `[f64]`; dropping the lease returns the allocation to the pool so
/// per-step temporaries (e.g. partial-sum blocks) never re-allocate in
/// steady state.
pub struct ScratchLease<'d> {
    buf: Vec<f64>,
    pool: &'d Mutex<Vec<Vec<f64>>>,
}

impl std::ops::Deref for ScratchLease<'_> {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        self.pool.lock().push(std::mem::take(&mut self.buf));
    }
}

impl std::fmt::Debug for ScratchLease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchLease").field("len", &self.buf.len()).finish()
    }
}

/// A raw-pointer wrapper that lets disjoint index ranges of one slice be
/// mutated from several workers. Soundness is by construction: every launch
/// partitions the index space so no two workers touch the same element.
///
/// The wrapper captures the slice length at construction and every accessor
/// debug-asserts its bounds, so a mispartitioned launch fails fast in debug
/// builds instead of racing (or scribbling out of bounds) in release.
struct SharedMut<T> {
    ptr: *mut T,
    len: usize,
    /// Under the model checker every element handed out is reported to a
    /// vector-clock race detector, so the disjoint-partitioning claim in
    /// each launch's SAFETY comment is a checked property (loom_tests.rs).
    #[cfg(loom)]
    log: std::sync::Arc<snn_loom::cell::AccessLog>,
}

// SAFETY: access is partitioned by index; see `SharedMut` docs.
unsafe impl<T: Send> Send for SharedMut<T> {}
// SAFETY: as above — the wrapper itself hands out only disjoint elements.
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Captures `data`'s pointer and length; the borrow ends at the call
    /// site, so all subsequent access runs through the checked accessors.
    fn new(data: &mut [T]) -> Self {
        SharedMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            #[cfg(loom)]
            log: std::sync::Arc::new(snn_loom::cell::AccessLog::new(data.len())),
        }
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and no other worker may access element `i` during this
    /// launch stage.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "SharedMut index {i} out of range {}", self.len);
        #[cfg(loom)]
        self.log.write(i);
        // SAFETY: bounds checked above (debug) / guaranteed by the caller's
        // partitioning contract (release).
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Exclusive access to `len` elements starting at `start`.
    ///
    /// # Safety
    ///
    /// `start + len <= self.len`, and no other worker may access any
    /// element of the range during this launch stage.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "SharedMut range {start}..{} out of range {}",
            start.wrapping_add(len),
            self.len
        );
        #[cfg(loom)]
        for i in start..start + len {
            self.log.write(i);
        }
        // SAFETY: bounds checked above (debug) / guaranteed by the caller's
        // partitioning contract (release).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// The whole underlying slice, for serial (single-worker) paths.
    ///
    /// # Safety
    ///
    /// No other reference to the underlying slice may be live.
    #[allow(clippy::mut_from_ref)]
    unsafe fn whole(&self) -> &mut [T] {
        #[cfg(loom)]
        for i in 0..self.len {
            self.log.write(i);
        }
        // SAFETY: `ptr`/`len` come from a live `&mut [T]` and the caller
        // guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Device {
    /// Brings up a device with `config`.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        let pool = if config.workers > 1 {
            Some(WorkerPool::new(config.workers))
        } else {
            None
        };
        Device {
            pool,
            config,
            profiler: KernelProfiler::new(),
            transfers: Arc::new(Mutex::new(TransferStats::default())),
            scratch: Mutex::new(Vec::new()),
            memory: Arc::new(MemoryPool::new()),
            pool_published: Mutex::new((0, 0, 0)),
        }
    }

    /// Brings up one of `replicas` sibling devices sharing a host-wide
    /// worker budget.
    ///
    /// [`Device::new`] takes `config.workers` uncritically — correct for a
    /// single device, but `replicas` concurrent devices would oversubscribe
    /// the host with `replicas × workers` pool threads that time-slice one
    /// another instead of running kernels. This constructor clamps the
    /// per-replica worker count so the *total* stays within
    /// [`DeviceConfig::host_parallelism`]: each replica gets
    /// `max(1, host / replicas)` workers, never more than requested. When
    /// the clamp engages, the profiler counter `worker_budget_clamped`
    /// records how many requested workers were denied, so merged replica
    /// reports show the oversubscription that was avoided.
    ///
    /// Worker counts only affect wall time, never results — kernels are
    /// deterministic in the worker count — so clamping is always safe.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn new_budgeted(config: DeviceConfig, replicas: usize) -> Self {
        Self::new_budgeted_split(config, replicas, 1)
    }

    /// The general form of [`Device::new_budgeted`]: brings up one of
    /// `replicas × devices_per_replica` sibling devices sharing the host
    /// worker budget. `new_budgeted` assumed every replica mounts exactly
    /// one device; a sharded replica mounts `devices_per_replica` of
    /// them, so the per-device share is
    /// `max(1, host / (replicas × devices_per_replica))`. The
    /// `worker_budget_clamped` counter records denied workers exactly as
    /// in the single-device form. (`crate::DeviceManager` calls this for
    /// every device it enumerates.)
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `devices_per_replica` is zero.
    #[must_use]
    pub fn new_budgeted_split(
        config: DeviceConfig,
        replicas: usize,
        devices_per_replica: usize,
    ) -> Self {
        assert!(replicas > 0, "a replica group needs at least one member");
        assert!(devices_per_replica > 0, "a replica mounts at least one device");
        let requested = config.workers.max(1);
        let slots = replicas.saturating_mul(devices_per_replica);
        let per_device_budget = (DeviceConfig::host_parallelism() / slots).max(1);
        let granted = requested.min(per_device_budget);
        let device = Device::new(DeviceConfig { workers: granted, ..config });
        if granted < requested {
            device.bump_counter("worker_budget_clamped", (requested - granted) as u64);
        }
        device
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Snapshot of cumulative host↔device traffic.
    #[must_use]
    pub fn transfer_stats(&self) -> TransferStats {
        *self.transfers.lock()
    }

    /// Snapshot of the kernel profile.
    #[must_use]
    pub fn profile(&self) -> ProfileReport {
        self.profiler.report()
    }

    /// Clears profiler state.
    pub fn reset_profile(&self) {
        self.profiler.reset();
    }

    /// Folds a profile snapshot taken on another device (e.g. an eval
    /// replica) into this device's profiler, so [`Device::profile`] returns
    /// one merged report covering every device that contributed work.
    pub fn absorb_profile(&self, report: &ProfileReport) {
        self.profiler.absorb(report);
    }

    /// Adds `delta` to a named monotonic profiler counter. Engines use this
    /// to account for work an execution strategy *avoided* (e.g. synapse
    /// updates deferred or dense launches skipped by a lazy path) — wall
    /// time alone cannot show work that never ran. No-op when profiling is
    /// disabled.
    pub fn bump_counter(&self, name: &'static str, delta: u64) {
        if self.config.profile {
            self.profiler.bump(name, delta);
        }
    }

    /// Records one sample of a named profiler gauge — a per-step scalar
    /// observation (e.g. the fraction of inputs active this step) whose
    /// mean/min/max over the run is the quantity of interest. No-op when
    /// profiling is disabled.
    pub fn record_gauge(&self, name: &'static str, value: f64) {
        if self.config.profile {
            self.profiler.gauge(name, value);
        }
    }

    /// Merges a batch of locally accumulated gauge samples (see
    /// [`KernelProfiler::gauge_stats`]). No-op when profiling is disabled.
    pub fn record_gauge_stats(&self, name: &'static str, stats: &crate::profiler::GaugeStats) {
        if self.config.profile {
            self.profiler.gauge_stats(name, stats);
        }
    }

    /// Leases a zero-initialised `f64` scratch buffer of `len` elements
    /// from the device's reuse pool. Dropping the lease returns the
    /// allocation, so steady-state per-step temporaries (partial-sum
    /// blocks, compaction staging) stop allocating after warm-up.
    #[must_use]
    pub fn lease_scratch_f64(&self, len: usize) -> ScratchLease<'_> {
        let mut buf = self.scratch.lock().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        ScratchLease { buf, pool: &self.scratch }
    }

    /// Allocates a buffer of `len` elements initialized to `init`.
    ///
    /// Backed by the device's [`MemoryPool`]: dropping the returned
    /// buffer parks its block on a size-class free shelf, and a later
    /// allocation of the same class reuses it instead of touching the
    /// host allocator (`device/pool_*` metrics, DESIGN.md §16).
    #[must_use]
    pub fn alloc<T: Copy + Send + 'static>(
        &self,
        label: &'static str,
        len: usize,
        init: T,
    ) -> DeviceBuffer<T> {
        DeviceBuffer::new_pooled(
            label,
            self.memory.acquire(len, init),
            Arc::clone(&self.transfers),
            Arc::clone(&self.memory),
        )
    }

    /// Allocates a buffer initialized from a host slice, with the same
    /// pool recycling as [`Device::alloc`].
    #[must_use]
    pub fn alloc_from_slice<T: Copy + Send + 'static>(
        &self,
        label: &'static str,
        src: &[T],
    ) -> DeviceBuffer<T> {
        DeviceBuffer::new_pooled(
            label,
            self.memory.acquire_from_slice(src),
            Arc::clone(&self.transfers),
            Arc::clone(&self.memory),
        )
    }

    /// A snapshot of the device memory pool's accounting (reuse/miss
    /// traffic, live/free/high-water bytes).
    #[must_use]
    pub fn memory_stats(&self) -> PoolStats {
        self.memory.stats()
    }

    /// Drops every free block parked in the device memory pool,
    /// returning the bytes released. Live buffers are unaffected.
    pub fn trim_memory(&self) -> u64 {
        self.memory.trim()
    }

    /// Publishes the memory pool's accounting into the profiler — and
    /// from there, via [`ProfileReport::export_metrics`], into the
    /// MetricsHub as `device/pool_reuse`, `device/pool_miss`,
    /// `device/pool_release` counters and `device/pool_live_bytes`,
    /// `device/pool_free_bytes`, `device/pool_high_water_bytes`,
    /// `device/pool_fragmentation` gauges (schema: DESIGN.md §16).
    /// Counter totals are published as deltas since the previous call,
    /// so republishing never double-counts. No-op when profiling is
    /// disabled.
    pub fn publish_pool_metrics(&self) {
        if !self.config.profile {
            return;
        }
        let s = self.memory.stats();
        let mut last = self.pool_published.lock();
        self.profiler.bump("pool_reuse", s.reuse_hits - last.0);
        self.profiler.bump("pool_miss", s.misses - last.1);
        self.profiler.bump("pool_release", s.releases - last.2);
        *last = (s.reuse_hits, s.misses, s.releases);
        drop(last);
        self.profiler.gauge("pool_live_bytes", s.live_bytes as f64);
        self.profiler.gauge("pool_free_bytes", s.free_bytes as f64);
        self.profiler.gauge("pool_high_water_bytes", s.high_water_bytes as f64);
        self.profiler.gauge("pool_fragmentation", s.fragmentation());
    }

    fn dims_for(&self, n: usize) -> LaunchDims {
        LaunchDims::cover(n, self.config.block_size)
    }

    /// The pool to dispatch on, or `None` when the estimated launch `cost`
    /// (unit work items: element count × per-item kernel weight) is small
    /// enough that inline execution wins.
    fn pool_for(&self, cost: usize) -> Option<&WorkerPool> {
        if cost < self.config.min_parallel_items {
            None
        } else {
            self.pool.as_ref()
        }
    }

    /// Launches `kernel` over global thread ids `0..n` (read-only or
    /// interior-mutability kernels).
    pub fn launch<K>(&self, name: &'static str, n: usize, kernel: K)
    where
        K: Fn(usize) + Sync,
    {
        self.launch_weighted(name, n, 1, kernel);
    }

    /// Like [`launch`](Self::launch), but the inline-vs-pool decision uses
    /// `n × per_item_cost` instead of the bare item count. Use for short
    /// index spaces with heavy per-item kernels (event-driven passes,
    /// per-row scans) that would otherwise serialise inline.
    pub fn launch_weighted<K>(
        &self,
        name: &'static str,
        n: usize,
        per_item_cost: usize,
        kernel: K,
    ) where
        K: Fn(usize) + Sync,
    {
        let dims = self.dims_for(n);
        let cost = n.saturating_mul(per_item_cost.max(1));
        let pool = self.pool_for(cost);
        self.timed(name, n, 0, pool.is_some(), || match pool {
            None => (0..n).for_each(&kernel),
            Some(pool) => {
                let workers = pool.workers();
                pool.run(|wid| {
                    let mut block = wid;
                    while block < dims.grid {
                        for i in dims.block_range(block, n) {
                            kernel(i);
                        }
                        block += workers;
                    }
                });
            }
        });
    }

    /// Launches a per-element mutation kernel over `data`: each logical
    /// thread `i` receives `&mut data[i]`.
    pub fn launch_slice_mut<T, K>(&self, name: &'static str, data: &mut [T], kernel: K)
    where
        T: Send,
        K: Fn(usize, &mut T) + Sync,
    {
        self.launch_slice_mut_weighted(name, data, 1, kernel);
    }

    /// Like [`launch_slice_mut`](Self::launch_slice_mut), but the
    /// inline-vs-pool decision uses `data.len() × per_item_cost` — see
    /// [`launch_weighted`](Self::launch_weighted).
    pub fn launch_slice_mut_weighted<T, K>(
        &self,
        name: &'static str,
        data: &mut [T],
        per_item_cost: usize,
        kernel: K,
    ) where
        T: Send,
        K: Fn(usize, &mut T) + Sync,
    {
        let n = data.len();
        let dims = self.dims_for(n);
        let bytes = (std::mem::size_of_val(data) * 2) as u64;
        let base = SharedMut::new(data);
        let cost = n.saturating_mul(per_item_cost.max(1));
        let pool = self.pool_for(cost);
        self.timed(name, n, bytes, pool.is_some(), || match pool {
            None => {
                // SAFETY: serial path, exclusive access.
                let data = unsafe { base.whole() };
                for (i, item) in data.iter_mut().enumerate() {
                    kernel(i, item);
                }
            }
            Some(pool) => {
                let workers = pool.workers();
                let base = &base;
                pool.run(|wid| {
                    let mut block = wid;
                    while block < dims.grid {
                        for i in dims.block_range(block, n) {
                            // SAFETY: block ranges partition 0..n and each
                            // block is visited by exactly one worker
                            // (strided assignment), so `i` is touched once.
                            let item = unsafe { base.at(i) };
                            kernel(i, item);
                        }
                        block += workers;
                    }
                });
            }
        });
    }

    /// Runs a *fused* multi-stage kernel in at most one pool dispatch.
    ///
    /// Every worker executes `kernel` once with a [`FusedCtx`] carrying its
    /// identity and the cross-stage barrier; the kernel partitions each
    /// stage's index space itself via [`FusedCtx::chunk`] /
    /// [`FusedCtx::strided`] and separates dependent stages with
    /// [`FusedCtx::sync`]. Use [`crate::SharedSlice`] views for the buffers
    /// the stages mutate. When the estimated `cost` (unit work items across all
    /// stages) is below the dispatch threshold the kernel runs inline with
    /// a single worker and no-op syncs — bit-identical by the usual
    /// disjoint-index argument.
    ///
    /// `bytes` is the caller's estimate of data read + written, recorded in
    /// the profiler's `bytes_touched` column.
    pub fn launch_fused<K>(&self, name: &'static str, cost: usize, bytes: u64, kernel: K)
    where
        K: Fn(&FusedCtx<'_>) + Sync,
    {
        let pool = self.pool_for(cost);
        // Stage-sync telemetry (`device/fused_stage_syncs`): worker 0 counts
        // barrier crossings into this atomic, sampled only while tracing so
        // the default path stays untouched.
        let syncs = std::sync::atomic::AtomicU64::new(0);
        let count_syncs = snn_trace::enabled() && self.config.profile;
        self.timed(name, cost, bytes, pool.is_some(), || match pool {
            None => {
                let ctx = FusedCtx::inline();
                if count_syncs {
                    kernel(&ctx.with_sync_counter(&syncs));
                } else {
                    kernel(&ctx);
                }
            }
            Some(pool) => {
                let workers = pool.workers();
                let barrier = Barrier::new(workers);
                let barrier = &barrier;
                let syncs = &syncs;
                pool.run(|wid| {
                    let ctx = FusedCtx::pooled(wid, workers, barrier);
                    if count_syncs {
                        kernel(&ctx.with_sync_counter(syncs));
                    } else {
                        kernel(&ctx);
                    }
                });
            }
        });
        let crossed = syncs.load(std::sync::atomic::Ordering::Relaxed);
        if crossed > 0 {
            self.bump_counter("fused_stage_syncs", crossed);
        }
    }

    /// Launches a per-element mutation kernel over a device buffer.
    pub fn launch_mut<T, K>(&self, name: &'static str, buf: &mut DeviceBuffer<T>, kernel: K)
    where
        T: Copy + Send,
        K: Fn(usize, &mut T) + Sync,
    {
        self.launch_slice_mut(name, buf.as_mut_slice(), kernel);
    }

    /// Launches a kernel over row-chunks of `data`: logical thread `r`
    /// receives `&mut data[r*row_len .. (r+1)*row_len]`. This mirrors a CUDA
    /// kernel where each thread owns one matrix row.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `row_len`.
    pub fn launch_rows_mut<T, K>(
        &self,
        name: &'static str,
        data: &mut [T],
        row_len: usize,
        kernel: K,
    ) where
        T: Send,
        K: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "row length must be positive");
        assert_eq!(data.len() % row_len, 0, "data not a whole number of rows");
        let rows = data.len() / row_len;
        let dims = LaunchDims::cover(rows, 1.max(self.config.block_size / 32));
        let bytes = (std::mem::size_of_val(data) * 2) as u64;
        let base = SharedMut::new(data);
        let pool = self.pool_for(rows * row_len);
        self.timed(name, rows, bytes, pool.is_some(), || match pool {
            None => {
                // SAFETY: serial path, exclusive access.
                let data = unsafe { base.whole() };
                for (r, row) in data.chunks_exact_mut(row_len).enumerate() {
                    kernel(r, row);
                }
            }
            Some(pool) => {
                let workers = pool.workers();
                let base = &base;
                pool.run(|wid| {
                    let mut block = wid;
                    while block < dims.grid {
                        for r in dims.block_range(block, rows) {
                            // SAFETY: rows are disjoint and each row index is
                            // visited by exactly one worker.
                            let row = unsafe { base.slice(r * row_len, row_len) };
                            kernel(r, row);
                        }
                        block += workers;
                    }
                });
            }
        });
    }

    /// A fused gather/scatter row launch: logical thread `k` gathers row
    /// index `rows[k]` and receives that row of **two** same-shape matrices
    /// (`&mut a[r*row_len..]`, `&mut b[r*row_len..]`) in one dispatch. This
    /// is the shape of lazy, event-driven passes — a data-dependent *active
    /// set* of rows, each carrying paired state (e.g. conductances plus
    /// applied-update watermarks) — and fusing the pair keeps the whole pass
    /// on one worker-pool dispatch instead of two.
    ///
    /// Because the real work of a gathered pass depends on per-row event
    /// data the device cannot see, the caller supplies `work_items`, the
    /// estimated number of logical work items, and the device uses it for
    /// the inline-vs-pool decision exactly as a dense launch would use its
    /// element count.
    ///
    /// The kernel receives `(k, r, a_row, b_row)` with `k` the position in
    /// `rows` and `r = rows[k]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are not whole rows, or if a
    /// row index is out of range. `rows` must not contain duplicates (two
    /// workers would alias one row); this is asserted in debug builds.
    pub fn launch_gather_rows_mut<A, B, K>(
        &self,
        name: &'static str,
        rows: &[u32],
        a: &mut [A],
        b: &mut [B],
        row_len: usize,
        work_items: usize,
        kernel: K,
    ) where
        A: Send,
        B: Send,
        K: Fn(usize, usize, &mut [A], &mut [B]) + Sync,
    {
        assert!(row_len > 0, "row length must be positive");
        assert_eq!(a.len(), b.len(), "gathered matrices must have the same shape");
        assert_eq!(a.len() % row_len, 0, "data not a whole number of rows");
        let n_rows = a.len() / row_len;
        assert!(
            rows.iter().all(|&r| (r as usize) < n_rows),
            "gather row index out of range"
        );
        debug_assert!(
            {
                let mut seen = vec![false; n_rows];
                rows.iter().all(|&r| !std::mem::replace(&mut seen[r as usize], true))
            },
            "gather list contains duplicate rows"
        );
        let n = rows.len();
        // Gather lists are data-dependent and usually far smaller than a
        // dense row launch (tens of active rows, not the whole matrix). At
        // the dense row-block size most of a small gather would land in one
        // block — i.e. on one worker — so cap the block so the list spreads
        // over every worker with a few blocks each for balance. Results are
        // partition-independent (disjoint rows, pure kernels), so this only
        // changes wall time.
        let row_block = 1.max(self.config.block_size / 32).min(1.max(n.div_ceil(4 * self.workers())));
        let dims = LaunchDims::cover(n, row_block);
        let bytes =
            (n * row_len * (std::mem::size_of::<A>() + std::mem::size_of::<B>()) * 2) as u64;
        let base_a = SharedMut::new(a);
        let base_b = SharedMut::new(b);
        let pool = self.pool_for(work_items);
        self.timed(name, n, bytes, pool.is_some(), || match pool {
            None => {
                // SAFETY: serial path, exclusive access to both slices.
                for (k, &r) in rows.iter().enumerate() {
                    let r = r as usize;
                    let row_a = unsafe { base_a.slice(r * row_len, row_len) };
                    let row_b = unsafe { base_b.slice(r * row_len, row_len) };
                    kernel(k, r, row_a, row_b);
                }
            }
            Some(pool) => {
                let workers = pool.workers();
                let base_a = &base_a;
                let base_b = &base_b;
                pool.run(|wid| {
                    let mut block = wid;
                    while block < dims.grid {
                        for k in dims.block_range(block, n) {
                            let r = rows[k] as usize;
                            // SAFETY: gather positions partition 0..n, each
                            // visited by exactly one worker, and the gather
                            // list holds distinct rows — so every row pair
                            // is touched by one worker only.
                            let row_a = unsafe { base_a.slice(r * row_len, row_len) };
                            let row_b = unsafe { base_b.slice(r * row_len, row_len) };
                            kernel(k, r, row_a, row_b);
                        }
                        block += workers;
                    }
                });
            }
        });
    }

    /// A deterministic parallel map-reduce over `0..n`: block partials are
    /// combined in ascending block order regardless of worker count.
    pub fn reduce<T, M, C>(&self, name: &'static str, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let dims = self.dims_for(n);
        let mut partials: Vec<T> = vec![identity.clone(); dims.grid];
        let combine_ref = &combine;
        let map_ref = &map;
        {
            let base = SharedMut::new(&mut partials);
            let pool = self.pool_for(n);
            self.timed(name, n, 0, pool.is_some(), || match pool {
                None => {
                    // SAFETY: serial path, exclusive access.
                    let parts = unsafe { base.whole() };
                    for (b, slot) in parts.iter_mut().enumerate() {
                        let mut acc = identity.clone();
                        for i in dims.block_range(b, n) {
                            acc = combine_ref(acc, map_ref(i));
                        }
                        *slot = acc;
                    }
                }
                Some(pool) => {
                    let workers = pool.workers();
                    let base = &base;
                    let identity = &identity;
                    pool.run(|wid| {
                        let mut block = wid;
                        while block < dims.grid {
                            let mut acc = identity.clone();
                            for i in dims.block_range(block, n) {
                                acc = combine_ref(acc, map_ref(i));
                            }
                            // SAFETY: one writer per block slot.
                            unsafe { *base.at(block) = acc };
                            block += workers;
                        }
                    });
                }
            });
        }
        partials
            .into_iter()
            .fold(identity, combine)
    }

    // lint-allow: determinism-taint — the launch-duration clock read feeds
    // only profiler stats and trace spans; the kernel closure `f` runs the
    // same either way and never observes the measurement.
    fn timed<F: FnOnce()>(
        &self,
        name: &'static str,
        threads: usize,
        bytes: u64,
        pooled: bool,
        f: F,
    ) {
        // One clock path serves both consumers: the profiler's aggregate
        // per-kernel stats and (when tracing is on) a `kernel`-category
        // span reusing the same measurement, so traces and profiles can
        // never disagree about a launch's duration. Kernel spans are
        // per-launch events, so they ride behind `Detail::Steps`: at the
        // default phase detail an unprofiled launch pays only the
        // `enabled()` load, which keeps the documented <2% overhead bound
        // (DESIGN.md §11.3) independent of launch count.
        let tracing = snn_trace::enabled() && snn_trace::detail() == snn_trace::Detail::Steps;
        if self.config.profile || tracing {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            if self.config.profile {
                self.profiler.record(name, threads, bytes, pooled, elapsed);
            }
            if tracing {
                snn_trace::record_span_at(name, "kernel", start, elapsed);
            }
        } else {
            f();
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("workers", &self.workers())
            .field("block_size", &self.config.block_size)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn dev(workers: usize) -> Device {
        Device::new(DeviceConfig::default().with_workers(workers))
    }

    #[test]
    fn launch_mut_touches_every_element_once() {
        for workers in [1, 2, 7] {
            let d = dev(workers);
            let mut buf = d.alloc("counts", 10_000, 0u32);
            d.launch_mut("incr", &mut buf, |i, v| *v += i as u32 + 1);
            for (i, &v) in buf.as_slice().iter().enumerate() {
                assert_eq!(v, i as u32 + 1, "workers={workers}, i={i}");
            }
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let run = |workers: usize| -> Vec<f64> {
            let d = dev(workers);
            let mut buf = d.alloc("v", 4097, 1.0f64);
            d.launch_mut("scale", &mut buf, |i, v| *v *= (i as f64).sin());
            buf.copy_to_host()
        };
        let serial = run(1);
        assert_eq!(serial, run(3));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn reduce_is_deterministic_and_correct() {
        for workers in [1, 4] {
            let d = dev(workers);
            let n = 100_001usize;
            let sum = d.reduce("sum", n, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "workers={workers}");
        }
    }

    #[test]
    fn rows_mut_gives_whole_rows() {
        let d = dev(4);
        let mut data = vec![0u32; 12 * 64];
        d.launch_rows_mut("rows", &mut data, 64, |r, row| {
            assert_eq!(row.len(), 64);
            for v in row.iter_mut() {
                *v = r as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 64);
        }
    }

    #[test]
    fn empty_launches_are_noops() {
        let d = dev(4);
        d.launch("nothing", 0, |_| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        d.launch_slice_mut("nothing2", &mut empty, |_, _| panic!("must not run"));
        assert_eq!(d.reduce("nothing3", 0, 7u32, |_| 0, |a, b| a + b), 7);
    }

    #[test]
    fn profiler_records_launches() {
        let d = dev(2);
        d.launch("k1", 100, |_| {});
        d.launch("k1", 100, |_| {});
        let report = d.profile();
        let k1 = report.get("k1").expect("k1 profiled");
        assert_eq!(k1.launches, 2);
        assert_eq!(k1.threads, 200);
    }

    #[test]
    fn transfer_stats_flow_through_buffers() {
        let d = dev(1);
        let buf = d.alloc("a", 1000, 0u8);
        let _ = buf.copy_to_host();
        let stats = d.transfer_stats();
        assert_eq!(stats.htod_bytes, 1000);
        assert_eq!(stats.dtoh_bytes, 1000);
    }

    #[test]
    fn serial_config_runs_inline() {
        let d = Device::new(DeviceConfig::serial());
        assert_eq!(d.workers(), 1);
        let mut buf = d.alloc("x", 16, 0u8);
        d.launch_mut("set", &mut buf, |_, v| *v = 1);
        assert!(buf.as_slice().iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_rows_rejected() {
        let d = dev(1);
        let mut data = vec![0u8; 10];
        d.launch_rows_mut("bad", &mut data, 3, |_, _| {});
    }

    #[test]
    fn gather_rows_touches_only_listed_rows() {
        for workers in [1, 2, 5] {
            let d = dev(workers);
            let (rows, row_len) = (16usize, 8usize);
            let mut a = vec![0.0f64; rows * row_len];
            let mut b = vec![0u32; rows * row_len];
            let gather: Vec<u32> = vec![3, 0, 11, 7];
            // Force the pool path with a large work hint at workers > 1.
            d.launch_gather_rows_mut("gather", &gather, &mut a, &mut b, row_len, 1 << 20, |k, r, ra, rb| {
                assert_eq!(gather[k] as usize, r);
                for (va, vb) in ra.iter_mut().zip(rb.iter_mut()) {
                    *va += (r + 1) as f64;
                    *vb += 1;
                }
            });
            for r in 0..rows {
                let listed = gather.contains(&(r as u32));
                for i in 0..row_len {
                    let expect_a = if listed { (r + 1) as f64 } else { 0.0 };
                    let expect_b = u32::from(listed);
                    assert_eq!(a[r * row_len + i], expect_a, "workers={workers} row={r}");
                    assert_eq!(b[r * row_len + i], expect_b, "workers={workers} row={r}");
                }
            }
        }
    }

    #[test]
    fn gather_rows_small_hint_runs_inline() {
        let d = dev(4);
        let mut a = vec![0u8; 4 * 4];
        let mut b = vec![0u8; 4 * 4];
        // work hint below min_parallel_items → inline even with a pool.
        d.launch_gather_rows_mut("inline", &[2], &mut a, &mut b, 4, 4, |_, r, ra, _| {
            ra.fill(r as u8);
        });
        assert!(a[8..12].iter().all(|&v| v == 2));
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn gather_rows_shape_mismatch_rejected() {
        let d = dev(1);
        let mut a = vec![0u8; 8];
        let mut b = vec![0u8; 4];
        d.launch_gather_rows_mut("bad", &[0], &mut a, &mut b, 4, 4, |_, _, _, _| {});
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_index_out_of_range_rejected() {
        let d = dev(1);
        let mut a = vec![0u8; 8];
        let mut b = vec![0u8; 8];
        d.launch_gather_rows_mut("bad", &[2], &mut a, &mut b, 4, 4, |_, _, _, _| {});
    }

    #[test]
    fn budgeted_devices_clamp_to_host_parallelism() {
        let host = DeviceConfig::host_parallelism();
        // Request far more workers than one replica's share of the host:
        // the grant must keep replicas × workers within the host budget
        // (with the ≥1 floor per replica).
        let replicas = 4;
        let d = Device::new_budgeted(DeviceConfig::default().with_workers(host * 8), replicas);
        assert_eq!(d.workers(), (host / replicas).max(1));
        assert!(
            d.profile().counter("worker_budget_clamped").unwrap_or(0) > 0,
            "denied workers must leave a profiler note"
        );
        // A request already within budget is granted untouched, no note.
        let d = Device::new_budgeted(DeviceConfig::default().with_workers(1), 1);
        assert_eq!(d.workers(), 1);
        assert_eq!(d.profile().counter("worker_budget_clamped"), None);
        // Results are unaffected by clamping (worker-count determinism).
        let run = |dev: &Device| {
            let mut buf = dev.alloc("v", 5000, 1.0f64);
            dev.launch_mut("scale", &mut buf, |i, v| *v *= (i as f64).sin());
            buf.copy_to_host()
        };
        let clamped = Device::new_budgeted(DeviceConfig::default().with_workers(8), 64);
        assert_eq!(run(&Device::new(DeviceConfig::serial())), run(&clamped));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_replica_budget_rejected() {
        let _ = Device::new_budgeted(DeviceConfig::default(), 0);
    }

    #[test]
    fn absorbed_replica_profiles_merge_into_primary() {
        let primary = dev(1);
        primary.launch("shared_kernel", 10, |_| {});
        let replica = dev(1);
        replica.launch("shared_kernel", 10, |_| {});
        replica.launch("replica_only", 5, |_| {});
        replica.bump_counter("replica_items", 3);
        primary.absorb_profile(&replica.profile());
        let merged = primary.profile();
        assert_eq!(merged.get("shared_kernel").unwrap().launches, 2);
        assert_eq!(merged.get("replica_only").unwrap().launches, 1);
        assert_eq!(merged.counter("replica_items"), Some(3));
    }

    #[test]
    fn counters_flow_through_device() {
        let d = dev(2);
        d.bump_counter("skipped", 100);
        d.bump_counter("skipped", 11);
        assert_eq!(d.profile().counter("skipped"), Some(111));
        d.reset_profile();
        assert_eq!(d.profile().counter("skipped"), None);
    }

    #[test]
    fn fused_launch_barrier_orders_stages() {
        use crate::fused::SharedSlice;
        for workers in [1, 2, 7] {
            let d = dev(workers);
            let n = 10_000usize;
            let mut a = vec![0u64; n];
            let mut b = vec![0u64; n];
            {
                let av = SharedSlice::new(&mut a);
                let bv = SharedSlice::new(&mut b);
                d.launch_fused("fused_test", 2 * n, 0, |ctx| {
                    for i in ctx.chunk(n) {
                        // SAFETY: chunk() partitions 0..n across workers.
                        unsafe { av.write(i, i as u64) };
                    }
                    // Stage 2 reads a neighbour written by another worker,
                    // so it is only correct if sync() is a real barrier.
                    ctx.sync();
                    for i in ctx.strided(n) {
                        // SAFETY: strided() partitions 0..n; reads of `av`
                        // race with nothing — stage 1 writes are ordered by
                        // the barrier.
                        let v = unsafe { av.read((i + 1) % n) };
                        unsafe { bv.write(i, v * 2) };
                    }
                });
            }
            for (i, &v) in b.iter().enumerate() {
                assert_eq!(v, (((i + 1) % n) * 2) as u64, "workers={workers} i={i}");
            }
            let stats = *d.profile().get("fused_test").unwrap();
            assert_eq!(stats.launches, 1);
            assert_eq!(stats.pooled_launches, u64::from(workers > 1));
        }
    }

    #[test]
    fn fused_launch_small_cost_runs_inline() {
        use crate::fused::SharedSlice;
        let d = dev(4);
        let mut hits = vec![0u32; 8];
        {
            let view = SharedSlice::new(&mut hits);
            d.launch_fused("tiny_fused", 8, 0, |ctx| {
                assert_eq!(ctx.workers(), 1, "below-threshold fused launch must run inline");
                for i in ctx.chunk(8) {
                    // SAFETY: single inline worker.
                    unsafe { *view.get_mut(i) += 1 };
                }
                ctx.sync();
            });
        }
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(d.profile().get("tiny_fused").unwrap().pooled_launches, 0);
    }

    #[test]
    fn weighted_launch_dispatches_small_heavy_kernels_to_pool() {
        let d = dev(4);
        let mut data = vec![0u8; 64];
        // 64 items at weight 1 is far below the threshold → inline.
        d.launch_slice_mut("light", &mut data, |_, v| *v += 1);
        // The same 64 items with a heavy per-item cost estimate → pooled.
        d.launch_slice_mut_weighted("heavy", &mut data, 1 << 10, |_, v| *v += 1);
        let report = d.profile();
        assert_eq!(report.get("light").unwrap().pooled_launches, 0);
        assert_eq!(report.get("heavy").unwrap().pooled_launches, 1);
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn scratch_leases_zero_and_reuse() {
        let d = dev(1);
        {
            let mut lease = d.lease_scratch_f64(128);
            assert_eq!(lease.len(), 128);
            assert!(lease.iter().all(|&v| v == 0.0));
            lease[3] = 42.0;
        }
        let lease = d.lease_scratch_f64(64);
        assert!(lease.iter().all(|&v| v == 0.0), "reused scratch must be re-zeroed");
        drop(lease);
        let empty = d.lease_scratch_f64(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn gauges_flow_through_device() {
        let d = dev(2);
        d.record_gauge("occupancy", 0.25);
        d.record_gauge("occupancy", 0.75);
        let g = *d.profile().gauge("occupancy").unwrap();
        assert_eq!(g.samples, 2);
        assert!((g.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bytes_touched_estimated_for_typed_launches() {
        let d = dev(1);
        let mut data = vec![0.0f64; 100];
        d.launch_slice_mut("touch", &mut data, |_, v| *v = 1.0);
        assert_eq!(d.profile().get("touch").unwrap().bytes_touched, 100 * 8 * 2);
    }
}
