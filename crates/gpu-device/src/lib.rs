//! Simulated GPU execution substrate for the ParallelSpikeSim reproduction.
//!
//! The original ParallelSpikeSim runs its neuron-update and STDP kernels as
//! CUDA grids and draws stochastic-STDP randomness from the on-board cuRAND
//! generator. This crate reproduces the *execution semantics* of that stack
//! on the CPU so the rest of the system is written exactly as it would be
//! against a real device:
//!
//! * [`Device`] — owns a persistent pool of worker threads (the "streaming
//!   multiprocessors") and launches data-parallel kernels over an index
//!   space, with a barrier between launches, mirroring the implicit
//!   synchronization between dependent CUDA kernel launches on one stream.
//! * [`DeviceBuffer`] — typed device memory with explicit host↔device copy
//!   operations and byte-accurate transfer accounting, standing in for
//!   `cudaMemcpy`. Every allocation is backed by the device's
//!   [`MemoryPool`] — size-class free lists that recycle dropped buffers
//!   the way a stream-ordered CUDA pool allocator does, with
//!   reuse/high-water/fragmentation accounting published as
//!   `device/pool_*` metrics.
//! * [`DeviceManager`] — enumerates N simulated devices sharing the host
//!   worker budget, the substrate of the sharded engine
//!   (`snn_core::sim::ShardedEngine`, DESIGN.md §16).
//! * [`Philox4x32`] / [`PhiloxStream`] — the counter-based random number
//!   generator family used by cuRAND. Counter-based streams make the
//!   stochastic STDP draws *independent of thread scheduling*: the draw for
//!   (synapse, step) is a pure function of (seed, synapse, step), so results
//!   are bit-identical at any worker count.
//! * [`KernelProfiler`] — per-kernel cumulative wall time and launch counts,
//!   standing in for `nvprof`, used by the Fig. 4 performance comparison.
//!
//! DESIGN.md §2 records why this CPU substitution preserves the paper's
//! behaviour, §10 documents the soundness analysis of the concurrency
//! primitives (loom models, sanitizer CI, the `snn-lint` rules), and §11
//! defines the telemetry names the device emits (kernel spans, `device/*`
//! counters and gauges).
//!
//! # Example
//!
//! ```
//! use gpu_device::{Device, DeviceConfig};
//!
//! let device = Device::new(DeviceConfig::default());
//! let mut buf = device.alloc_from_slice("v", &[0.0f64; 1024]);
//! device.launch_mut("add_one", &mut buf, |_tid, v| *v += 1.0);
//! assert!(buf.as_slice().iter().all(|&v| v == 1.0));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod buffer;
mod commit;
mod device;
mod fused;
mod grid;
#[cfg(all(loom, test))]
mod loom_tests;
mod manager;
mod memory;
mod philox;
mod pool;
mod profiler;
pub(crate) mod sync;

pub use buffer::{DeviceBuffer, TransferStats};
pub use commit::{
    AtomicGrid, CommitCounters, COMMIT_CAS_FAILURE, COMMIT_CAS_SUCCESS, COMMIT_LOAD, COMMIT_STATS,
};
pub use device::{Device, DeviceConfig, ScratchLease};
pub use manager::DeviceManager;
pub use memory::{MemoryPool, PoolStats};
pub use fused::{FusedCtx, SharedSlice};
pub use grid::LaunchDims;
pub use philox::{Philox4x32, PhiloxStream};
pub use pool::WorkerPool;
pub use profiler::{GaugeStats, KernelProfiler, KernelStats, ProfileReport};
