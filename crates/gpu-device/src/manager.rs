//! Multi-device enumeration: a [`DeviceManager`] brings up N simulated
//! devices that share the host's worker budget.
//!
//! A sharded engine (`snn_core::sim::ShardedEngine`) mounts one layer
//! partition per device; the manager's job is to make `N` devices
//! coexist without oversubscribing the host. [`Device::new_budgeted`]
//! solved this for replica groups under the assumption of *one device
//! per replica*; the manager generalizes the split to
//! `replica groups × devices per group` (see
//! [`Device::new_budgeted_split`]), so eval replicas that each mount a
//! multi-device shard set still keep the total pool-thread count within
//! [`DeviceConfig::host_parallelism`].
//!
//! Every device carries its own [`crate::MemoryPool`] and profiler;
//! [`DeviceManager::merged_profile`] and [`DeviceManager::pool_stats`]
//! fold them into one report, mirroring how the replica evaluator
//! aggregates per-replica profiles.
//!
//! # Example
//!
//! ```
//! use gpu_device::{DeviceConfig, DeviceManager};
//!
//! // Four simulated devices splitting the host worker budget.
//! let manager = DeviceManager::new(4, DeviceConfig::default());
//! assert_eq!(manager.len(), 4);
//! let host = DeviceConfig::host_parallelism();
//! let total: usize = manager.devices().iter().map(|d| d.workers()).sum();
//! // Every device gets at least one worker; beyond that the total
//! // stays within the host budget.
//! assert!(total <= host.max(manager.len()));
//! ```

use crate::device::{Device, DeviceConfig};
use crate::memory::PoolStats;
use crate::profiler::ProfileReport;

/// A set of simulated devices sharing one host worker budget — the
/// multi-device substrate of sharded execution.
#[derive(Debug)]
pub struct DeviceManager {
    devices: Vec<Device>,
}

impl DeviceManager {
    /// Enumerates `n_devices` devices, clamping each one's worker count
    /// so the total stays within the host budget (each device keeps a
    /// floor of one worker). Equivalent to
    /// [`DeviceManager::new_budgeted`] with a single replica group.
    ///
    /// # Panics
    ///
    /// Panics if `n_devices` is zero.
    #[must_use]
    pub fn new(n_devices: usize, config: DeviceConfig) -> Self {
        Self::new_budgeted(n_devices, config, 1)
    }

    /// Enumerates `n_devices` devices belonging to one of
    /// `replica_groups` concurrent groups (e.g. one eval replica each
    /// mounting an `n_devices`-way shard set). Each device's worker
    /// count is clamped to
    /// `max(1, host / (replica_groups × n_devices))`, so the whole
    /// fleet — every group's every device — stays within the host
    /// budget whenever the floor allows it.
    ///
    /// # Panics
    ///
    /// Panics if `n_devices` or `replica_groups` is zero.
    #[must_use]
    pub fn new_budgeted(n_devices: usize, config: DeviceConfig, replica_groups: usize) -> Self {
        assert!(n_devices > 0, "a device manager needs at least one device");
        let devices = (0..n_devices)
            .map(|_| Device::new_budgeted_split(config, replica_groups, n_devices))
            .collect();
        DeviceManager { devices }
    }

    /// The enumerated devices, in device-ordinal order.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Device `ordinal`.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal >= self.len()`.
    #[must_use]
    pub fn device(&self, ordinal: usize) -> &Device {
        &self.devices[ordinal]
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the manager holds no devices (never true — construction
    /// requires at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// One profiler report folding every device's kernels, counters and
    /// gauges together (same aggregation as cross-replica eval).
    #[must_use]
    pub fn merged_profile(&self) -> ProfileReport {
        let reports: Vec<ProfileReport> = self.devices.iter().map(Device::profile).collect();
        ProfileReport::merged(&reports)
    }

    /// Memory-pool accounting summed across every device.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        let stats: Vec<PoolStats> = self.devices.iter().map(Device::memory_stats).collect();
        PoolStats::merged(&stats)
    }

    /// Publishes every device's `device/pool_*` metrics (see
    /// [`Device::publish_pool_metrics`]).
    pub fn publish_pool_metrics(&self) {
        for d in &self.devices {
            d.publish_pool_metrics();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn manager_splits_the_worker_budget_across_devices() {
        let host = DeviceConfig::host_parallelism();
        let m = DeviceManager::new(4, DeviceConfig::default().with_workers(host * 2));
        assert_eq!(m.len(), 4);
        for d in m.devices() {
            assert_eq!(d.workers(), (host / 4).max(1));
        }
    }

    #[test]
    fn replica_groups_divide_the_budget_further() {
        // The regression the `Device::new_budgeted` one-device assumption
        // missed: 2 replica groups × 2 devices must split by 4, not 2.
        let host = DeviceConfig::host_parallelism();
        let m = DeviceManager::new_budgeted(2, DeviceConfig::default().with_workers(host * 2), 2);
        for d in m.devices() {
            assert_eq!(d.workers(), (host / 4).max(1));
        }
    }

    #[test]
    fn devices_never_drop_below_one_worker() {
        let m = DeviceManager::new_budgeted(64, DeviceConfig::default().with_workers(8), 64);
        assert!(m.devices().iter().all(|d| d.workers() == 1));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_is_rejected() {
        let _ = DeviceManager::new(0, DeviceConfig::default());
    }

    #[test]
    fn pool_stats_aggregate_across_devices() {
        let m = DeviceManager::new(2, DeviceConfig::serial());
        let a = m.device(0).alloc("a", 100, 0u32);
        let b = m.device(1).alloc("b", 100, 0u32);
        let s = m.pool_stats();
        assert_eq!(s.misses, 2);
        assert!(s.live_bytes >= 2 * 100 * 4);
        drop((a, b));
        let s = m.pool_stats();
        assert_eq!(s.releases, 2);
        assert!(s.high_water_bytes >= s.live_bytes);
    }
}
