//! The crate's single import point for concurrency primitives.
//!
//! Normal builds re-export the production primitives (`parking_lot`
//! mutexes/condvars, `crossbeam` channels, `std` barriers and threads).
//! Under `RUSTFLAGS="--cfg loom"` every one of them is swapped for its
//! [`snn_loom`] model-checked double, which lets `src/loom_tests.rs`
//! exhaustively interleave the worker pool, the fused-launch barrier
//! pipeline, and the profiler merge paths and prove them race- and
//! deadlock-free (see DESIGN.md §10).
//!
//! Everything that synchronizes in this crate must import from here — the
//! `snn-lint` `sync-shim` rule rejects direct `parking_lot::`/
//! `crossbeam::`/`std::sync::Barrier` imports elsewhere in the crate — so
//! the model checker sees every primitive the production build uses.

#[cfg(not(loom))]
pub(crate) use crossbeam::channel;
#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::sync::Barrier;
#[cfg(not(loom))]
pub(crate) use std::thread::{Builder as ThreadBuilder, JoinHandle};

#[cfg(loom)]
pub(crate) use snn_loom::channel;
#[cfg(loom)]
pub(crate) use snn_loom::sync::{Barrier, Condvar, Mutex};
#[cfg(loom)]
pub(crate) use snn_loom::thread::{Builder as ThreadBuilder, JoinHandle};
