//! Per-kernel timing, the simulator's stand-in for `nvprof`.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;

/// Accumulated statistics for one kernel name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Total wall time across launches, in nanoseconds.
    pub total_ns: u64,
    /// Total logical threads executed.
    pub threads: u64,
}

impl KernelStats {
    /// Mean wall time per launch.
    #[must_use]
    pub fn mean(&self) -> Duration {
        self.total_ns
            .checked_div(self.launches)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Total wall time as a [`Duration`].
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }
}

/// Collects per-kernel-name launch counts and cumulative wall time, plus
/// named monotonic counters for work that kernels *avoid* (skipped or
/// deferred items in lazy execution paths).
#[derive(Debug, Default)]
pub struct KernelProfiler {
    entries: Mutex<HashMap<&'static str, KernelStats>>,
    counters: Mutex<HashMap<&'static str, u64>>,
}

impl KernelProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch of `name` covering `threads` logical threads.
    pub fn record(&self, name: &'static str, threads: usize, elapsed: Duration) {
        let mut entries = self.entries.lock();
        let e = entries.entry(name).or_default();
        e.launches += 1;
        e.total_ns += elapsed.as_nanos() as u64;
        e.threads += threads as u64;
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn bump(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_default() += delta;
    }

    /// Snapshot of all kernels, sorted by descending total time.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let mut kernels: Vec<(String, KernelStats)> = self
            .entries
            .lock()
            .iter()
            .map(|(name, stats)| ((*name).to_owned(), *stats))
            .collect();
        kernels.sort_by_key(|(_, stats)| std::cmp::Reverse(stats.total_ns));
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, value)| ((*name).to_owned(), *value))
            .collect();
        counters.sort();
        ProfileReport { kernels, counters }
    }

    /// Clears all recorded entries and counters.
    pub fn reset(&self) {
        self.entries.lock().clear();
        self.counters.lock().clear();
    }
}

/// An ordered snapshot of kernel statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// (kernel name, stats), sorted by descending total time.
    pub kernels: Vec<(String, KernelStats)>,
    /// (counter name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Total time across all kernels.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.kernels.iter().map(|(_, s)| s.total_ns).sum())
    }

    /// Looks up one kernel's stats by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up one monotonic counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<28} {:>10} {:>14} {:>12}", "kernel", "launches", "total", "mean")?;
        for (name, s) in &self.kernels {
            writeln!(
                f,
                "{:<28} {:>10} {:>12.3?} {:>12.3?}",
                name,
                s.launches,
                s.total(),
                s.mean()
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>10}", "counter", "value")?;
            for (name, value) in &self.counters {
                writeln!(f, "{name:<28} {value:>10}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let p = KernelProfiler::new();
        p.record("lif_step", 1000, Duration::from_micros(10));
        p.record("lif_step", 1000, Duration::from_micros(30));
        p.record("stdp", 784, Duration::from_micros(5));
        let r = p.report();
        let lif = r.get("lif_step").unwrap();
        assert_eq!(lif.launches, 2);
        assert_eq!(lif.threads, 2000);
        assert_eq!(lif.total(), Duration::from_micros(40));
        assert_eq!(lif.mean(), Duration::from_micros(20));
    }

    #[test]
    fn report_sorted_by_total_time() {
        let p = KernelProfiler::new();
        p.record("small", 1, Duration::from_nanos(10));
        p.record("big", 1, Duration::from_millis(1));
        let r = p.report();
        assert_eq!(r.kernels[0].0, "big");
        assert_eq!(r.total(), Duration::from_nanos(1_000_010));
    }

    #[test]
    fn reset_clears() {
        let p = KernelProfiler::new();
        p.record("k", 1, Duration::from_nanos(1));
        p.bump("c", 3);
        p.reset();
        assert!(p.report().kernels.is_empty());
        assert!(p.report().counters.is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let p = KernelProfiler::new();
        p.bump("updates_deferred", 10);
        p.bump("dense_items_skipped", 784);
        p.bump("updates_deferred", 5);
        let r = p.report();
        assert_eq!(r.counter("updates_deferred"), Some(15));
        assert_eq!(r.counter("dense_items_skipped"), Some(784));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.counters[0].0, "dense_items_skipped");
        assert!(r.to_string().contains("updates_deferred"));
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(KernelStats::default().mean(), Duration::ZERO);
    }

    #[test]
    fn display_contains_kernel_names() {
        let p = KernelProfiler::new();
        p.record("encode_inputs", 784, Duration::from_micros(3));
        let text = p.report().to_string();
        assert!(text.contains("encode_inputs"));
    }
}
