//! Per-kernel timing, the simulator's stand-in for `nvprof`.

use crate::sync::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;

/// Accumulated statistics for one kernel name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Launches that actually dispatched to the worker pool (the rest ran
    /// inline because their estimated cost was below the dispatch
    /// threshold). Lets tests and benches verify the inline-vs-pool
    /// decision instead of inferring it from wall time.
    pub pooled_launches: u64,
    /// Total wall time across launches, in nanoseconds.
    pub total_ns: u64,
    /// Total logical threads executed.
    pub threads: u64,
    /// Estimated bytes read + written across launches. This is a *model*
    /// number derived from the launch shape (elements × element size), not
    /// a hardware measurement — launches over opaque index spaces record 0.
    pub bytes_touched: u64,
}

impl KernelStats {
    /// Mean wall time per launch.
    #[must_use]
    pub fn mean(&self) -> Duration {
        self.total_ns
            .checked_div(self.launches)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Total wall time as a [`Duration`].
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Estimated aggregate bandwidth (bytes touched / total time), or 0
    /// when nothing was timed.
    #[must_use]
    pub fn bytes_per_second(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.bytes_touched as f64 / (self.total_ns as f64 * 1e-9)
        }
    }

    /// Adds another accumulation of the same kernel (e.g. from a replica
    /// device) into this one. Every field is a sum, so merging is exact and
    /// order-independent.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.pooled_launches += other.pooled_launches;
        self.total_ns += other.total_ns;
        self.threads += other.threads;
        self.bytes_touched += other.bytes_touched;
    }
}

/// Accumulated samples of one named gauge: a per-launch scalar observation
/// (e.g. the fraction of inputs active this step) where the *mean* over
/// samples is the quantity of interest, unlike monotonic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct GaugeStats {
    /// Sum of all recorded samples.
    pub sum: f64,
    /// Number of samples recorded.
    pub samples: u64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl GaugeStats {
    /// Mean over all samples, or 0 when nothing was recorded.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Folds one observation into the accumulation.
    pub fn merge_sample(&mut self, value: f64) {
        if self.samples == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.samples += 1;
    }

    /// Merges another sample population of the same gauge (e.g. from a
    /// replica device): sums and counts add, extrema combine.
    pub fn merge(&mut self, other: &GaugeStats) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = *other;
            return;
        }
        self.sum += other.sum;
        self.samples += other.samples;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Collects per-kernel-name launch counts and cumulative wall time, plus
/// named monotonic counters for work that kernels *avoid* (skipped or
/// deferred items in lazy execution paths) and named gauges for sampled
/// scalars (e.g. active-list occupancy).
///
/// Keys are `String`s so a profiler can also absorb snapshots taken on
/// *other* devices (replica devices of a parallel evaluation run); the
/// per-launch hot path still avoids allocation once a kernel name has been
/// seen.
#[derive(Debug, Default)]
pub struct KernelProfiler {
    entries: Mutex<HashMap<String, KernelStats>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, GaugeStats>>,
}

/// `map[name] += ...` without allocating when the key already exists.
fn with_entry<V: Default>(map: &mut HashMap<String, V>, name: &str, f: impl FnOnce(&mut V)) {
    if let Some(v) = map.get_mut(name) {
        f(v);
    } else {
        let mut v = V::default();
        f(&mut v);
        map.insert(name.to_owned(), v);
    }
}

impl KernelProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch of `name` covering `threads` logical threads that
    /// touched an estimated `bytes` of data; `pooled` says whether it
    /// dispatched to the worker pool or ran inline.
    pub fn record(
        &self,
        name: &'static str,
        threads: usize,
        bytes: u64,
        pooled: bool,
        elapsed: Duration,
    ) {
        with_entry(&mut self.entries.lock(), name, |e| {
            e.launches += 1;
            e.pooled_launches += u64::from(pooled);
            e.total_ns += elapsed.as_nanos() as u64;
            e.threads += threads as u64;
            e.bytes_touched += bytes;
        });
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn bump(&self, name: &'static str, delta: u64) {
        with_entry(&mut self.counters.lock(), name, |c| *c += delta);
    }

    /// Records one sample of the named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        with_entry(&mut self.gauges.lock(), name, |g| g.merge_sample(value));
    }

    /// Merges a locally accumulated sample population into the named gauge.
    /// Hot loops (e.g. a per-step engine pipeline) fold their samples into
    /// a private [`GaugeStats`] and deposit it once per batch, instead of
    /// taking the profiler lock on every step.
    pub fn gauge_stats(&self, name: &'static str, stats: &GaugeStats) {
        with_entry(&mut self.gauges.lock(), name, |g: &mut GaugeStats| g.merge(stats));
    }

    /// Folds a snapshot taken on another profiler (typically a replica
    /// device of a parallel evaluation run) into this one, so one merged
    /// report covers every device instead of losing all but the primary
    /// device's numbers. Kernel stats and counters add; gauges merge their
    /// sample populations (sum, count, min, max).
    pub fn absorb(&self, report: &ProfileReport) {
        let mut entries = self.entries.lock();
        for (name, stats) in &report.kernels {
            with_entry(&mut entries, name, |e: &mut KernelStats| e.merge(stats));
        }
        drop(entries);
        let mut counters = self.counters.lock();
        for (name, value) in &report.counters {
            with_entry(&mut counters, name, |c| *c += value);
        }
        drop(counters);
        let mut gauges = self.gauges.lock();
        for (name, stats) in &report.gauges {
            with_entry(&mut gauges, name, |g: &mut GaugeStats| g.merge(stats));
        }
    }

    /// Snapshot of all kernels, sorted by descending total time.
    ///
    /// # Example
    ///
    /// ```
    /// use gpu_device::KernelProfiler;
    /// use std::time::Duration;
    ///
    /// let profiler = KernelProfiler::new();
    /// profiler.record("lif_step", 1000, 8000, true, Duration::from_micros(30));
    /// profiler.record("lif_step", 1000, 8000, false, Duration::from_micros(10));
    /// profiler.record("encode_inputs", 784, 0, false, Duration::from_micros(5));
    ///
    /// let report = profiler.report();
    /// assert_eq!(report.kernels[0].0, "lif_step"); // most expensive first
    /// let lif = report.get("lif_step").unwrap();
    /// assert_eq!(lif.launches, 2);
    /// assert_eq!(lif.pooled_launches, 1);
    /// assert_eq!(lif.mean(), Duration::from_micros(20));
    /// ```
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let mut kernels: Vec<(String, KernelStats)> = self
            .entries
            .lock()
            .iter()
            .map(|(name, stats)| (name.clone(), *stats))
            .collect();
        kernels.sort_by_key(|(_, stats)| std::cmp::Reverse(stats.total_ns));
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, value)| (name.clone(), *value))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, GaugeStats)> = self
            .gauges
            .lock()
            .iter()
            .map(|(name, stats)| (name.clone(), *stats))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        ProfileReport { kernels, counters, gauges }
    }

    /// Clears all recorded entries, counters and gauges.
    pub fn reset(&self) {
        self.entries.lock().clear();
        self.counters.lock().clear();
        self.gauges.lock().clear();
    }
}

/// An ordered snapshot of kernel statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// (kernel name, stats), sorted by descending total time.
    pub kernels: Vec<(String, KernelStats)>,
    /// (counter name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// (gauge name, stats), sorted by name.
    pub gauges: Vec<(String, GaugeStats)>,
}

impl ProfileReport {
    /// Total time across all kernels.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.kernels.iter().map(|(_, s)| s.total_ns).sum())
    }

    /// Looks up one kernel's stats by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up one monotonic counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up one gauge's stats by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<&GaugeStats> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Publishes this report into a [`snn_trace::MetricsHub`] under the
    /// DESIGN.md §11 names: kernels as `kernel/<name>/{launches,
    /// pooled_launches, total_ns, threads, bytes}` counters, device
    /// counters as `device/<name>` counters, device gauges as
    /// `device/<name>` gauges. Re-exporting an updated report of the same
    /// device overwrites kernel/counter values (they are cumulative
    /// snapshots) and folds gauge populations.
    pub fn export_metrics(&self, hub: &snn_trace::MetricsHub) {
        for (name, k) in &self.kernels {
            hub.record_kernel(
                name,
                k.launches,
                k.pooled_launches,
                k.total_ns,
                k.threads,
                k.bytes_touched,
            );
        }
        for (name, value) in &self.counters {
            hub.set_counter(&format!("device/{name}"), *value);
        }
        for (name, g) in &self.gauges {
            hub.merge_gauge(&format!("device/{name}"), g.sum, g.samples, g.min, g.max);
        }
    }

    /// Merges per-device snapshots (e.g. one per eval replica) into one
    /// report covering every device: kernel stats and counters sum, gauges
    /// combine their sample populations, and the result is re-sorted the
    /// way [`KernelProfiler::report`] sorts (kernels by descending total
    /// time, counters and gauges by name) so the merged report is
    /// independent of the order the snapshots arrive in.
    #[must_use]
    pub fn merged<'a, I: IntoIterator<Item = &'a ProfileReport>>(reports: I) -> ProfileReport {
        let acc = KernelProfiler::new();
        for report in reports {
            acc.absorb(report);
        }
        acc.report()
    }
}

/// Renders a byte count with a binary-prefix unit for the summary table.
fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<28} {:>10} {:>8} {:>14} {:>12} {:>12}",
            "kernel", "launches", "pooled", "total", "mean", "bytes"
        )?;
        for (name, s) in &self.kernels {
            writeln!(
                f,
                "{:<28} {:>10} {:>8} {:>12.3?} {:>12.3?} {:>12}",
                name,
                s.launches,
                s.pooled_launches,
                s.total(),
                s.mean(),
                human_bytes(s.bytes_touched)
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>10}", "counter", "value")?;
            for (name, value) in &self.counters {
                writeln!(f, "{name:<28} {value:>10}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(
                f,
                "{:<28} {:>10} {:>10} {:>10} {:>10}",
                "gauge", "mean", "min", "max", "samples"
            )?;
            for (name, g) in &self.gauges {
                writeln!(
                    f,
                    "{:<28} {:>10.4} {:>10.4} {:>10.4} {:>10}",
                    name,
                    g.mean(),
                    g.min,
                    g.max,
                    g.samples
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let p = KernelProfiler::new();
        p.record("lif_step", 1000, 8000, true, Duration::from_micros(10));
        p.record("lif_step", 1000, 8000, false, Duration::from_micros(30));
        p.record("stdp", 784, 0, false, Duration::from_micros(5));
        let r = p.report();
        let lif = r.get("lif_step").unwrap();
        assert_eq!(lif.launches, 2);
        assert_eq!(lif.pooled_launches, 1);
        assert_eq!(lif.threads, 2000);
        assert_eq!(lif.bytes_touched, 16_000);
        assert_eq!(lif.total(), Duration::from_micros(40));
        assert_eq!(lif.mean(), Duration::from_micros(20));
    }

    #[test]
    fn export_metrics_publishes_schema_names() {
        let p = KernelProfiler::new();
        p.record("lif_step", 1000, 8000, true, Duration::from_micros(10));
        p.bump("skipped_synapses", 42);
        p.gauge("active_fraction", 0.25);
        p.gauge("active_fraction", 0.75);
        let hub = snn_trace::MetricsHub::new();
        p.report().export_metrics(&hub);
        assert_eq!(
            hub.get("kernel/lif_step/launches").unwrap().as_f64() as u64,
            1
        );
        assert_eq!(
            hub.get("kernel/lif_step/total_ns").unwrap().as_f64() as u64,
            10_000
        );
        assert_eq!(
            hub.get("device/skipped_synapses").unwrap().as_f64() as u64,
            42
        );
        let snn_trace::MetricValue::Gauge { samples, min, max, .. } =
            hub.get("device/active_fraction").unwrap()
        else {
            panic!("expected gauge")
        };
        assert_eq!(samples, 2);
        assert_eq!(min, 0.25);
        assert_eq!(max, 0.75);
    }

    #[test]
    fn report_sorted_by_total_time() {
        let p = KernelProfiler::new();
        p.record("small", 1, 0, false, Duration::from_nanos(10));
        p.record("big", 1, 0, false, Duration::from_millis(1));
        let r = p.report();
        assert_eq!(r.kernels[0].0, "big");
        assert_eq!(r.total(), Duration::from_nanos(1_000_010));
    }

    #[test]
    fn reset_clears() {
        let p = KernelProfiler::new();
        p.record("k", 1, 0, false, Duration::from_nanos(1));
        p.bump("c", 3);
        p.gauge("g", 0.5);
        p.reset();
        assert!(p.report().kernels.is_empty());
        assert!(p.report().counters.is_empty());
        assert!(p.report().gauges.is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let p = KernelProfiler::new();
        p.bump("updates_deferred", 10);
        p.bump("dense_items_skipped", 784);
        p.bump("updates_deferred", 5);
        let r = p.report();
        assert_eq!(r.counter("updates_deferred"), Some(15));
        assert_eq!(r.counter("dense_items_skipped"), Some(784));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.counters[0].0, "dense_items_skipped");
        assert!(r.to_string().contains("updates_deferred"));
    }

    #[test]
    fn gauges_track_mean_min_max() {
        let p = KernelProfiler::new();
        p.gauge("active_fraction", 0.02);
        p.gauge("active_fraction", 0.06);
        p.gauge("active_fraction", 0.04);
        let r = p.report();
        let g = r.gauge("active_fraction").unwrap();
        assert_eq!(g.samples, 3);
        assert!((g.mean() - 0.04).abs() < 1e-12);
        assert_eq!(g.min, 0.02);
        assert_eq!(g.max, 0.06);
        assert!(r.to_string().contains("active_fraction"));
        assert!(r.gauge("missing").is_none());
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(KernelStats::default().mean(), Duration::ZERO);
        assert_eq!(GaugeStats::default().mean(), 0.0);
        assert_eq!(KernelStats::default().bytes_per_second(), 0.0);
    }

    #[test]
    fn bandwidth_estimate_uses_bytes_and_time() {
        let p = KernelProfiler::new();
        p.record("k", 1, 1_000_000, true, Duration::from_millis(1));
        let r = p.report();
        let bps = r.get("k").unwrap().bytes_per_second();
        assert!((bps - 1e9).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn human_bytes_renders_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn merged_reports_sum_kernels_counters_and_gauges() {
        let a = KernelProfiler::new();
        a.record("deliver", 100, 800, true, Duration::from_micros(10));
        a.bump("skipped", 5);
        a.gauge("active_fraction", 0.2);
        let b = KernelProfiler::new();
        b.record("deliver", 50, 400, false, Duration::from_micros(30));
        b.record("encode", 10, 0, false, Duration::from_micros(1));
        b.bump("skipped", 7);
        b.bump("extra", 1);
        b.gauge("active_fraction", 0.6);
        let merged = ProfileReport::merged([&a.report(), &b.report()]);
        let deliver = merged.get("deliver").unwrap();
        assert_eq!(deliver.launches, 2);
        assert_eq!(deliver.pooled_launches, 1);
        assert_eq!(deliver.threads, 150);
        assert_eq!(deliver.bytes_touched, 1200);
        assert_eq!(deliver.total(), Duration::from_micros(40));
        assert!(merged.get("encode").is_some());
        assert_eq!(merged.counter("skipped"), Some(12));
        assert_eq!(merged.counter("extra"), Some(1));
        let g = merged.gauge("active_fraction").unwrap();
        assert_eq!(g.samples, 2);
        assert!((g.mean() - 0.4).abs() < 1e-12);
        assert_eq!(g.min, 0.2);
        assert_eq!(g.max, 0.6);
        // Merge order must not matter.
        let swapped = ProfileReport::merged([&b.report(), &a.report()]);
        assert_eq!(merged.counters, swapped.counters);
        assert_eq!(merged.gauges.len(), swapped.gauges.len());
        assert_eq!(merged.get("deliver"), swapped.get("deliver"));
    }

    #[test]
    fn absorb_folds_into_live_profiler() {
        let primary = KernelProfiler::new();
        primary.record("k", 1, 0, false, Duration::from_micros(2));
        let replica = KernelProfiler::new();
        replica.record("k", 3, 16, true, Duration::from_micros(4));
        replica.gauge("g", 1.0);
        primary.absorb(&replica.report());
        let r = primary.report();
        let k = r.get("k").unwrap();
        assert_eq!(k.launches, 2);
        assert_eq!(k.threads, 4);
        assert_eq!(r.gauge("g").unwrap().samples, 1);
    }

    #[test]
    fn gauge_merge_handles_empty_sides() {
        let mut empty = GaugeStats::default();
        let mut full = GaugeStats::default();
        full.merge_sample(2.0);
        empty.merge(&full);
        assert_eq!(empty.samples, 1);
        assert_eq!(empty.min, 2.0);
        let before = full;
        full.merge(&GaugeStats::default());
        assert_eq!(full, before);
    }

    #[test]
    fn display_contains_kernel_names() {
        let p = KernelProfiler::new();
        p.record("encode_inputs", 784, 0, false, Duration::from_micros(3));
        let text = p.report().to_string();
        assert!(text.contains("encode_inputs"));
        assert!(text.contains("pooled"));
    }
}
