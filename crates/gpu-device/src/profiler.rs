//! Per-kernel timing, the simulator's stand-in for `nvprof`.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;

/// Accumulated statistics for one kernel name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Launches that actually dispatched to the worker pool (the rest ran
    /// inline because their estimated cost was below the dispatch
    /// threshold). Lets tests and benches verify the inline-vs-pool
    /// decision instead of inferring it from wall time.
    pub pooled_launches: u64,
    /// Total wall time across launches, in nanoseconds.
    pub total_ns: u64,
    /// Total logical threads executed.
    pub threads: u64,
    /// Estimated bytes read + written across launches. This is a *model*
    /// number derived from the launch shape (elements × element size), not
    /// a hardware measurement — launches over opaque index spaces record 0.
    pub bytes_touched: u64,
}

impl KernelStats {
    /// Mean wall time per launch.
    #[must_use]
    pub fn mean(&self) -> Duration {
        self.total_ns
            .checked_div(self.launches)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Total wall time as a [`Duration`].
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Estimated aggregate bandwidth (bytes touched / total time), or 0
    /// when nothing was timed.
    #[must_use]
    pub fn bytes_per_second(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.bytes_touched as f64 / (self.total_ns as f64 * 1e-9)
        }
    }
}

/// Accumulated samples of one named gauge: a per-launch scalar observation
/// (e.g. the fraction of inputs active this step) where the *mean* over
/// samples is the quantity of interest, unlike monotonic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct GaugeStats {
    /// Sum of all recorded samples.
    pub sum: f64,
    /// Number of samples recorded.
    pub samples: u64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl GaugeStats {
    /// Mean over all samples, or 0 when nothing was recorded.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }
}

/// Collects per-kernel-name launch counts and cumulative wall time, plus
/// named monotonic counters for work that kernels *avoid* (skipped or
/// deferred items in lazy execution paths) and named gauges for sampled
/// scalars (e.g. active-list occupancy).
#[derive(Debug, Default)]
pub struct KernelProfiler {
    entries: Mutex<HashMap<&'static str, KernelStats>>,
    counters: Mutex<HashMap<&'static str, u64>>,
    gauges: Mutex<HashMap<&'static str, GaugeStats>>,
}

impl KernelProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch of `name` covering `threads` logical threads that
    /// touched an estimated `bytes` of data; `pooled` says whether it
    /// dispatched to the worker pool or ran inline.
    pub fn record(
        &self,
        name: &'static str,
        threads: usize,
        bytes: u64,
        pooled: bool,
        elapsed: Duration,
    ) {
        let mut entries = self.entries.lock();
        let e = entries.entry(name).or_default();
        e.launches += 1;
        e.pooled_launches += u64::from(pooled);
        e.total_ns += elapsed.as_nanos() as u64;
        e.threads += threads as u64;
        e.bytes_touched += bytes;
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn bump(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_default() += delta;
    }

    /// Records one sample of the named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        let mut gauges = self.gauges.lock();
        let g = gauges.entry(name).or_default();
        if g.samples == 0 {
            g.min = value;
            g.max = value;
        } else {
            g.min = g.min.min(value);
            g.max = g.max.max(value);
        }
        g.sum += value;
        g.samples += 1;
    }

    /// Snapshot of all kernels, sorted by descending total time.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let mut kernels: Vec<(String, KernelStats)> = self
            .entries
            .lock()
            .iter()
            .map(|(name, stats)| ((*name).to_owned(), *stats))
            .collect();
        kernels.sort_by_key(|(_, stats)| std::cmp::Reverse(stats.total_ns));
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, value)| ((*name).to_owned(), *value))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, GaugeStats)> = self
            .gauges
            .lock()
            .iter()
            .map(|(name, stats)| ((*name).to_owned(), *stats))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        ProfileReport { kernels, counters, gauges }
    }

    /// Clears all recorded entries, counters and gauges.
    pub fn reset(&self) {
        self.entries.lock().clear();
        self.counters.lock().clear();
        self.gauges.lock().clear();
    }
}

/// An ordered snapshot of kernel statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// (kernel name, stats), sorted by descending total time.
    pub kernels: Vec<(String, KernelStats)>,
    /// (counter name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// (gauge name, stats), sorted by name.
    pub gauges: Vec<(String, GaugeStats)>,
}

impl ProfileReport {
    /// Total time across all kernels.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.kernels.iter().map(|(_, s)| s.total_ns).sum())
    }

    /// Looks up one kernel's stats by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up one monotonic counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up one gauge's stats by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<&GaugeStats> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// Renders a byte count with a binary-prefix unit for the summary table.
fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<28} {:>10} {:>8} {:>14} {:>12} {:>12}",
            "kernel", "launches", "pooled", "total", "mean", "bytes"
        )?;
        for (name, s) in &self.kernels {
            writeln!(
                f,
                "{:<28} {:>10} {:>8} {:>12.3?} {:>12.3?} {:>12}",
                name,
                s.launches,
                s.pooled_launches,
                s.total(),
                s.mean(),
                human_bytes(s.bytes_touched)
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>10}", "counter", "value")?;
            for (name, value) in &self.counters {
                writeln!(f, "{name:<28} {value:>10}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(
                f,
                "{:<28} {:>10} {:>10} {:>10} {:>10}",
                "gauge", "mean", "min", "max", "samples"
            )?;
            for (name, g) in &self.gauges {
                writeln!(
                    f,
                    "{:<28} {:>10.4} {:>10.4} {:>10.4} {:>10}",
                    name,
                    g.mean(),
                    g.min,
                    g.max,
                    g.samples
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let p = KernelProfiler::new();
        p.record("lif_step", 1000, 8000, true, Duration::from_micros(10));
        p.record("lif_step", 1000, 8000, false, Duration::from_micros(30));
        p.record("stdp", 784, 0, false, Duration::from_micros(5));
        let r = p.report();
        let lif = r.get("lif_step").unwrap();
        assert_eq!(lif.launches, 2);
        assert_eq!(lif.pooled_launches, 1);
        assert_eq!(lif.threads, 2000);
        assert_eq!(lif.bytes_touched, 16_000);
        assert_eq!(lif.total(), Duration::from_micros(40));
        assert_eq!(lif.mean(), Duration::from_micros(20));
    }

    #[test]
    fn report_sorted_by_total_time() {
        let p = KernelProfiler::new();
        p.record("small", 1, 0, false, Duration::from_nanos(10));
        p.record("big", 1, 0, false, Duration::from_millis(1));
        let r = p.report();
        assert_eq!(r.kernels[0].0, "big");
        assert_eq!(r.total(), Duration::from_nanos(1_000_010));
    }

    #[test]
    fn reset_clears() {
        let p = KernelProfiler::new();
        p.record("k", 1, 0, false, Duration::from_nanos(1));
        p.bump("c", 3);
        p.gauge("g", 0.5);
        p.reset();
        assert!(p.report().kernels.is_empty());
        assert!(p.report().counters.is_empty());
        assert!(p.report().gauges.is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let p = KernelProfiler::new();
        p.bump("updates_deferred", 10);
        p.bump("dense_items_skipped", 784);
        p.bump("updates_deferred", 5);
        let r = p.report();
        assert_eq!(r.counter("updates_deferred"), Some(15));
        assert_eq!(r.counter("dense_items_skipped"), Some(784));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.counters[0].0, "dense_items_skipped");
        assert!(r.to_string().contains("updates_deferred"));
    }

    #[test]
    fn gauges_track_mean_min_max() {
        let p = KernelProfiler::new();
        p.gauge("active_fraction", 0.02);
        p.gauge("active_fraction", 0.06);
        p.gauge("active_fraction", 0.04);
        let r = p.report();
        let g = r.gauge("active_fraction").unwrap();
        assert_eq!(g.samples, 3);
        assert!((g.mean() - 0.04).abs() < 1e-12);
        assert_eq!(g.min, 0.02);
        assert_eq!(g.max, 0.06);
        assert!(r.to_string().contains("active_fraction"));
        assert!(r.gauge("missing").is_none());
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(KernelStats::default().mean(), Duration::ZERO);
        assert_eq!(GaugeStats::default().mean(), 0.0);
        assert_eq!(KernelStats::default().bytes_per_second(), 0.0);
    }

    #[test]
    fn bandwidth_estimate_uses_bytes_and_time() {
        let p = KernelProfiler::new();
        p.record("k", 1, 1_000_000, true, Duration::from_millis(1));
        let r = p.report();
        let bps = r.get("k").unwrap().bytes_per_second();
        assert!((bps - 1e9).abs() / 1e9 < 1e-6);
    }

    #[test]
    fn human_bytes_renders_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn display_contains_kernel_names() {
        let p = KernelProfiler::new();
        p.record("encode_inputs", 784, 0, false, Duration::from_micros(3));
        let text = p.report().to_string();
        assert!(text.contains("encode_inputs"));
        assert!(text.contains("pooled"));
    }
}
