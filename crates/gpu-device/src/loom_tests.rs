//! Model-checked concurrency tests, compiled only under
//! `RUSTFLAGS="--cfg loom"` (see `src/sync.rs` and DESIGN.md §10).
//!
//! Each `snn_loom::model` call below explores **every** schedule of the
//! threads it spawns (or every schedule within the stated preemption bound)
//! and fails on any data race, deadlock, panic, or leaked thread. These are
//! the machine-checked versions of the prose SAFETY arguments in `pool.rs`,
//! `device.rs`, and `fused.rs`:
//!
//! - the latch protocol itself (count/notify/wait plus the poison hand-off)
//!   is explored **unbounded** on the bare `Latch`
//!   (`latch_protocol_is_exhaustively_correct`,
//!   `latch_poison_hand_off_is_exhaustively_correct`) — the bare primitive
//!   is small enough for true exhaustion, whereas models that go through
//!   the full pool (channels + persistent workers + teardown) use a
//!   preemption bound of 3, which still covers every bug reachable with at
//!   most three preemptive context switches (empirically, almost all real
//!   concurrency bugs need ≤2; see DESIGN.md §10);
//! - the `WorkerPool::run` transmute is sound because `run` cannot return
//!   while any worker can still observe the job
//!   (`run_return_is_ordered_after_worker_writes`);
//! - a panicking job still counts the latch down, so `run` re-raises
//!   instead of deadlocking (`panicking_job_counts_down_and_pool_survives`);
//! - disjoint per-worker index partitions never race
//!   (`slice_mut_launch_partitions_are_race_free`,
//!   `fused_two_stage_pipeline_is_race_free`), and the checker really can
//!   see the race when the discipline is broken
//!   (`missing_stage_sync_is_reported_as_a_race`);
//! - the profiler's shared-map merge and `DeviceBuffer`'s transfer-stats
//!   hand-off are race-free under concurrent use.

use crate::sync::Mutex;
use crate::{Device, DeviceConfig, SharedSlice, WorkerPool};
use snn_loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A 2-worker device whose every launch dispatches to the pool (threshold
/// 0) with 1-element blocks, so tiny models still exercise the pooled path.
fn pooled_device() -> Device {
    Device::new(DeviceConfig {
        workers: 2,
        block_size: 1,
        min_parallel_items: 0,
        profile: false,
    })
}

#[test]
fn latch_protocol_is_exhaustively_correct() {
    // Unbounded exploration of the bare latch: two "workers" count down,
    // the "dispatcher" waits. In every schedule the waiter returns only
    // after both increments are visible — the heart of the `run` borrow
    // argument, with nothing else in the state space.
    snn_loom::model(|| {
        let latch = Arc::new(crate::pool::Latch::new(2));
        let count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = Arc::clone(&latch);
            let c = Arc::clone(&count);
            handles.push(snn_loom::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                l.count_down(None);
            }));
        }
        assert!(latch.wait().is_none());
        // Both increments happen-before the wait return in every schedule.
        assert_eq!(count.load(Ordering::SeqCst), 2);
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn latch_poison_hand_off_is_exhaustively_correct() {
    // Unbounded exploration of the poison path (the latch-deadlock fix):
    // whichever order the two count_downs land in, the waiter always
    // returns (no deadlock) and always receives the one deposited payload.
    snn_loom::model(|| {
        let latch = Arc::new(crate::pool::Latch::new(2));
        let l1 = Arc::clone(&latch);
        let t1 = snn_loom::thread::spawn(move || {
            l1.count_down(Some(Box::new("poisoned")));
        });
        let l2 = Arc::clone(&latch);
        let t2 = snn_loom::thread::spawn(move || {
            l2.count_down(None);
        });
        let poison = latch.wait().expect("the deposited payload must surface");
        assert_eq!(*poison.downcast_ref::<&str>().unwrap(), "poisoned");
        t1.join().unwrap();
        t2.join().unwrap();
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn latch_counts_every_worker_before_run_returns() {
    snn_loom::model_bounded(3, || {
        let pool = WorkerPool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.run(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        // `run` returning means the latch saw both count_downs: in every
        // schedule both jobs have fully executed.
        assert_eq!(count.load(Ordering::SeqCst), 2);
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn run_return_is_ordered_after_worker_writes() {
    // The checked version of the transmute SAFETY comment in
    // `WorkerPool::run`: after `run` returns, the dispatching thread
    // reuses the very elements the workers wrote, *without further
    // synchronization*. If any worker access could be concurrent with
    // anything after `run` returns, the AccessLog vector clocks would
    // flag it; if a worker could still be running, the write-after-run
    // below would race. Preemption-bounded (3): the persistent pool's
    // channel and teardown put unbounded exploration out of reach.
    snn_loom::model_bounded(3, || {
        let mut data = vec![0usize; 2];
        let view = SharedSlice::new(&mut data);
        let pool = WorkerPool::new(2);
        pool.run(|wid| {
            // SAFETY: each worker writes only its own element.
            unsafe { view.write(wid, wid + 10) };
        });
        // Dispatcher side: read and overwrite both elements. Sound only
        // if every worker access happens-before `run`'s return.
        for i in 0..2 {
            // SAFETY: the launch has completed; no worker holds the view.
            let v = unsafe { view.read(i) };
            assert_eq!(v, i + 10);
            // SAFETY: as above.
            unsafe { view.write(i, 0) };
        }
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn panicking_job_counts_down_and_pool_survives() {
    // The regression model for the latch-poisoning fix: worker 0 panics
    // mid-job. In every explored schedule `run` must (a) return control by
    // re-raising rather than deadlocking on the latch, and (b) leave the
    // pool fully usable for the next launch. Preemption-bounded (3): two
    // back-to-back launches through the full pool (see module docs); the
    // poison hand-off itself is explored unbounded in
    // `latch_poison_hand_off_is_exhaustively_correct`.
    snn_loom::model_bounded(3, || {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|wid| {
                if wid == 0 {
                    panic!("seeded job panic");
                }
            });
        }))
        .expect_err("the job panic must re-raise out of run()");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "seeded job panic");
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.run(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn slice_mut_launch_partitions_are_race_free() {
    // SharedMut aliasing discipline on the standard block-strided launch:
    // 2 workers × 1-element blocks over 2 elements — each element is
    // handed to exactly one worker, proven race-free in every explored
    // schedule (preemption bound 3, see module docs).
    snn_loom::model_bounded(3, || {
        let device = pooled_device();
        let mut data = vec![0u64; 2];
        device.launch_slice_mut("loom_slice", &mut data, |i, v| {
            *v = i as u64 + 1;
        });
        assert_eq!(data, vec![1, 2]);
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn fused_two_stage_pipeline_is_race_free() {
    // The fused-launch shape from the engine's step pipeline: stage 1
    // writes per-worker partitions, `ctx.sync()` (the Barrier), stage 2
    // reads the *other* worker's stage-1 element. Only the barrier orders
    // those cross-worker accesses, exactly like the encode→deliver handoff
    // in the real step. Preemption-bounded (3): the visible-op count makes
    // full enumeration intractable, and bound 3 already covers every
    // two-context-switch bug class (see DESIGN.md §10).
    snn_loom::model_bounded(3, || {
        let device = pooled_device();
        let mut a = vec![0usize; 2];
        let mut b = vec![0usize; 2];
        let av = SharedSlice::new(&mut a);
        let bv = SharedSlice::new(&mut b);
        device.launch_fused("loom_fused", usize::MAX, 0, |ctx| {
            for i in ctx.chunk(2) {
                // SAFETY: chunk() partitions 0..2 across the workers.
                unsafe { av.write(i, i + 1) };
            }
            ctx.sync();
            for i in ctx.chunk(2) {
                // SAFETY: reads of `av` race no writes (stage 1 is
                // complete after sync); writes of `bv` are partitioned.
                let other = unsafe { av.read(1 - i) };
                unsafe { bv.write(i, other * 10) };
            }
        });
        drop((av, bv));
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![20, 10]);
    });
}

#[test]
fn missing_stage_sync_is_reported_as_a_race() {
    // Negative control for the test above: remove the barrier and the
    // cross-worker read must be flagged. This proves the checker can see
    // through the whole Device → pool → SharedSlice stack, so the green
    // tests above are meaningful.
    let err = catch_unwind(AssertUnwindSafe(|| {
        snn_loom::model_bounded(3, || {
            let device = pooled_device();
            let mut a = vec![0usize; 2];
            let av = SharedSlice::new(&mut a);
            device.launch_fused("loom_fused_racy", usize::MAX, 0, |ctx| {
                for i in ctx.chunk(2) {
                    // SAFETY-VIOLATION UNDER TEST: the write below is
                    // deliberately unsynchronized with the read of the
                    // same element by the other worker.
                    unsafe { av.write(i, i + 1) };
                }
                // ctx.sync() deliberately omitted.
                for i in ctx.chunk(2) {
                    let _ = unsafe { av.read(1 - i) };
                }
            });
        });
    }))
    .expect_err("the mispartitioned fused launch must be caught");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

#[test]
fn gauge_stats_merge_is_race_free_and_order_independent() {
    // Cross-replica profiler aggregation (PR 3): two threads fold gauge
    // samples into one shared profiler map. Every schedule must be
    // race-free and produce the same merged statistics.
    snn_loom::model(|| {
        let profiler = Arc::new(crate::KernelProfiler::new());
        let p1 = Arc::clone(&profiler);
        let t = snn_loom::thread::spawn(move || {
            p1.gauge("active_fraction", 0.25);
        });
        profiler.gauge("active_fraction", 0.75);
        t.join().unwrap();
        let report = profiler.report();
        let stats = report.gauge("active_fraction").expect("gauge recorded");
        assert_eq!(stats.samples, 2);
        assert_eq!(stats.min, 0.25);
        assert_eq!(stats.max, 0.75);
        assert!((stats.mean() - 0.5).abs() < 1e-12);
    });
    assert!(snn_loom::last_execution_count() > 1);
}

/// A model of `AtomicGrid::update` (commit.rs) on a loom-checked atomic:
/// load → fold → bit-elide or CAS, retrying the pure fold on contention.
/// `compare_exchange` stands in for `compare_exchange_weak` — the model
/// checker has no spurious failures, and the retry loop is identical.
fn model_fold(cell: &AtomicU64, f: impl Fn(f64) -> f64) -> (f64, bool) {
    let mut old = cell.load(Ordering::SeqCst);
    loop {
        let new = f(f64::from_bits(old)).to_bits();
        if new == old {
            // Bit elision: the skipped store linearizes at the load.
            return (f64::from_bits(new), true);
        }
        match cell.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return (f64::from_bits(new), false),
            Err(current) => old = current,
        }
    }
}

#[test]
fn commit_cas_fold_loses_no_update() {
    // The ledger-commit property of DESIGN.md §14: two presentation
    // workers fold their update chains into one shared weight cell
    // through the CAS retry loop. In every schedule both chains land
    // exactly once — a retried fold re-runs on the freshly loaded value,
    // so no interleaving can lose or double-apply an update.
    snn_loom::model(|| {
        let cell = Arc::new(AtomicU64::new(1.0f64.to_bits()));
        let c = Arc::clone(&cell);
        let t = snn_loom::thread::spawn(move || {
            model_fold(&c, |g| g + 2.0);
        });
        model_fold(&cell, |g| g + 0.5);
        t.join().unwrap();
        // 1.0 + 2.0 + 0.5 is exact in either order.
        assert_eq!(f64::from_bits(cell.load(Ordering::SeqCst)), 3.5);
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn commit_bit_elision_linearizes_at_the_load() {
    // One worker's fold is a no-op on the value it loads (the
    // low-precision grid snapped it back), so it elides the store; the
    // other folds a real update. In every schedule the elided fold
    // observed a legitimate cell value and the real update is never lost.
    snn_loom::model(|| {
        let cell = Arc::new(AtomicU64::new(1.0f64.to_bits()));
        let c = Arc::clone(&cell);
        let t = snn_loom::thread::spawn(move || {
            model_fold(&c, |g| g + 1.0);
        });
        let (seen, elided) = model_fold(&cell, |g| g);
        t.join().unwrap();
        assert!(elided, "an identity fold must skip its store");
        assert!(seen == 1.0 || seen == 2.0, "elided fold saw a torn value: {seen}");
        assert_eq!(f64::from_bits(cell.load(Ordering::SeqCst)), 2.0);
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn commit_cursor_claims_each_presentation_once() {
    // The steal protocol of the parallel trainer's record phase: workers
    // claim presentation slots by advancing a shared cursor. Every slot
    // is claimed exactly once in every schedule, whichever worker gets it.
    snn_loom::model(|| {
        let cursor = Arc::new(AtomicUsize::new(0));
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cursor = Arc::clone(&cursor);
            let claims = Arc::clone(&claims);
            handles.push(snn_loom::thread::spawn(move || {
                loop {
                    let slot = cursor.fetch_add(1, Ordering::SeqCst);
                    if slot >= 3 {
                        break;
                    }
                    claims[slot].fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (slot, claim) in claims.iter().enumerate() {
            assert_eq!(claim.load(Ordering::SeqCst), 1, "slot {slot} claim count");
        }
    });
    assert!(snn_loom::last_execution_count() > 1);
}

#[test]
fn poisoned_commit_leaves_no_torn_cell_and_next_round_proceeds() {
    // The poison path of the commit protocol: one commit worker panics,
    // the other folds its chain. The launch must re-raise (never
    // deadlock), the cell must hold the surviving fold's exact value (CAS
    // commits are all-or-nothing — no torn cell in any schedule), and the
    // pool must run the next round's commit normally. Preemption-bounded
    // (3): two launches through the full pool, as in the other pool-level
    // models (see module docs).
    snn_loom::model_bounded(3, || {
        let pool = WorkerPool::new(2);
        let cell = Arc::new(AtomicU64::new(1.0f64.to_bits()));
        let c = &cell;
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|wid| {
                if wid == 0 {
                    panic!("commit worker poisoned");
                }
                model_fold(c, |g| g + 2.0);
            });
        }))
        .expect_err("the poisoned commit must re-raise out of run()");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "commit worker poisoned");
        assert_eq!(f64::from_bits(cell.load(Ordering::SeqCst)), 3.0);
        // The next round's commit proceeds on the same pool.
        pool.run(|_| {
            model_fold(c, |g| g + 0.25);
        });
        assert_eq!(f64::from_bits(cell.load(Ordering::SeqCst)), 3.5);
    });
}

#[test]
fn transfer_stats_handoff_is_race_free() {
    // DeviceBuffer's transfer accounting: two threads allocate buffers
    // against one shared `TransferStats`; the totals must add up in every
    // schedule (the Mutex hand-off is the property under test).
    snn_loom::model(|| {
        let stats = Arc::new(Mutex::new(crate::TransferStats::default()));
        let s1 = Arc::clone(&stats);
        let t = snn_loom::thread::spawn(move || {
            let _buf = crate::DeviceBuffer::new("a", vec![0u8; 3], s1);
        });
        let _buf = crate::DeviceBuffer::new("b", vec![0u8; 5], Arc::clone(&stats));
        t.join().unwrap();
        let snap = *stats.lock();
        assert_eq!(snap.htod_bytes, 8);
        assert_eq!(snap.htod_count, 2);
    });
    assert!(snn_loom::last_execution_count() > 1);
}
