//! A persistent worker-thread pool with scoped (borrow-friendly) dispatch.
//!
//! Kernel launches happen millions of times per training run (one per
//! simulation step per kernel), so spawning OS threads per launch is not an
//! option. This pool keeps its workers alive for the lifetime of the
//! [`crate::Device`] and hands each launch to every worker through a
//! channel; the caller blocks on a countdown latch until all workers have
//! finished, which is what makes lending stack-borrowed closures to the
//! workers sound (the same technique scoped thread pools such as rayon's
//! use internally).
//!
//! All primitives come from [`crate::sync`], so `--cfg loom` builds swap in
//! the model checker: `src/loom_tests.rs` exhaustively interleaves this
//! pool and proves the latch protocol, the `run` lifetime argument, and the
//! panic path below.

use crate::sync::{channel, Condvar, Mutex, ThreadBuilder};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A panic payload carried from a worker back to the dispatching thread.
pub(crate) type Poison = Box<dyn std::any::Any + Send + 'static>;

struct LatchState {
    remaining: usize,
    /// First worker panic of this launch, if any; re-raised by the waiter.
    poison: Option<Poison>,
}

/// A countdown latch: `wait` returns once `count_down` has been called the
/// configured number of times, handing back the first panic payload any
/// caller deposited.
///
/// `pub(crate)` so `loom_tests.rs` can model the bare latch protocol
/// exhaustively (the full pool has too many visible operations for an
/// unbounded exploration).
pub(crate) struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

impl Latch {
    pub(crate) fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState { remaining: count, poison: None }),
            all_done: Condvar::new(),
        }
    }

    pub(crate) fn count_down(&self, poison: Option<Poison>) {
        let mut state = self.state.lock();
        state.remaining -= 1;
        if state.poison.is_none() {
            state.poison = poison;
        }
        if state.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    pub(crate) fn wait(&self) -> Option<Poison> {
        let mut state = self.state.lock();
        while state.remaining > 0 {
            self.all_done.wait(&mut state);
        }
        state.poison.take()
    }
}

/// The closure reference shipped to workers. The `'static` lifetime is a lie
/// told once, inside [`WorkerPool::run`], where blocking on the latch keeps
/// the borrowed environment alive for the closure's entire execution.
type Job = &'static (dyn Fn(usize) + Sync);

struct Message {
    job: Job,
    latch: Arc<Latch>,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    senders: Vec<channel::Sender<Message>>,
    handles: Vec<crate::sync::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let (tx, rx) = channel::unbounded::<Message>();
            senders.push(tx);
            handles.push(
                ThreadBuilder::new()
                    .name(format!("gpu-sm-{worker_id}"))
                    .spawn(move || {
                        for msg in rx {
                            // A panicking job must still count down, or the
                            // dispatcher deadlocks in `latch.wait()` (and the
                            // `run` borrow argument below would be void). The
                            // payload travels back and re-raises on the
                            // dispatching thread instead.
                            let result =
                                catch_unwind(AssertUnwindSafe(|| (msg.job)(worker_id)));
                            msg.latch.count_down(result.err());
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(worker_id)` on every worker concurrently and blocks until all
    /// calls return.
    ///
    /// `f` may borrow from the caller's stack: the blocking wait below keeps
    /// those borrows alive while any worker can still observe them.
    ///
    /// # Panics
    ///
    /// If a worker's call panics, the first panic payload is re-raised here
    /// after **every** worker has finished the launch — the latch still
    /// counts down on the panic path, so the pool stays usable and the
    /// borrow argument is unaffected.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        // A `pool`-category span nested inside the kernel span that
        // `Device::timed` records: the gap between the two is the fixed
        // dispatch cost the `min_parallel_items` threshold amortizes.
        // Per-dispatch like kernel spans, so it rides behind
        // `Detail::Steps`; at the default phase detail each dispatch pays
        // two relaxed loads and nothing else.
        let _dispatch_span = (snn_trace::enabled()
            && snn_trace::detail() == snn_trace::Detail::Steps)
            .then(|| snn_trace::span_cat("pool/run", "pool"));
        let latch = Arc::new(Latch::new(self.workers()));
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: only the reference's lifetime is erased; the pointee type
        // is unchanged. `f` lives on this stack frame and `latch.wait()`
        // below does not return until every worker has called `count_down`,
        // which each does strictly after its last use of `job` — including
        // when the job panics, because the worker loop catches the unwind
        // and counts down with the payload. Hence no worker can observe the
        // reference after `run` returns and the borrow never outlives `f`.
        // Checked property: the `run_return_is_ordered_after_worker_writes`
        // and `panicking_job_counts_down_*` models in loom_tests.rs.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), Job>(f_ref)
        };
        for tx in &self.senders {
            tx.send(Message { job, latch: Arc::clone(&latch) })
                .expect("worker thread terminated unexpectedly");
        }
        if let Some(poison) = latch.wait() {
            resume_unwind(poison);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // closing the channels stops the workers
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers()).finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_once() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn borrows_from_stack_are_visible() {
        let pool = WorkerPool::new(3);
        let data = [1usize, 2, 3];
        let sum = AtomicUsize::new(0);
        pool.run(|wid| {
            sum.fetch_add(data[wid], Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn sequential_runs_are_ordered() {
        let pool = WorkerPool::new(2);
        let value = AtomicUsize::new(0);
        pool.run(|_| {
            value.fetch_add(1, Ordering::SeqCst);
        });
        let after_first = value.load(Ordering::SeqCst);
        pool.run(|_| {
            value.fetch_add(10, Ordering::SeqCst);
        });
        assert_eq!(after_first, 2);
        assert_eq!(value.load(Ordering::SeqCst), 22);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn many_launches_do_not_leak_or_deadlock() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..10_000 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 40_000);
    }

    #[test]
    fn panicking_job_does_not_deadlock_and_reraises() {
        let pool = WorkerPool::new(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|wid| {
                if wid == 1 {
                    panic!("job failure on worker {wid}");
                }
            });
        }))
        .expect_err("worker panic must propagate to the dispatcher");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("job failure"), "unexpected payload: {msg}");
        // The pool must remain fully usable after a poisoned launch.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn all_workers_panicking_reports_first_and_recovers() {
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|_| panic!("every worker fails"));
            }))
            .expect_err("panic must propagate");
            assert!(err.downcast_ref::<&str>().is_some()
                || err.downcast_ref::<String>().is_some());
        }
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
