//! CUDA-style launch geometry.

use serde::{Deserialize, Serialize};

/// Grid/block launch dimensions, mirroring a 1-D CUDA launch
/// `kernel<<<grid, block>>>`.
///
/// The simulated device schedules whole blocks onto workers, so the block
/// size controls work-distribution granularity exactly like on hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchDims {
    /// Number of blocks in the grid.
    pub grid: usize,
    /// Threads per block.
    pub block: usize,
}

impl LaunchDims {
    /// The block size used when the caller does not specify one. 256 is the
    /// conventional CUDA default for memory-bound kernels.
    pub const DEFAULT_BLOCK: usize = 256;

    /// Computes dimensions covering `n` logical threads with the given
    /// block size (the last block may be partially full).
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    #[must_use]
    pub fn cover(n: usize, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        LaunchDims { grid: n.div_ceil(block), block }
    }

    /// Dimensions covering `n` threads with the default block size.
    #[must_use]
    pub fn for_threads(n: usize) -> Self {
        Self::cover(n, Self::DEFAULT_BLOCK)
    }

    /// Total threads launched (including padding in the last block).
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.grid * self.block
    }

    /// The half-open global-id range `[start, end)` covered by `block_idx`,
    /// clipped to `n` logical threads.
    #[must_use]
    pub fn block_range(&self, block_idx: usize, n: usize) -> std::ops::Range<usize> {
        let start = (block_idx * self.block).min(n);
        let end = ((block_idx + 1) * self.block).min(n);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let d = LaunchDims::cover(1000, 256);
        assert_eq!(d.grid, 4);
        assert_eq!(d.total_threads(), 1024);
    }

    #[test]
    fn exact_fit_has_no_padding() {
        let d = LaunchDims::cover(512, 256);
        assert_eq!(d.grid, 2);
        assert_eq!(d.total_threads(), 512);
    }

    #[test]
    fn block_ranges_partition_the_index_space() {
        let n = 1000;
        let d = LaunchDims::cover(n, 256);
        let mut covered = vec![false; n];
        for b in 0..d.grid {
            for i in d.block_range(b, n) {
                assert!(!covered[i], "index {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn empty_launch_is_empty() {
        let d = LaunchDims::cover(0, 128);
        assert_eq!(d.grid, 0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = LaunchDims::cover(10, 0);
    }
}
