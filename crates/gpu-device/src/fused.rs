//! Cooperative fused launches: the building blocks that let one worker-pool
//! dispatch execute several barrier-separated kernel stages, the simulated
//! analogue of CUDA kernel fusion with cooperative grid synchronisation.
//!
//! A classic launch pays the fixed dispatch latency once per kernel; a
//! simulation step made of 5–7 small kernels pays it 5–7 times. A *fused*
//! launch hands every worker a [`FusedCtx`] and runs one closure that walks
//! through multiple stages, calling [`FusedCtx::sync`] between stages that
//! have cross-worker data dependencies. Determinism is unchanged: each
//! stage still partitions its index space so no two workers touch the same
//! element, and [`crate::Device::launch_fused`] runs the same closure
//! inline (one worker, no-op syncs) when the estimated cost is below the
//! dispatch threshold.

use crate::sync::Barrier;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker execution context inside a fused launch.
///
/// Provides the worker's identity, two index-space partitioning helpers
/// ([`chunk`](Self::chunk) and [`strided`](Self::strided)) and the
/// cross-stage barrier ([`sync`](Self::sync)). When the launch runs inline
/// there is exactly one worker and `sync` is a no-op, so fused kernels are
/// written once and behave identically on both paths.
pub struct FusedCtx<'a> {
    worker: usize,
    workers: usize,
    barrier: Option<&'a Barrier>,
    /// Stage-sync telemetry: worker 0 counts barrier crossings here when
    /// the launch is traced (`device/fused_stage_syncs` in DESIGN.md §11).
    /// `None` (the default) keeps `sync` on the untraced fast path.
    syncs: Option<&'a AtomicU64>,
}

impl<'a> FusedCtx<'a> {
    /// Context for the inline (single-worker) path.
    pub(crate) fn inline() -> Self {
        FusedCtx { worker: 0, workers: 1, barrier: None, syncs: None }
    }

    /// Context for worker `worker` of a pooled dispatch over `workers`
    /// workers sharing `barrier`.
    pub(crate) fn pooled(worker: usize, workers: usize, barrier: &'a Barrier) -> Self {
        FusedCtx { worker, workers, barrier: Some(barrier), syncs: None }
    }

    /// Attaches the stage-sync counter (telemetry-only; one counter per
    /// launch, written by worker 0 so every stage is counted exactly once).
    pub(crate) fn with_sync_counter(mut self, counter: &'a AtomicU64) -> Self {
        self.syncs = Some(counter);
        self
    }

    /// This worker's id in `0..workers()`.
    #[must_use]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Number of workers executing this launch (1 on the inline path).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Barrier between stages: blocks until every worker of the launch has
    /// arrived, establishing happens-before for all writes made in the
    /// previous stage. No-op on the inline path.
    pub fn sync(&self) {
        if self.worker == 0 {
            if let Some(counter) = self.syncs {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(barrier) = self.barrier {
            barrier.wait();
        }
    }

    /// This worker's contiguous share of an index space `0..n`: the spaces
    /// of all workers partition `0..n`, sizes differ by at most one, and
    /// ranges are ascending in worker id. Use for stages where each worker
    /// should stream a cache-friendly contiguous region.
    #[must_use]
    pub fn chunk(&self, n: usize) -> Range<usize> {
        let per = n / self.workers;
        let rem = n % self.workers;
        let start = self.worker * per + self.worker.min(rem);
        let len = per + usize::from(self.worker < rem);
        start..start + len
    }

    /// This worker's strided share of an index space `0..n`: indices
    /// `worker, worker + workers, …`. Use for stages whose per-index cost
    /// varies, so expensive indices spread over all workers.
    pub fn strided(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (self.worker..n).step_by(self.workers)
    }
}

/// A shareable view over a mutable slice for fused kernels.
///
/// Fused stages need several slices mutable at once from every worker; the
/// borrow checker cannot see the per-stage index partitioning, so this
/// wrapper moves the disjointness obligation to the caller, exactly like
/// raw device pointers in a real CUDA kernel.
///
/// # Safety contract
///
/// All accessors are `unsafe`; the caller must guarantee that within one
/// stage (between two [`FusedCtx::sync`] points, or launch start/end) no
/// element is written by one worker while any other worker reads or writes
/// it. Conflicting accesses in *different* stages are fine — the barrier
/// orders them.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    /// Under the model checker every access is reported, per element, to a
    /// vector-clock race detector, turning the prose contract above into a
    /// checked property (loom_tests.rs exercises both the race-free fused
    /// pipeline and a deliberately mispartitioned negative model).
    #[cfg(loom)]
    log: std::sync::Arc<snn_loom::cell::AccessLog>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by index per the type-level contract; the
// wrapper itself hands out only caller-chosen elements.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps `slice`; the wrapper borrows it mutably for `'a`.
    #[must_use]
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(loom)]
            log: std::sync::Arc::new(snn_loom::cell::AccessLog::new(slice.len())),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other worker may access element `i` in this
    /// stage (see the type-level contract).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "SharedSlice index {i} out of range {}", self.len);
        #[cfg(loom)]
        self.log.write(i);
        // SAFETY: in bounds and unaliased per this function's contract.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Reads element `i` by copy.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other worker may *write* element `i` in this
    /// stage.
    #[must_use]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len, "SharedSlice index {i} out of range {}", self.len);
        #[cfg(loom)]
        self.log.read(i);
        // SAFETY: in bounds and no concurrent writer per this function's
        // contract.
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other worker may access element `i` in this
    /// stage.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len, "SharedSlice index {i} out of range {}", self.len);
        #[cfg(loom)]
        self.log.write(i);
        // SAFETY: in bounds and unaliased per this function's contract.
        unsafe { self.ptr.add(i).write(value) };
    }

    /// Mutable access to the sub-slice `range`.
    ///
    /// # Safety
    ///
    /// `range` must be in bounds, and no other worker may access any
    /// element of `range` in this stage.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(
            range.start <= range.end && range.end <= self.len,
            "SharedSlice range {range:?} out of range {}",
            self.len
        );
        #[cfg(loom)]
        for i in range.clone() {
            self.log.write(i);
        }
        // SAFETY: the range is in bounds and unaliased per this function's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn chunk_partitions_exactly() {
        for workers in 1..=9usize {
            for n in [0usize, 1, 7, 64, 1000] {
                let barrier = Barrier::new(1);
                let mut covered = vec![0u32; n];
                for w in 0..workers {
                    let ctx = FusedCtx { worker: w, workers, barrier: Some(&barrier), syncs: None };
                    for i in ctx.chunk(n) {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "workers={workers} n={n}");
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let barrier = Barrier::new(1);
        let sizes: Vec<usize> = (0..5)
            .map(|w| FusedCtx { worker: w, workers: 5, barrier: Some(&barrier), syncs: None }.chunk(13).len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn strided_partitions_exactly() {
        let barrier = Barrier::new(1);
        let mut covered = vec![0u32; 23];
        for w in 0..4 {
            let ctx = FusedCtx { worker: w, workers: 4, barrier: Some(&barrier), syncs: None };
            for i in ctx.strided(23) {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn inline_ctx_owns_the_whole_space() {
        let ctx = FusedCtx::inline();
        assert_eq!(ctx.worker(), 0);
        assert_eq!(ctx.workers(), 1);
        assert_eq!(ctx.chunk(10), 0..10);
        assert_eq!(ctx.strided(3).collect::<Vec<_>>(), vec![0, 1, 2]);
        ctx.sync(); // must not deadlock or panic
    }

    #[test]
    fn shared_slice_round_trips() {
        let mut data = vec![0.0f64; 8];
        let view = SharedSlice::new(&mut data);
        assert_eq!(view.len(), 8);
        assert!(!view.is_empty());
        // SAFETY: single-threaded test, disjoint by construction.
        unsafe {
            view.write(3, 1.5);
            *view.get_mut(4) += 2.0;
            view.slice_mut(5..7).fill(9.0);
            assert_eq!(view.read(3), 1.5);
        }
        assert_eq!(data, vec![0.0, 0.0, 0.0, 1.5, 2.0, 9.0, 9.0, 0.0]);
    }
}
