//! Atomic conductance-commit primitives for concurrent plasticity.
//!
//! The shared-atomics training mode folds many presentations' deferred STDP
//! ledgers into **one** shared synapse matrix from several pool workers at
//! once. On a real device this is an `atomicCAS` loop over the weight words;
//! here [`AtomicGrid`] reinterprets the matrix's `&mut [f64]` storage as
//! `&[AtomicU64]` for the duration of the commit kernel, and
//! [`AtomicGrid::update`] runs the standard compare-exchange fetch-update
//! loop (with low-precision *bit elision*: an update chain that lands back
//! on the same grid code skips the store entirely — common for the 2-/4-bit
//! Q formats, where most candidate updates are rounded away).
//!
//! Every `Ordering::` used by the commit path is one of the named constants
//! below; the `snn-lint` `atomic-ordering` rule rejects raw ordering
//! literals in this scope, so the soundness argument lives in exactly one
//! place. See DESIGN.md §14 for the protocol and the ordering table.

use std::sync::atomic::{AtomicU64, Ordering};

/// Ordering of the optimistic initial load and of every in-loop re-read of
/// a grid cell.
///
/// `Relaxed` is sound here because the commit protocol never publishes
/// non-atomic data through a grid cell: each cell is an independent value
/// fold (`g ← f(g)`), the closure `f` reads nothing but its argument, and
/// the worker pool's launch barrier (an acquire/release pair in
/// `pool.rs`) is what publishes the committed matrix to the host thread
/// after the kernel returns.
pub const COMMIT_LOAD: Ordering = Ordering::Relaxed;

/// Success ordering of the commit compare-exchange. `Relaxed` for the same
/// reason as [`COMMIT_LOAD`]: the CAS only has to be atomic on its own
/// cell, not order any other memory.
pub const COMMIT_CAS_SUCCESS: Ordering = Ordering::Relaxed;

/// Failure ordering of the commit compare-exchange (the returned current
/// value feeds the next loop iteration, nothing else).
pub const COMMIT_CAS_FAILURE: Ordering = Ordering::Relaxed;

/// Ordering of the grid's internal instrumentation counters (applied /
/// elided / retry tallies). Pure statistics: only totals are read, after
/// the launch barrier.
pub const COMMIT_STATS: Ordering = Ordering::Relaxed;

/// Commit instrumentation: how many update chains were applied, how many
/// stores the bit-elision fast path skipped, and how many CAS retries the
/// fold paid under contention. `retries / applied` is the commit-contention
/// gauge the trainer publishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitCounters {
    /// Update chains applied (one per [`AtomicGrid::update`] call).
    pub applied: u64,
    /// Stores skipped because the folded value bit-matched the loaded one.
    pub elided: u64,
    /// Compare-exchange failures (another worker moved the cell first).
    pub retries: u64,
}

impl std::ops::Add for CommitCounters {
    type Output = CommitCounters;

    fn add(self, rhs: CommitCounters) -> CommitCounters {
        CommitCounters {
            applied: self.applied + rhs.applied,
            elided: self.elided + rhs.elided,
            retries: self.retries + rhs.retries,
        }
    }
}

/// An atomic bit-view over a conductance matrix's `f64` storage, alive for
/// one commit kernel.
///
/// Construction takes the storage by **exclusive** borrow, so for the
/// grid's lifetime no non-atomic access to the same cells can exist — the
/// view is a pure reinterpretation, not a copy, and dropping it returns the
/// buffer to ordinary `&mut [f64]` use with every committed value in place.
pub struct AtomicGrid<'a> {
    cells: &'a [AtomicU64],
    applied: AtomicU64,
    elided: AtomicU64,
    retries: AtomicU64,
}

impl<'a> AtomicGrid<'a> {
    /// Wraps `data` in an atomic view.
    ///
    /// # Panics
    ///
    /// Panics if the platform's `AtomicU64` layout differs from `f64`'s
    /// (never on the supported 64-bit targets; the assert keeps the
    /// transmute honest).
    #[must_use]
    pub fn new(data: &'a mut [f64]) -> Self {
        assert_eq!(
            (std::mem::size_of::<AtomicU64>(), std::mem::align_of::<AtomicU64>()),
            (std::mem::size_of::<f64>(), std::mem::align_of::<f64>()),
            "AtomicU64 must be layout-compatible with f64 for the bit view"
        );
        let len = data.len();
        let ptr = data.as_mut_ptr().cast::<AtomicU64>();
        // SAFETY: `ptr` comes from a live `&mut [f64]` of length `len`, so
        // it is non-null, properly aligned (asserted layout-identical
        // above) and valid for `len * 8` bytes for the lifetime `'a`. The
        // exclusive borrow is held by this struct for all of `'a`, so no
        // other reference (atomic or not) can alias the cells, and every
        // access through the view is atomic. f64 and u64 have no invalid
        // bit patterns, so reinterpreting in either direction is value-safe.
        let cells = unsafe { std::slice::from_raw_parts(ptr, len) };
        AtomicGrid {
            cells,
            applied: AtomicU64::new(0),
            elided: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Number of grid cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically reads cell `idx`.
    #[must_use]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.cells[idx].load(COMMIT_LOAD))
    }

    /// Atomically folds `f` into cell `idx` with a compare-exchange loop
    /// and returns the committed value.
    ///
    /// `f` must be a pure function of its argument: it re-runs on every
    /// CAS retry. When the folded value bit-matches the loaded one the
    /// store is skipped (*bit elision*) — equivalent to a successful
    /// `CAS(old, old)` linearized at the load, so no update is lost.
    pub fn update(&self, idx: usize, f: impl Fn(f64) -> f64) -> f64 {
        let cell = &self.cells[idx];
        let mut retries = 0u64;
        let mut old = cell.load(COMMIT_LOAD);
        let committed = loop {
            let new = f(f64::from_bits(old)).to_bits();
            if new == old {
                self.elided.fetch_add(1, COMMIT_STATS);
                break new;
            }
            match cell.compare_exchange_weak(old, new, COMMIT_CAS_SUCCESS, COMMIT_CAS_FAILURE) {
                Ok(_) => break new,
                Err(current) => {
                    retries += 1;
                    old = current;
                }
            }
        };
        self.applied.fetch_add(1, COMMIT_STATS);
        if retries > 0 {
            self.retries.fetch_add(retries, COMMIT_STATS);
        }
        f64::from_bits(committed)
    }

    /// The accumulated instrumentation totals. Call after the commit
    /// kernel's launch barrier; concurrent callers see a momentary tally.
    #[must_use]
    pub fn counters(&self) -> CommitCounters {
        CommitCounters {
            applied: self.applied.load(COMMIT_STATS),
            elided: self.elided.load(COMMIT_STATS),
            retries: self.retries.load(COMMIT_STATS),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};

    #[test]
    fn update_folds_and_returns_committed_value() {
        let mut data = vec![1.0, 2.0, 3.0];
        let grid = AtomicGrid::new(&mut data);
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_empty());
        assert_eq!(grid.update(1, |g| g + 0.5), 2.5);
        assert_eq!(grid.load(1), 2.5);
        drop(grid);
        assert_eq!(data, vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn bit_elision_counts_skipped_stores() {
        let mut data = vec![0.25; 4];
        let grid = AtomicGrid::new(&mut data);
        for i in 0..4 {
            grid.update(i, |g| g); // identity: every store elided
        }
        grid.update(0, |g| g + 0.25);
        let c = grid.counters();
        assert_eq!((c.applied, c.elided, c.retries), (5, 4, 0));
    }

    #[test]
    fn concurrent_folds_lose_no_update() {
        // 4 pool workers × 64 chains of +1.0 onto 8 shared cells: every
        // fold must land exactly once whatever the interleaving.
        let device = Device::new(DeviceConfig {
            workers: 4,
            min_parallel_items: 1,
            ..DeviceConfig::default()
        });
        let mut data = vec![0.0f64; 8];
        let grid = AtomicGrid::new(&mut data);
        device.launch_weighted("commit_atomic", 64, 1, |k| {
            grid.update(k % 8, |g| g + 1.0);
        });
        let c = grid.counters();
        drop(grid);
        assert!(data.iter().all(|&g| g == 8.0), "lost updates: {data:?}");
        assert_eq!(c.applied, 64);
        assert_eq!(c.elided, 0);
    }

    #[test]
    fn counters_sum_with_add() {
        let a = CommitCounters { applied: 1, elided: 2, retries: 3 };
        let b = CommitCounters { applied: 10, elided: 20, retries: 30 };
        assert_eq!(a + b, CommitCounters { applied: 11, elided: 22, retries: 33 });
    }
}
