//! Property tests: the device's worker-count invariance and the Philox
//! generator's statistical/addressing properties.

use gpu_device::{Device, DeviceConfig, Philox4x32};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any per-element map gives identical results at any worker count,
    /// including when the launch crosses the inline-threshold boundary.
    #[test]
    fn launch_results_worker_invariant(n in 1usize..10_000, workers in 2usize..6, seed in 0u64..1000) {
        let run = |w: usize| {
            let device = Device::new(DeviceConfig::default().with_workers(w));
            let mut buf = device.alloc("p", n, 0u64);
            device.launch_mut("hash", &mut buf, |i, v| {
                *v = Philox4x32::new(seed).at(0, i as u64, 0) as u64;
            });
            buf.copy_to_host()
        };
        prop_assert_eq!(run(1), run(workers));
    }

    /// Deterministic reduce: block-ordered combination is associative-safe
    /// for integer sums at any worker count.
    #[test]
    fn reduce_worker_invariant(n in 1usize..50_000, workers in 2usize..6) {
        let serial = Device::new(DeviceConfig::default().with_workers(1))
            .reduce("s", n, 0u64, |i| (i as u64).wrapping_mul(2_654_435_761), u64::wrapping_add);
        let parallel = Device::new(DeviceConfig::default().with_workers(workers))
            .reduce("p", n, 0u64, |i| (i as u64).wrapping_mul(2_654_435_761), u64::wrapping_add);
        prop_assert_eq!(serial, parallel);
    }

    /// Philox blocks never collide across distinct counters (spot check on
    /// random pairs).
    #[test]
    fn philox_blocks_distinct(seed in 0u64..1000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assume!(a != b);
        let g = Philox4x32::new(seed);
        prop_assert_ne!(g.block([a as u32, (a >> 32) as u32, 0, 0]),
                        g.block([b as u32, (b >> 32) as u32, 0, 0]));
    }

    /// Stream draws are always in [0, 1).
    #[test]
    fn uniforms_in_unit_interval(seed in 0u64..1000, stream in 0u64..1000) {
        let g = Philox4x32::new(seed);
        let mut s = g.stream(stream);
        for _ in 0..64 {
            let u = s.next_f64();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Rows-mut partitions exactly: every row written once, by row index.
    #[test]
    fn rows_mut_partitions(rows in 1usize..200, row_len in 1usize..64, workers in 1usize..5) {
        let device = Device::new(DeviceConfig::default().with_workers(workers));
        let mut data = vec![u32::MAX; rows * row_len];
        device.launch_rows_mut("rows", &mut data, row_len, |r, row| {
            for v in row.iter_mut() {
                // A non-MAX value would mean the element was visited twice.
                assert_eq!(*v, u32::MAX, "element visited twice");
                *v = r as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v as usize, i / row_len);
        }
    }

    /// Gather-rows launches (the lazy-plasticity settle kernels) touch
    /// exactly the listed rows, in both buffers, at any worker count.
    #[test]
    fn gather_rows_worker_invariant(
        rows in 2usize..120,
        row_len in 1usize..48,
        stride in 1usize..5,
        workers in 1usize..5,
    ) {
        let gathered: Vec<u32> = (0..rows).step_by(stride).map(|r| r as u32).collect();
        let device = Device::new(DeviceConfig::default().with_workers(workers));
        let mut a = vec![0u64; rows * row_len];
        let mut b = vec![0u32; rows * row_len];
        // Force the pool path with a large work hint.
        device.launch_gather_rows_mut("gather", &gathered, &mut a, &mut b, row_len, 1 << 20,
            |k, r, a_row, b_row| {
                for (x, y) in a_row.iter_mut().zip(b_row.iter_mut()) {
                    *x = (r as u64) << 32 | k as u64;
                    *y += 1;
                }
            });
        for r in 0..rows {
            let listed = gathered.binary_search(&(r as u32)).is_ok();
            for i in 0..row_len {
                let expect_b = u32::from(listed);
                prop_assert_eq!(b[r * row_len + i], expect_b, "row {} visit count", r);
                if listed {
                    prop_assert_eq!((a[r * row_len + i] >> 32) as usize, r);
                }
            }
        }
    }
}

/// Bit-reproducibility of full trainer outcomes across the worker-count ×
/// plasticity-execution matrix: the acceptance gate of the lazy engine.
/// The 784 × 8 network exceeds the pool dispatch threshold, so workers > 1
/// genuinely exercise parallel settle kernels.
mod trainer_matrix {
    use gpu_device::{Device, DeviceConfig};
    use snn_core::config::{NetworkConfig, PlasticityExecution, Preset, RuleKind};
    use snn_datasets::synthetic_mnist;
    use snn_learning::{Trainer, TrainerConfig};

    fn outcome(workers: usize, exec: PlasticityExecution) -> (Vec<f64>, Vec<u8>, f64) {
        let device = Device::new(DeviceConfig::default().with_workers(workers));
        let network = NetworkConfig::from_preset(Preset::Bit8, 784, 8)
            .with_rule(RuleKind::Stochastic)
            .with_plasticity(exec);
        let mut cfg = TrainerConfig::new(network);
        cfg.t_learn_ms = 100.0;
        cfg.n_train_images = 12;
        cfg.n_labeling = 8;
        cfg.n_inference = 8;
        cfg.seed = 3;
        let dataset = synthetic_mnist(12, 16, 5);
        let out = Trainer::new(cfg, &device).run(&dataset);
        (out.synapses.as_flat().to_vec(), out.labels, out.accuracy)
    }

    #[test]
    fn trainer_outcome_invariant_across_workers_and_execution() {
        let baseline = outcome(1, PlasticityExecution::Eager);
        for workers in [1usize, 2, 8] {
            for exec in [PlasticityExecution::Eager, PlasticityExecution::Lazy] {
                let got = outcome(workers, exec);
                assert_eq!(
                    baseline, got,
                    "trainer outcome diverged at workers={workers}, exec={exec}"
                );
            }
        }
    }
}
