//! Property and scenario tests for the device [`MemoryPool`]
//! (ISSUE 10): pooled allocations never alias live buffers, the
//! accounting invariants hold under arbitrary alloc/free sequences, and
//! the fragmentation/reuse life cycle behaves as documented in
//! DESIGN.md §16.

use gpu_device::{Device, DeviceBuffer, DeviceConfig, DeviceManager, PoolStats};
use proptest::prelude::*;

/// The data pointer of a buffer's backing store — the identity that must
/// never be shared by two live buffers.
fn addr(buf: &DeviceBuffer<u64>) -> usize {
    buf.as_slice().as_ptr() as usize
}

fn check_invariants(s: &PoolStats) {
    assert!(
        s.high_water_bytes >= s.live_bytes,
        "high water {} below live {}",
        s.high_water_bytes,
        s.live_bytes
    );
    assert!(s.reuse_hits <= s.releases, "cannot reuse more blocks than were ever released");
    let frag = s.fragmentation();
    assert!((0.0..=1.0).contains(&frag), "fragmentation {frag} out of [0,1]");
    if s.free_bytes == 0 {
        assert_eq!(s.free_blocks, 0, "no bytes parked but {} blocks listed", s.free_blocks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of allocations and frees: no two live
    /// buffers ever share a backing store, buffers always come back
    /// fully re-initialized, and every intermediate stats snapshot
    /// satisfies the accounting invariants.
    #[test]
    fn alloc_free_sequences_never_alias_live_buffers(
        ops in prop::collection::vec((0usize..2000, any::<bool>()), 1..120),
    ) {
        let device = Device::new(DeviceConfig::serial());
        let mut live: Vec<DeviceBuffer<u64>> = Vec::new();
        for (round, (len, free_first)) in ops.into_iter().enumerate() {
            if free_first && !live.is_empty() {
                // Free the oldest live buffer; its block may be reused
                // by the very next allocation — but only after it left
                // the live set.
                live.remove(0);
            }
            let buf = device.alloc("prop", len, round as u64);
            prop_assert!(buf.as_slice().iter().all(|&v| v == round as u64),
                "reused block leaked stale contents");
            if len > 0 {
                for other in &live {
                    prop_assert_ne!(addr(other), addr(&buf),
                        "two live buffers share one backing store");
                }
            }
            live.push(buf);
            check_invariants(&device.memory_stats());
        }
        drop(live);
        let end = device.memory_stats();
        check_invariants(&end);
        // Everything was dropped: all pool-managed bytes are parked free.
        prop_assert_eq!(end.live_bytes, 0);
    }

    /// The reuse accounting ties out: hits + misses equals the number of
    /// allocations served, and same-class churn after warm-up stops
    /// missing entirely.
    #[test]
    fn steady_state_churn_reuses_instead_of_allocating(
        len in 1usize..4096, rounds in 2usize..40,
    ) {
        let device = Device::new(DeviceConfig::serial());
        for _ in 0..rounds {
            drop(device.alloc("churn", len, 0u64));
        }
        let s = device.memory_stats();
        prop_assert_eq!(s.misses, 1, "same-class churn should miss exactly once");
        prop_assert_eq!(s.reuse_hits, rounds as u64 - 1);
        prop_assert_eq!(s.releases, rounds as u64);
        check_invariants(&s);
    }
}

/// The documented fragmentation-reuse life cycle: parking blocks raises
/// `fragmentation`, reacquiring the same class drives it back down, and
/// `trim` releases the parked bytes to the host allocator.
#[test]
fn fragmentation_rises_on_free_and_falls_on_reuse() {
    let device = Device::new(DeviceConfig::serial());
    let bufs: Vec<_> = (0..4).map(|i| device.alloc("frag", 1024, i as u32)).collect();
    assert_eq!(device.memory_stats().fragmentation(), 0.0, "nothing freed yet");
    drop(bufs);
    let parked = device.memory_stats();
    assert_eq!(parked.fragmentation(), 1.0, "all managed bytes parked");
    assert_eq!(parked.free_blocks, 4);

    // Same-class reacquisition: fragmentation falls as shelves drain.
    let again: Vec<_> = (0..3).map(|_| device.alloc("frag2", 1000, 0u32)).collect();
    let s = device.memory_stats();
    assert_eq!(s.reuse_hits, 3);
    assert!((s.fragmentation() - 0.25).abs() < 1e-12, "one of four blocks still parked");
    check_invariants(&s);
    drop(again);

    let freed = device.trim_memory();
    assert_eq!(freed, 4 * 1024 * 4, "trim returns every parked byte");
    let end = device.memory_stats();
    assert_eq!(end.free_bytes, 0);
    assert_eq!(end.free_blocks, 0);
    // High water remembers the peak even after trimming.
    assert_eq!(end.high_water_bytes, 4 * 1024 * 4);
}

/// Distinct element types never share shelves even when their byte sizes
/// coincide: a reused block must be type-exact.
#[test]
fn size_classes_are_per_element_type() {
    let device = Device::new(DeviceConfig::serial());
    drop(device.alloc("a", 256, 0u32));
    let _f = device.alloc("b", 256, 0.0f32); // same 1 KiB class, different type
    let s = device.memory_stats();
    assert_eq!(s.reuse_hits, 0, "u32 block must not back an f32 buffer");
    assert_eq!(s.misses, 2);
}

/// The worker-budget regression of ISSUE 10: a replica group whose
/// members each mount several devices must split the host budget by
/// `replicas × devices`, not by `replicas` alone (the one-device
/// assumption of `Device::new_budgeted`), while every device keeps the
/// one-worker floor.
#[test]
fn budget_split_covers_multi_device_replicas() {
    let host = DeviceConfig::host_parallelism();
    let replicas = 2;
    let devices = 2;
    let greedy = DeviceConfig::default().with_workers(host * 4);

    // The fixed split: every (replica, device) slot gets an equal share.
    let managers: Vec<DeviceManager> =
        (0..replicas).map(|_| DeviceManager::new_budgeted(devices, greedy, replicas)).collect();
    let share = (host / (replicas * devices)).max(1);
    let mut total = 0;
    for m in &managers {
        for d in m.devices() {
            assert_eq!(d.workers(), share);
            assert!(d.workers() >= 1, "floor of one worker per device");
            total += d.workers();
        }
    }
    // Within budget whenever the floor allows it (on tiny hosts the
    // floor dominates and oversubscription is the documented fallback).
    if host >= replicas * devices {
        assert!(total <= host, "fleet of {total} workers oversubscribes host of {host}");
    }

    // The legacy single-device clamp would have granted each device
    // host/replicas workers — oversubscribing by a factor of `devices`
    // on any host with enough parallelism to matter.
    let legacy = Device::new_budgeted(greedy, replicas);
    assert_eq!(legacy.workers(), (host / replicas).max(1));
}
