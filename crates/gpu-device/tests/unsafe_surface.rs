//! Curated exercise of the crate's entire unsafe surface, for sanitizer
//! runs (Miri, ThreadSanitizer) and as a living inventory of what the
//! `unsafe` in this crate actually is. Every test here drives at least one
//! of the following through its public entry point:
//!
//! | unsafe item                                   | driven by                           |
//! |-----------------------------------------------|-------------------------------------|
//! | `SharedSlice` manual `Send`/`Sync` impls      | `fused_two_stage_pipeline`          |
//! | `SharedSlice::{get_mut, read, write, slice_mut}` | `shared_slice_single_thread`, `fused_two_stage_pipeline` |
//! | `SharedMut` manual `Send`/`Sync` impls        | every pooled `launch_*` test        |
//! | `SharedMut::at` (pooled per-element access)   | `slice_mut_pooled`, `reduce_pooled` |
//! | `SharedMut::slice` (row-chunk access)         | `rows_mut_pooled`, `gather_rows_pooled` |
//! | `SharedMut::whole` (serial fast path)         | `slice_mut_serial`, `reduce_serial` |
//! | `WorkerPool::run` lifetime transmute          | every pooled test                   |
//! | `WorkerPool` poison hand-off (`catch_unwind`) | `panicking_job_resurfaces_and_pool_survives` |
//!
//! Sizes are deliberately tiny (≤ 64 elements, 2 workers) so the whole
//! binary finishes quickly under Miri's interpreter. Profiling is disabled
//! in the pooled config so no `Instant::now` is reached (Miri isolation);
//! `min_parallel_items: 0` forces every launch through the worker pool so
//! the cross-thread unsafe paths are the ones actually executed.
//!
//! Miri skip-list: currently empty — every test below is Miri-clean. If a
//! future test needs real time or the network, mark it
//! `#[cfg_attr(miri, ignore)]` and record why here.

use gpu_device::{Device, DeviceConfig, SharedSlice, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Two workers, no inline threshold, no profiling: every launch dispatches
/// to the pool and exercises the cross-thread unsafe paths.
fn pooled_device() -> Device {
    Device::new(DeviceConfig {
        workers: 2,
        block_size: 4,
        min_parallel_items: 0,
        profile: false,
    })
}

/// Single worker: launches run inline and exercise the `whole()` fast path.
fn serial_device() -> Device {
    Device::new(DeviceConfig {
        workers: 1,
        block_size: 4,
        min_parallel_items: 0,
        profile: false,
    })
}

#[test]
fn shared_slice_single_thread() {
    let mut data = vec![0i64; 8];
    let view = SharedSlice::new(&mut data);
    // SAFETY: single thread, every index touched at most once per "stage".
    unsafe {
        for i in 0..view.len() {
            view.write(i, i as i64);
        }
        *view.get_mut(2) += 10;
        view.slice_mut(4..6).fill(-1);
        assert_eq!(view.read(2), 12);
    }
    assert_eq!(data, vec![0, 1, 12, 3, -1, -1, 6, 7]);
}

#[test]
fn fused_two_stage_pipeline() {
    // The canonical fused shape: stage 1 writes `a`, barrier, stage 2 reads
    // a neighbouring element of `a` (written by the *other* worker) and
    // writes `b`. Sends `SharedSlice` across threads (manual Send/Sync) and
    // hits write/read/get_mut from two workers concurrently.
    let device = pooled_device();
    let n = 16usize;
    let mut a = vec![0u64; n];
    let mut b = vec![0u64; n];
    {
        let av = SharedSlice::new(&mut a);
        let bv = SharedSlice::new(&mut b);
        device.launch_fused("surface_fused", usize::MAX, 0, |ctx| {
            for i in ctx.chunk(n) {
                // SAFETY: chunk() partitions 0..n across workers.
                unsafe { av.write(i, (i * i) as u64) };
            }
            ctx.sync();
            for i in ctx.strided(n) {
                // SAFETY: strided() partitions 0..n; the read of a[(i+1)%n]
                // is ordered after its stage-1 write by the barrier.
                unsafe {
                    let neighbour = av.read((i + 1) % n);
                    bv.write(i, neighbour + 1);
                    *bv.get_mut(i) *= 2;
                }
            }
        });
    }
    for i in 0..n {
        let j = (i + 1) % n;
        assert_eq!(b[i], ((j * j) as u64 + 1) * 2, "element {i}");
    }
}

#[test]
fn slice_mut_pooled() {
    let device = pooled_device();
    let mut data = vec![1.0f64; 64];
    device.launch_slice_mut("surface_at", &mut data, |i, v| *v += i as f64);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(*v, 1.0 + i as f64);
    }
}

#[test]
fn slice_mut_serial() {
    let device = serial_device();
    let mut data = vec![0.0f64; 16];
    device.launch_slice_mut("surface_whole", &mut data, |i, v| *v = i as f64);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(*v, i as f64);
    }
}

#[test]
fn rows_mut_pooled() {
    let device = pooled_device();
    let (rows, row_len) = (6usize, 5usize);
    let mut data = vec![0u32; rows * row_len];
    device.launch_rows_mut("surface_rows", &mut data, row_len, |r, row| {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = (r * 100 + c) as u32;
        }
    });
    for r in 0..rows {
        for c in 0..row_len {
            assert_eq!(data[r * row_len + c], (r * 100 + c) as u32);
        }
    }
}

#[test]
fn gather_rows_pooled() {
    let device = pooled_device();
    let (rows, row_len) = (8usize, 3usize);
    let mut a = vec![0i32; rows * row_len];
    let mut b = vec![0i32; rows * row_len];
    let gather: Vec<u32> = vec![6, 1, 3];
    device.launch_gather_rows_mut(
        "surface_gather",
        &gather,
        &mut a,
        &mut b,
        row_len,
        usize::MAX,
        |k, r, row_a, row_b| {
            row_a.fill(k as i32 + 1);
            row_b.fill(-(r as i32));
        },
    );
    for (k, &r) in gather.iter().enumerate() {
        let r = r as usize;
        assert!(a[r * row_len..(r + 1) * row_len].iter().all(|&v| v == k as i32 + 1));
        assert!(b[r * row_len..(r + 1) * row_len].iter().all(|&v| v == -(r as i32)));
    }
    // Ungathered rows untouched.
    assert!(a[0..row_len].iter().all(|&v| v == 0));
}

#[test]
fn reduce_pooled_matches_serial() {
    let pooled = pooled_device();
    let serial = serial_device();
    let map = |i: usize| (i as u64) * 3 + 1;
    let p = pooled.reduce("surface_reduce_p", 57, 0u64, map, |a, b| a + b);
    let s = serial.reduce("surface_reduce_s", 57, 0u64, map, |a, b| a + b);
    assert_eq!(p, s);
    assert_eq!(s, (0..57u64).map(|i| i * 3 + 1).sum::<u64>());
}

#[test]
fn bare_pool_run_transmute() {
    // Drives WorkerPool::run directly: the closure borrows a stack-local
    // atomic, which is exactly the non-'static borrow the documented
    // transmute makes sound (run() blocks until all workers finish).
    let pool = WorkerPool::new(2);
    let hits = AtomicU64::new(0);
    pool.run(|wid| {
        hits.fetch_add(1 << (wid * 8), Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), (1 << 8) | 1);
}

#[test]
fn panicking_job_resurfaces_and_pool_survives() {
    // The catch_unwind → Latch poison → resume_unwind hand-off: a worker
    // panic must re-raise on the caller and must NOT deadlock or poison the
    // pool for subsequent launches.
    let pool = WorkerPool::new(2);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(|wid| {
            if wid == 1 {
                panic!("surface: deliberate worker panic");
            }
        });
    }));
    assert!(caught.is_err(), "worker panic must resurface from run()");
    // Pool is still usable afterwards.
    let hits = AtomicU64::new(0);
    pool.run(|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 2);
}

#[test]
fn device_buffer_round_trip_through_launch() {
    // DeviceBuffer hand-off into a pooled mutation launch and back to host;
    // with alloc/copy accounting on the unsafe-free side, this pins the
    // whole "allocate, mutate on device, read back" seam end to end.
    let device = pooled_device();
    let mut buf = device.alloc_from_slice("surface_buf", &[2.0f64; 32]);
    device.launch_mut("surface_buf_mut", &mut buf, |i, v| *v *= (i + 1) as f64);
    let host = buf.copy_to_host();
    for (i, v) in host.iter().enumerate() {
        assert_eq!(*v, 2.0 * (i + 1) as f64);
    }
}
