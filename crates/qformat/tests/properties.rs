//! Property-based tests for the fixed-point substrate.

use proptest::prelude::*;
use qformat::{QFormat, Quantizer, Rounding};

fn arb_format() -> impl Strategy<Value = QFormat> {
    (0u8..=2, 1u8..=16).prop_map(|(m, n)| QFormat::new(m, n))
}

fn arb_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Truncate),
        Just(Rounding::Nearest),
        Just(Rounding::Stochastic),
    ]
}

proptest! {
    /// Quantization always lands on a representable grid point.
    #[test]
    fn quantize_lands_on_grid(f in arb_format(), r in arb_rounding(),
                              x in -1.0f64..4.0, u in 0.0f64..1.0) {
        let q = Quantizer::new(f, r);
        let y = q.quantize_f64(x, u);
        let code = y / f.resolution();
        prop_assert!((code - code.round()).abs() < 1e-9);
        prop_assert!(y >= 0.0);
        prop_assert!(y <= f.max_value() + 1e-12);
    }

    /// Quantizing a grid point is the identity under every mode.
    #[test]
    fn grid_points_are_fixed_points(f in arb_format(), r in arb_rounding(),
                                    raw in 0u32..1024, u in 0.0f64..1.0) {
        let raw = raw % (f.max_raw() + 1);
        let x = f.raw_to_f64(raw);
        let q = Quantizer::new(f, r);
        prop_assert_eq!(q.quantize_raw(x, u), raw);
    }

    /// Quantization error is bounded by the mode's max_error.
    #[test]
    fn error_bounded(f in arb_format(), r in arb_rounding(),
                     x in 0.0f64..1.0, u in 0.0f64..1.0) {
        let q = Quantizer::new(f, r);
        let x = f.clamp(x);
        let y = q.quantize_f64(x, u);
        prop_assert!((y - x).abs() <= q.max_error() + 1e-12,
                     "|{} - {}| > {}", y, x, q.max_error());
    }

    /// Quantization is monotone: x <= x' implies Q(x) <= Q(x') for the two
    /// deterministic modes.
    #[test]
    fn deterministic_modes_monotone(f in arb_format(),
                                    r in prop_oneof![Just(Rounding::Truncate), Just(Rounding::Nearest)],
                                    a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let q = Quantizer::new(f, r);
        prop_assert!(q.quantize_raw(lo, 0.0) <= q.quantize_raw(hi, 0.0));
    }

    /// Stochastic rounding with the same uniform draw is monotone in x too.
    #[test]
    fn stochastic_monotone_given_draw(f in arb_format(), u in 0.0f64..1.0,
                                      a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let q = Quantizer::new(f, Rounding::Stochastic);
        prop_assert!(q.quantize_raw(lo, u) <= q.quantize_raw(hi, u));
    }

    /// Truncation <= stochastic <= truncation + 1 LSB, and nearest is within
    /// one LSB of truncation.
    #[test]
    fn mode_ordering(f in arb_format(), x in 0.0f64..1.0, u in 0.0f64..1.0) {
        let t = Quantizer::new(f, Rounding::Truncate).quantize_raw(x, u);
        let s = Quantizer::new(f, Rounding::Stochastic).quantize_raw(x, u);
        let n = Quantizer::new(f, Rounding::Nearest).quantize_raw(x, u);
        prop_assert!(s == t || s == t + 1 || s == f.max_raw());
        prop_assert!(n == t || n == t + 1 || n == f.max_raw());
    }
}
