//! Unsigned Q-format fixed-point arithmetic for low-precision synaptic learning.
//!
//! This crate is the numeric substrate of the ParallelSpikeSim reproduction.
//! Synapse conductances in the paper are stored and updated in unsigned
//! fixed-point formats `Q0.2`, `Q0.4`, `Q1.7` and `Q1.15` (2, 4, 8 and
//! 16 total bits), and every conductance update is re-quantized with one of
//! three rounding options:
//!
//! * **bit truncation** — round toward zero (drop the sub-LSB bits),
//! * **round to nearest** — ties away from zero,
//! * **stochastic rounding** — round up with probability proportional to the
//!   distance past the truncated grid point (Eq. 8 of the paper):
//!   `P(round up) = (x − trunc(x)) · 2^n` for `n` fractional bits.
//!
//! The crate is deliberately RNG-agnostic: stochastic rounding takes the
//! uniform draw as an argument so that callers can use counter-based,
//! reproducible random streams (see the `gpu-device` crate).
//!
//! DESIGN.md §1 locates low-precision learning in the paper's contribution
//! list; §5 records the calibration decisions behind the format/rounding
//! matrix the Table II experiments (`bench` binary `table2`) sweep.
//!
//! # Example
//!
//! ```
//! use qformat::{QFormat, Rounding, Quantizer};
//!
//! let q = Quantizer::new(QFormat::Q1_7, Rounding::Nearest);
//! let v = q.quantize(0.5039, 0.0); // uniform draw unused for Nearest
//! assert_eq!(v.to_f64(), 0.5);     // snapped to the 1/128 grid
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod format;
mod packed;
mod quantizer;
mod rounding;
mod signed;
mod value;

pub use format::QFormat;
pub use packed::{LaneLayout, ACCUM_HEADROOM_BITS, MAX_BLOCK_SPIKES};
pub use quantizer::Quantizer;
pub use rounding::Rounding;
pub use signed::SignedQFormat;
pub use value::QValue;
