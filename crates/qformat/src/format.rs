//! Q-format descriptors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An unsigned `Q(m.n)` fixed-point format: `m` integer bits and `n`
/// fractional bits, `m + n` total bits.
///
/// The representable range is `[0, 2^m − 2^−n]` with a resolution (one least
/// significant bit) of `2^−n`. The paper's learning precisions map to the
/// associated constants: [`QFormat::Q0_2`], [`QFormat::Q0_4`],
/// [`QFormat::Q1_7`] and [`QFormat::Q1_15`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// 2-bit format `Q0.2`: values `{0, 0.25, 0.5, 0.75}`.
    pub const Q0_2: QFormat = QFormat { int_bits: 0, frac_bits: 2 };
    /// 4-bit format `Q0.4`: 16 levels on `[0, 15/16]`.
    pub const Q0_4: QFormat = QFormat { int_bits: 0, frac_bits: 4 };
    /// 8-bit format `Q1.7`: 256 levels on `[0, 255/128]`.
    pub const Q1_7: QFormat = QFormat { int_bits: 1, frac_bits: 7 };
    /// 16-bit format `Q1.15`: 65536 levels on `[0, 65535/32768]`.
    pub const Q1_15: QFormat = QFormat { int_bits: 1, frac_bits: 15 };

    /// Creates a format with `int_bits` integer and `frac_bits` fractional
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if the total width is zero or exceeds 31 bits (the raw value is
    /// held in a `u32` and quantization arithmetic needs one spare bit).
    #[must_use]
    pub fn new(int_bits: u8, frac_bits: u8) -> Self {
        let total = u32::from(int_bits) + u32::from(frac_bits);
        assert!(total >= 1, "Q-format must have at least one bit");
        assert!(total <= 31, "Q-format wider than 31 bits is not supported");
        QFormat { int_bits, frac_bits }
    }

    /// Number of integer bits (`m` in `Qm.n`).
    #[must_use]
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Number of fractional bits (`n` in `Qm.n`).
    #[must_use]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Total bit width `m + n`.
    #[must_use]
    pub fn total_bits(&self) -> u8 {
        self.int_bits + self.frac_bits
    }

    /// The value of one least significant bit, `2^−n`.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        (f64::from(self.frac_bits)).exp2().recip()
    }

    /// The paper's fixed conductance step for ≤ 8-bit learning:
    /// `ΔG = 1 / 2^w` with `w` the **total** bit width (Section III-C).
    ///
    /// Note that for formats with integer bits (e.g. `Q1.7`) this step is
    /// *smaller than one LSB*, which is exactly why the rounding option
    /// matters: under truncation a potentiation by `ΔG` is always rounded
    /// away while a depression still clears a full LSB.
    #[must_use]
    pub fn paper_delta_g(&self) -> f64 {
        (f64::from(self.total_bits())).exp2().recip()
    }

    /// Largest representable value, `2^m − 2^−n`.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        (f64::from(self.int_bits)).exp2() - self.resolution()
    }

    /// Largest raw (integer) code, `2^(m+n) − 1`.
    #[must_use]
    pub fn max_raw(&self) -> u32 {
        (1u32 << self.total_bits()) - 1
    }

    /// Number of distinct representable levels, `2^(m+n)`.
    #[must_use]
    pub fn levels(&self) -> u64 {
        1u64 << self.total_bits()
    }

    /// Converts a raw code to its real value.
    #[must_use]
    pub fn raw_to_f64(&self, raw: u32) -> f64 {
        f64::from(raw) * self.resolution()
    }

    /// Clamps `x` to the representable range `[0, max_value]`.
    #[must_use]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(0.0, self.max_value())
    }

    /// Snaps `x` onto the grid with round-to-nearest, **ties to even** raw
    /// code (IEEE-754 style "banker's rounding").
    ///
    /// This is not one of the paper's three learning-update rounding modes
    /// (those live in [`crate::Rounding`], whose `Nearest` rounds ties *up*);
    /// it exists for merge-style operations that average several on-grid
    /// values — e.g. replica-merge weight averaging — where the symmetric
    /// tie-break avoids the systematic upward drift a ties-up rule would
    /// accumulate over repeated merges. The tie-break contract: a value
    /// exactly halfway between two grid codes rounds to the code whose raw
    /// integer is even.
    #[must_use]
    pub fn snap_rne(&self, x: f64) -> f64 {
        let scaled = self.clamp(x) / self.resolution();
        let down = scaled.floor();
        let frac = scaled - down;
        #[allow(clippy::float_cmp)] // the tie-break compares an exact 0.5
        let code = if frac > 0.5 {
            down + 1.0
        } else if frac < 0.5 {
            down
        } else if (down as u64) % 2 == 0 {
            down
        } else {
            down + 1.0
        };
        // Rounding up from the clamped maximum can overshoot by one code.
        self.raw_to_f64((code as u32).min(self.max_raw()))
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formats_have_expected_widths() {
        assert_eq!(QFormat::Q0_2.total_bits(), 2);
        assert_eq!(QFormat::Q0_4.total_bits(), 4);
        assert_eq!(QFormat::Q1_7.total_bits(), 8);
        assert_eq!(QFormat::Q1_15.total_bits(), 16);
    }

    #[test]
    fn resolution_is_one_lsb() {
        assert_eq!(QFormat::Q0_2.resolution(), 0.25);
        assert_eq!(QFormat::Q0_4.resolution(), 1.0 / 16.0);
        assert_eq!(QFormat::Q1_7.resolution(), 1.0 / 128.0);
        assert_eq!(QFormat::Q1_15.resolution(), 1.0 / 32768.0);
    }

    #[test]
    fn paper_delta_g_uses_total_width() {
        assert_eq!(QFormat::Q0_2.paper_delta_g(), 0.25);
        assert_eq!(QFormat::Q0_4.paper_delta_g(), 1.0 / 16.0);
        // One integer bit: the step is half an LSB.
        assert_eq!(QFormat::Q1_7.paper_delta_g(), 1.0 / 256.0);
    }

    #[test]
    fn max_value_covers_unit_conductance_range() {
        // G_max = 1.0 must be representable for the 8/16-bit formats.
        assert!(QFormat::Q1_7.max_value() >= 1.0);
        assert!(QFormat::Q1_15.max_value() >= 1.0);
        // and not for the fraction-only formats.
        assert!(QFormat::Q0_2.max_value() < 1.0);
        assert!(QFormat::Q0_4.max_value() < 1.0);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(QFormat::Q1_7.to_string(), "Q1.7");
        assert_eq!(QFormat::Q0_2.to_string(), "Q0.2");
    }

    #[test]
    fn levels_and_max_raw_agree() {
        for q in [QFormat::Q0_2, QFormat::Q0_4, QFormat::Q1_7, QFormat::Q1_15] {
            assert_eq!(u64::from(q.max_raw()) + 1, q.levels());
            assert!((q.raw_to_f64(q.max_raw()) - q.max_value()).abs() < 1e-12);
        }
    }

    #[test]
    fn snap_rne_rounds_ties_to_even_raw_code() {
        let q = QFormat::Q0_2; // resolution 0.25, codes {0, 1, 2, 3}
        // Halfway between codes 0 and 1 (x = 0.125): code 0 is even — down.
        assert_eq!(q.snap_rne(0.125), 0.0);
        // Halfway between codes 1 and 2 (x = 0.375): code 2 is even — up.
        assert_eq!(q.snap_rne(0.375), 0.5);
        // Halfway between codes 2 and 3 (x = 0.625): code 2 is even — down.
        assert_eq!(q.snap_rne(0.625), 0.5);
        // Off-tie values round to nearest as usual.
        assert_eq!(q.snap_rne(0.24), 0.25);
        assert_eq!(q.snap_rne(0.26), 0.25);
        // On-grid values are fixed points; out-of-range values saturate.
        assert_eq!(q.snap_rne(0.75), 0.75);
        assert_eq!(q.snap_rne(9.0), 0.75);
        assert_eq!(q.snap_rne(-1.0), 0.0);
    }

    #[test]
    fn snap_rne_is_unbiased_over_symmetric_ties() {
        // Averaging the two tie points around every even code must return
        // exactly those codes' mean: the ties cancel instead of drifting up.
        let q = QFormat::Q1_7;
        let res = q.resolution();
        let lo = q.snap_rne(0.5 + res / 2.0); // tie above code 64 (even)
        let hi = q.snap_rne(0.5 - res / 2.0); // tie below code 64
        assert_eq!(lo, 0.5);
        assert_eq!(hi, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_rejected() {
        let _ = QFormat::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "wider than 31")]
    fn overwide_rejected() {
        let _ = QFormat::new(16, 16);
    }
}
