//! SWAR lane packing: several narrow Q-format raw codes in one `u64`.
//!
//! Low precision is what makes bit-parallel arithmetic possible: a `Q0.2`
//! conductance is a 2-bit integer code, so a 64-bit word can carry many of
//! them and one integer add can advance them all — "SIMD within a register"
//! (SWAR). The catch is carry propagation: adding two packed words is only
//! lane-wise if no lane can overflow into its neighbour. [`LaneLayout`]
//! therefore widens each lane beyond the format's value width by
//! [`ACCUM_HEADROOM_BITS`] guard bits, exactly enough for the engine's
//! canonical delivery fold, which sums at most [`MAX_BLOCK_SPIKES`] on-grid
//! codes per block (see DESIGN.md §13).
//!
//! Lane widths are restricted to the machine subword sizes {8, 16, 32} so a
//! `std::simd` backend can reinterpret the same words as `u8x8`/`u16x4`/
//! `u32x2` vectors without re-packing.

use crate::QFormat;

/// Guard bits reserved above each lane's value width so that block
/// accumulation cannot carry into the neighbouring lane. The engine's
/// canonical fold sums at most `2^ACCUM_HEADROOM_BITS` codes per block.
pub const ACCUM_HEADROOM_BITS: u32 = 5;

/// Maximum number of on-grid codes a single SWAR accumulation may sum
/// without inter-lane carry: `2^`[`ACCUM_HEADROOM_BITS`]. The engine's
/// `SPIKE_BLOCK` must not exceed this.
pub const MAX_BLOCK_SPIKES: usize = 1 << ACCUM_HEADROOM_BITS;

/// The supported SWAR lane widths, in bits: the machine subword sizes, so
/// packed words double as `std::simd` vectors of the same layout.
const LANE_WIDTHS: [u32; 3] = [8, 16, 32];

/// How raw codes of one [`QFormat`] are packed into a `u64`.
///
/// A layout exists only when `total_bits + ACCUM_HEADROOM_BITS` fits one of
/// the subword lane widths; wider formats (anything above 27 total bits,
/// including the 31-bit maximum [`QFormat`] supports) have no layout and
/// [`LaneLayout::for_format`] returns `None` — callers fall back to scalar
/// arithmetic.
///
/// # Example
///
/// ```
/// use qformat::{LaneLayout, QFormat};
///
/// let layout = LaneLayout::for_format(QFormat::Q0_2).unwrap();
/// assert_eq!(layout.lanes(), 8); // 8-bit lanes: 2 value + 5 guard bits
/// let word = layout.pack(&[3, 0, 1, 2, 3, 1, 0, 2]);
/// assert_eq!(layout.unpack_vec(word), vec![3, 0, 1, 2, 3, 1, 0, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    format: QFormat,
    lane_bits: u32,
}

impl LaneLayout {
    /// The layout for `format`, or `None` when the format is too wide to
    /// leave [`ACCUM_HEADROOM_BITS`] guard bits in any subword lane.
    #[must_use]
    pub fn for_format(format: QFormat) -> Option<Self> {
        let need = u32::from(format.total_bits()) + ACCUM_HEADROOM_BITS;
        let lane_bits = *LANE_WIDTHS.iter().find(|&&w| need <= w)?;
        Some(LaneLayout { format, lane_bits })
    }

    /// The format this layout packs.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Width of one lane in bits (8, 16 or 32).
    #[must_use]
    pub fn lane_bits(&self) -> u32 {
        self.lane_bits
    }

    /// Number of lanes per `u64` word: `64 / lane_bits`.
    #[must_use]
    pub fn lanes(&self) -> usize {
        (u64::BITS / self.lane_bits) as usize
    }

    /// Guard bits above the value in each lane:
    /// `lane_bits − total_bits ≥ ACCUM_HEADROOM_BITS`.
    #[must_use]
    pub fn guard_bits(&self) -> u32 {
        self.lane_bits - u32::from(self.format.total_bits())
    }

    /// Mask of one full lane, `2^lane_bits − 1`.
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        if self.lane_bits == u64::BITS {
            u64::MAX
        } else {
            (1u64 << self.lane_bits) - 1
        }
    }

    /// The lane mask replicated across every lane of the word. And-ing an
    /// accumulator word with this is a no-op (the mask covers whole lanes);
    /// it exists for masking sub-lane fields built via shifts.
    #[must_use]
    pub fn word_mask(&self) -> u64 {
        self.splat_raw(self.lane_mask())
    }

    /// The format's value mask (`max_raw`) replicated across every lane:
    /// and-ing with this strips the guard bits of all lanes at once.
    #[must_use]
    pub fn value_mask(&self) -> u64 {
        self.splat(self.format.max_raw())
    }

    /// Replicates a raw code into every lane of one word.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds the format's largest code.
    #[must_use]
    pub fn splat(&self, raw: u32) -> u64 {
        assert!(raw <= self.format.max_raw(), "raw code {raw} exceeds {}", self.format);
        self.splat_raw(u64::from(raw))
    }

    /// Replicates an arbitrary lane-sized field into every lane.
    fn splat_raw(&self, field: u64) -> u64 {
        let mut word = 0u64;
        for lane in 0..self.lanes() {
            word |= field << (lane as u32 * self.lane_bits);
        }
        word
    }

    /// Packs `raws[k]` into lane `k` (lane 0 is the least significant).
    /// Missing trailing lanes are zero.
    ///
    /// # Panics
    ///
    /// Panics if `raws` has more entries than lanes, or any code exceeds
    /// the format's largest code.
    #[must_use]
    pub fn pack(&self, raws: &[u32]) -> u64 {
        assert!(raws.len() <= self.lanes(), "{} codes exceed {} lanes", raws.len(), self.lanes());
        let mut word = 0u64;
        for (k, &raw) in raws.iter().enumerate() {
            assert!(raw <= self.format.max_raw(), "raw code {raw} exceeds {}", self.format);
            word |= u64::from(raw) << (k as u32 * self.lane_bits);
        }
        word
    }

    /// Extracts lane `k` of `word` (the full lane, guard bits included —
    /// accumulator words legitimately carry sums above `max_raw`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a lane index.
    #[must_use]
    pub fn lane(&self, word: u64, k: usize) -> u32 {
        assert!(k < self.lanes(), "lane {k} out of {}", self.lanes());
        ((word >> (k as u32 * self.lane_bits)) & self.lane_mask()) as u32
    }

    /// Unpacks every lane of `word` into `out` (`out[k]` = lane `k`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the lane count.
    pub fn unpack(&self, word: u64, out: &mut [u32]) {
        assert_eq!(out.len(), self.lanes(), "output slice must cover every lane");
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = ((word >> (k as u32 * self.lane_bits)) & self.lane_mask()) as u32;
        }
    }

    /// [`LaneLayout::unpack`] into a fresh vector.
    #[must_use]
    pub fn unpack_vec(&self, word: u64) -> Vec<u32> {
        let mut out = vec![0u32; self.lanes()];
        self.unpack(word, &mut out);
        out
    }
}

impl QFormat {
    /// How many raw codes of this format fit in one SWAR `u64` word (with
    /// the accumulation guard bits of [`LaneLayout`]), or `None` when the
    /// format is too wide for lane packing and callers must use scalar
    /// arithmetic: 8 for `Q0.2`, 4 for `Q0.4`/`Q1.7`, 2 for `Q1.15`.
    #[must_use]
    pub fn lanes_per_u64(&self) -> Option<usize> {
        LaneLayout::for_format(*self).map(|l| l.lanes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_formats_have_expected_lane_counts() {
        assert_eq!(QFormat::Q0_2.lanes_per_u64(), Some(8));
        assert_eq!(QFormat::Q0_4.lanes_per_u64(), Some(4));
        assert_eq!(QFormat::Q1_7.lanes_per_u64(), Some(4));
        assert_eq!(QFormat::Q1_15.lanes_per_u64(), Some(2));
    }

    #[test]
    fn layouts_leave_accumulation_headroom() {
        for q in [QFormat::Q0_2, QFormat::Q0_4, QFormat::Q1_7, QFormat::Q1_15] {
            let layout = LaneLayout::for_format(q).unwrap();
            assert!(layout.guard_bits() >= ACCUM_HEADROOM_BITS, "{q}");
            assert_eq!(layout.lanes() * layout.lane_bits() as usize, 64, "{q}");
            // The guard bits are wide enough for a full canonical block:
            // MAX_BLOCK_SPIKES × max_raw must fit in one lane.
            let worst = u64::from(q.max_raw()) * MAX_BLOCK_SPIKES as u64;
            assert!(worst <= layout.lane_mask(), "{q}: block sum overflows a lane");
        }
    }

    #[test]
    fn overwide_formats_are_rejected() {
        // Anything above 27 total bits cannot leave 5 guard bits in a
        // 32-bit lane — including the 31-bit maximum QFormat allows.
        assert_eq!(QFormat::new(12, 16).lanes_per_u64(), None);
        assert_eq!(QFormat::new(15, 16).lanes_per_u64(), None); // 31-bit max
        assert!(LaneLayout::for_format(QFormat::new(0, 28)).is_none());
        // 27 bits is the widest packable format (27 + 5 = 32).
        assert_eq!(QFormat::new(11, 16).lanes_per_u64(), Some(2));
    }

    #[test]
    fn masks_cover_values_and_lanes() {
        let layout = LaneLayout::for_format(QFormat::Q0_4).unwrap();
        assert_eq!(layout.lane_bits(), 16);
        assert_eq!(layout.lane_mask(), 0xFFFF);
        assert_eq!(layout.word_mask(), u64::MAX);
        assert_eq!(layout.value_mask(), 0x000F_000F_000F_000F);
        assert_eq!(layout.splat(0xF), 0x000F_000F_000F_000F);
    }

    #[test]
    fn swar_block_add_matches_lanewise_sums() {
        // The property the delivery kernel relies on: summing ≤
        // MAX_BLOCK_SPIKES packed words with plain u64 adds is exact
        // lane-wise (no carry crosses a boundary).
        let layout = LaneLayout::for_format(QFormat::Q0_2).unwrap();
        let max = QFormat::Q0_2.max_raw();
        let words: Vec<u64> =
            (0..MAX_BLOCK_SPIKES).map(|s| layout.splat((s as u32) % (max + 1))).collect();
        let acc: u64 = words.iter().fold(0u64, |a, &w| a.wrapping_add(w));
        let expect: u32 = (0..MAX_BLOCK_SPIKES as u32).map(|s| s % (max + 1)).sum();
        for k in 0..layout.lanes() {
            assert_eq!(layout.lane(acc, k), expect);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_out_of_range_codes() {
        let layout = LaneLayout::for_format(QFormat::Q0_2).unwrap();
        let _ = layout.pack(&[4]);
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn pack_rejects_too_many_codes() {
        let layout = LaneLayout::for_format(QFormat::Q1_15).unwrap();
        let _ = layout.pack(&[0, 0, 0]);
    }

    proptest! {
        /// The satellite contract: `pack(unpack(w)) == w` for every
        /// supported format (and `unpack(pack(codes)) == codes`), with the
        /// over-wide tail (incl. the 31-bit maximum) always taking the
        /// rejection path. Lane codes are derived from the unit fills so
        /// one strategy covers every lane count.
        #[test]
        fn pack_unpack_round_trips(
            m in 0u8..=15,
            n in 0u8..=16,
            fills in proptest::collection::vec(0.0f64..1.0, 8),
        ) {
            prop_assume!(m + n >= 1);
            let q = QFormat::new(m, n);
            let total = u32::from(q.total_bits());
            match LaneLayout::for_format(q) {
                None => {
                    // Rejection path: only formats too wide to leave the
                    // guard bits in a 32-bit lane are unpackable.
                    prop_assert!(total + ACCUM_HEADROOM_BITS > 32, "{q} wrongly rejected");
                    prop_assert_eq!(q.lanes_per_u64(), None);
                }
                Some(layout) => {
                    prop_assert!(total + ACCUM_HEADROOM_BITS <= layout.lane_bits());
                    prop_assert_eq!(layout.lanes() as u32 * layout.lane_bits(), 64);
                    let span = u64::from(q.max_raw()) + 1;
                    let codes: Vec<u32> = fills
                        .iter()
                        .take(layout.lanes())
                        .map(|&f| ((f * span as f64) as u64).min(span - 1) as u32)
                        .collect();
                    let word = layout.pack(&codes);
                    prop_assert_eq!(layout.unpack_vec(word), codes);
                    // Value-lane words round-trip the other way too.
                    prop_assert_eq!(layout.pack(&layout.unpack_vec(word)), word);
                    prop_assert_eq!(word & layout.value_mask(), word);
                }
            }
        }
    }
}
