//! Signed two's-complement Q-format, for substrates beyond unsigned
//! conductances (e.g. signed weight deltas or inhibitory weights).
//!
//! The paper's synapses are unsigned (`G ∈ [G_min, G_max]`), so the
//! simulator itself only uses [`crate::QFormat`]; the signed variant
//! rounds out the fixed-point substrate for downstream users and shares
//! the same three rounding modes.

use crate::Rounding;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed `Q(m.n)` fixed-point format: one sign bit, `m` integer bits and
/// `n` fractional bits (`1 + m + n` total), two's complement.
///
/// Range is `[−2^m, 2^m − 2^−n]` with resolution `2^−n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedQFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl SignedQFormat {
    /// Creates a signed format with `int_bits` integer and `frac_bits`
    /// fractional bits (plus the implicit sign bit).
    ///
    /// # Panics
    ///
    /// Panics if the total width (including sign) exceeds 31 bits or the
    /// format has no magnitude bits.
    #[must_use]
    pub fn new(int_bits: u8, frac_bits: u8) -> Self {
        let total = 1 + u32::from(int_bits) + u32::from(frac_bits);
        assert!(total >= 2, "signed Q-format needs at least one magnitude bit");
        assert!(total <= 31, "signed Q-format wider than 31 bits is not supported");
        SignedQFormat { int_bits, frac_bits }
    }

    /// Number of integer bits (excluding sign).
    #[must_use]
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Total bit width including the sign bit.
    #[must_use]
    pub fn total_bits(&self) -> u8 {
        1 + self.int_bits + self.frac_bits
    }

    /// One least significant bit, `2^−n`.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        f64::from(self.frac_bits).exp2().recip()
    }

    /// Most negative representable value, `−2^m`.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        -f64::from(self.int_bits).exp2()
    }

    /// Most positive representable value, `2^m − 2^−n`.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        f64::from(self.int_bits).exp2() - self.resolution()
    }

    /// Converts a signed raw code to its real value.
    #[must_use]
    pub fn raw_to_f64(&self, raw: i32) -> f64 {
        f64::from(raw) * self.resolution()
    }

    /// The raw code bounds `(min, max)`.
    #[must_use]
    pub fn raw_bounds(&self) -> (i32, i32) {
        let mag = 1i32 << (self.int_bits + self.frac_bits);
        (-mag, mag - 1)
    }

    /// Quantizes `x` under `rounding`, saturating to the representable
    /// range. `uniform` in `[0, 1)` feeds stochastic rounding.
    ///
    /// Negative values round symmetrically: truncation is toward zero,
    /// stochastic rounding is unbiased in expectation on both sides.
    #[must_use]
    pub fn quantize_raw(&self, x: f64, rounding: Rounding, uniform: f64) -> i32 {
        let clamped = x.clamp(self.min_value(), self.max_value());
        let scaled = clamped / self.resolution();
        let code = if scaled >= 0.0 {
            rounding.round_scaled(scaled, uniform)
        } else {
            -rounding.round_scaled(-scaled, uniform)
        };
        let (lo, hi) = self.raw_bounds();
        (code as i32).clamp(lo, hi)
    }

    /// Quantizes `x` and returns the grid value as `f64`.
    #[must_use]
    pub fn quantize_f64(&self, x: f64, rounding: Rounding, uniform: f64) -> f64 {
        self.raw_to_f64(self.quantize_raw(x, rounding, uniform))
    }
}

impl fmt::Display for SignedQFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sQ{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq1_6() -> SignedQFormat {
        SignedQFormat::new(1, 6)
    }

    #[test]
    fn range_and_resolution() {
        let q = sq1_6();
        assert_eq!(q.total_bits(), 8);
        assert_eq!(q.min_value(), -2.0);
        assert_eq!(q.max_value(), 2.0 - 1.0 / 64.0);
        assert_eq!(q.resolution(), 1.0 / 64.0);
        assert_eq!(q.raw_bounds(), (-128, 127));
    }

    #[test]
    fn truncation_rounds_toward_zero_on_both_sides() {
        let q = sq1_6();
        assert_eq!(q.quantize_f64(0.99 / 64.0, Rounding::Truncate, 0.0), 0.0);
        assert_eq!(q.quantize_f64(-0.99 / 64.0, Rounding::Truncate, 0.0), 0.0);
        assert_eq!(q.quantize_f64(-1.5 / 64.0, Rounding::Truncate, 0.0), -1.0 / 64.0);
    }

    #[test]
    fn saturation_at_both_rails() {
        let q = sq1_6();
        assert_eq!(q.quantize_f64(100.0, Rounding::Nearest, 0.0), q.max_value());
        assert_eq!(q.quantize_f64(-100.0, Rounding::Nearest, 0.0), q.min_value());
    }

    #[test]
    fn stochastic_rounding_unbiased_negative_side() {
        let q = sq1_6();
        let x = -0.4 / 64.0; // -0.4 of one LSB
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|k| {
                let u = (f64::from(k) + 0.5) / f64::from(n);
                q.quantize_f64(x, Rounding::Stochastic, u)
            })
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - x).abs() < 1e-4, "mean {mean} vs {x}");
    }

    #[test]
    fn grid_points_are_fixed_points() {
        let q = sq1_6();
        for raw in [-128i32, -77, -1, 0, 1, 99, 127] {
            let v = q.raw_to_f64(raw);
            for mode in Rounding::ALL {
                assert_eq!(q.quantize_raw(v, mode, 0.7), raw, "{mode} at {raw}");
            }
        }
    }

    #[test]
    fn display_notation() {
        assert_eq!(sq1_6().to_string(), "sQ1.6");
    }

    #[test]
    #[should_panic(expected = "at least one magnitude bit")]
    fn degenerate_format_rejected() {
        let _ = SignedQFormat::new(0, 0);
    }
}
