//! Quantization of real-valued conductances onto a Q-format grid.

use crate::{QFormat, QValue, Rounding};
use serde::{Deserialize, Serialize};

/// A (format, rounding mode) pair that maps real values onto the fixed-point
/// grid.
///
/// This is the object the learning module threads through every conductance
/// update: the new conductance `G ± ΔG` is computed in `f64` and immediately
/// re-quantized, so the stored state never leaves the grid (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    format: QFormat,
    rounding: Rounding,
}

impl Quantizer {
    /// Creates a quantizer for `format` using `rounding`.
    #[must_use]
    pub fn new(format: QFormat, rounding: Rounding) -> Self {
        Quantizer { format, rounding }
    }

    /// The target format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The rounding mode.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Quantizes `x` to the grid, saturating to the representable range.
    ///
    /// `uniform` must be a draw from `[0, 1)`; it is consumed only by
    /// stochastic rounding.
    #[must_use]
    pub fn quantize(&self, x: f64, uniform: f64) -> QValue {
        QValue::from_raw(self.quantize_raw(x, uniform), self.format)
    }

    /// Like [`Quantizer::quantize`] but returns the raw grid code. This is
    /// the hot-path entry point used by the synapse kernels.
    #[must_use]
    pub fn quantize_raw(&self, x: f64, uniform: f64) -> u32 {
        let clamped = self.format.clamp(x);
        let scaled = clamped / self.format.resolution();
        let code = self.rounding.round_scaled(scaled, uniform);
        // Rounding up from the clamped maximum can overshoot by one code.
        (code as u32).min(self.format.max_raw())
    }

    /// Quantizes `x` and returns the value as `f64` (grid point).
    #[must_use]
    pub fn quantize_f64(&self, x: f64, uniform: f64) -> f64 {
        self.format.raw_to_f64(self.quantize_raw(x, uniform))
    }

    /// Worst-case absolute quantization error of this mode: one LSB for
    /// truncation and stochastic rounding, half an LSB for round-to-nearest.
    #[must_use]
    pub fn max_error(&self) -> f64 {
        match self.rounding {
            Rounding::Truncate | Rounding::Stochastic => self.format.resolution(),
            Rounding::Nearest => self.format.resolution() / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_saturate_to_range() {
        let q = Quantizer::new(QFormat::Q0_2, Rounding::Nearest);
        assert_eq!(q.quantize_f64(5.0, 0.0), 0.75);
        assert_eq!(q.quantize_f64(-1.0, 0.0), 0.0);
    }

    #[test]
    fn truncation_never_rounds_up() {
        let q = Quantizer::new(QFormat::Q1_7, Rounding::Truncate);
        // Half an LSB above a grid point: stays put.
        let x = 0.5 + 1.0 / 256.0;
        assert_eq!(q.quantize_f64(x, 0.0), 0.5);
    }

    #[test]
    fn nearest_rounds_half_lsb_up() {
        let q = Quantizer::new(QFormat::Q1_7, Rounding::Nearest);
        let x = 0.5 + 1.0 / 256.0;
        assert_eq!(q.quantize_f64(x, 0.0), 0.5 + 1.0 / 128.0);
    }

    #[test]
    fn stochastic_expectation_matches_value() {
        // Eq. 8: over many draws the mean of the quantized value must
        // approach the unquantized input.
        let q = Quantizer::new(QFormat::Q0_4, Rounding::Stochastic);
        let x = 0.40; // between 6/16 = 0.375 and 7/16 = 0.4375
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = (f64::from(i) + 0.5) / f64::from(n); // deterministic uniform sweep
            sum += q.quantize_f64(x, u);
        }
        let mean = sum / f64::from(n);
        assert!((mean - x).abs() < 1e-3, "mean {mean} differs from {x}");
    }

    #[test]
    fn rounding_up_from_max_does_not_overflow() {
        let q = Quantizer::new(QFormat::Q0_2, Rounding::Stochastic);
        let v = q.quantize(0.75 + 0.1, 0.0);
        assert_eq!(v.raw(), QFormat::Q0_2.max_raw());
    }

    #[test]
    fn max_error_by_mode() {
        let f = QFormat::Q0_4;
        assert_eq!(Quantizer::new(f, Rounding::Nearest).max_error(), f.resolution() / 2.0);
        assert_eq!(Quantizer::new(f, Rounding::Truncate).max_error(), f.resolution());
    }
}
