//! A fixed-point value paired with its format.

use crate::QFormat;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single unsigned fixed-point value: a raw code interpreted under a
/// [`QFormat`].
///
/// `QValue` is a convenience wrapper used at API boundaries and in tests; the
/// hot simulation path stores raw codes in flat arrays and quantizes through
/// [`crate::Quantizer`] directly.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QValue {
    raw: u32,
    format: QFormat,
}

impl QValue {
    /// Wraps a raw code in `format`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds the format's largest code.
    #[must_use]
    pub fn from_raw(raw: u32, format: QFormat) -> Self {
        assert!(
            raw <= format.max_raw(),
            "raw code {raw} out of range for {format}"
        );
        QValue { raw, format }
    }

    /// The zero value of `format`.
    #[must_use]
    pub fn zero(format: QFormat) -> Self {
        QValue { raw: 0, format }
    }

    /// The largest representable value of `format`.
    #[must_use]
    pub fn max(format: QFormat) -> Self {
        QValue { raw: format.max_raw(), format }
    }

    /// The raw integer code.
    #[must_use]
    pub fn raw(&self) -> u32 {
        self.raw
    }

    /// The format this value is interpreted under.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The real value, `raw · 2^−n`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.format.raw_to_f64(self.raw)
    }

    /// Adds one LSB, saturating at the top of the range.
    #[must_use]
    pub fn saturating_incr(&self) -> Self {
        QValue {
            raw: (self.raw + 1).min(self.format.max_raw()),
            format: self.format,
        }
    }

    /// Subtracts one LSB, saturating at zero.
    #[must_use]
    pub fn saturating_decr(&self) -> Self {
        QValue { raw: self.raw.saturating_sub(1), format: self.format }
    }
}

impl PartialEq for QValue {
    fn eq(&self, other: &Self) -> bool {
        self.format == other.format && self.raw == other.raw
    }
}

impl Eq for QValue {}

impl PartialOrd for QValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.format == other.format {
            Some(self.raw.cmp(&other.raw))
        } else {
            self.to_f64().partial_cmp(&other.to_f64())
        }
    }
}

impl fmt::Display for QValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw_value() {
        let v = QValue::from_raw(64, QFormat::Q1_7);
        assert_eq!(v.to_f64(), 0.5);
        assert_eq!(v.raw(), 64);
    }

    #[test]
    fn saturating_arithmetic_stays_in_range() {
        let top = QValue::max(QFormat::Q0_2);
        assert_eq!(top.saturating_incr(), top);
        let bottom = QValue::zero(QFormat::Q0_2);
        assert_eq!(bottom.saturating_decr(), bottom);
        assert_eq!(bottom.saturating_incr().to_f64(), 0.25);
    }

    #[test]
    fn cross_format_comparison_uses_real_value() {
        let half8 = QValue::from_raw(64, QFormat::Q1_7);
        let half16 = QValue::from_raw(16384, QFormat::Q1_15);
        assert_eq!(half8.partial_cmp(&half16), Some(Ordering::Equal));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_raw_rejected() {
        let _ = QValue::from_raw(4, QFormat::Q0_2);
    }
}
