//! Rounding modes for re-quantization of conductance updates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three rounding options studied in Section III-C of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rounding {
    /// Bit truncation: keep the bits that fit, i.e. round toward zero.
    Truncate,
    /// Round to the nearest grid point (ties round up).
    Nearest,
    /// Stochastic rounding per Eq. 8: round up with probability
    /// `(x − trunc(x)) · 2^n`, otherwise down.
    Stochastic,
}

impl Rounding {
    /// All modes, in the column order of Table II.
    pub const ALL: [Rounding; 3] = [Rounding::Truncate, Rounding::Nearest, Rounding::Stochastic];

    /// Rounds `scaled` (a value already expressed in LSB units, i.e.
    /// `x · 2^n`) to an integer grid code.
    ///
    /// `uniform` must be a draw from `[0, 1)`; it is only consumed by
    /// [`Rounding::Stochastic`].
    #[must_use]
    pub fn round_scaled(&self, scaled: f64, uniform: f64) -> f64 {
        debug_assert!(scaled >= 0.0, "Q-format values are unsigned");
        match self {
            Rounding::Truncate => scaled.floor(),
            Rounding::Nearest => (scaled + 0.5).floor(),
            Rounding::Stochastic => {
                let down = scaled.floor();
                let frac = scaled - down;
                if uniform < frac {
                    down + 1.0
                } else {
                    down
                }
            }
        }
    }
}

impl fmt::Display for Rounding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rounding::Truncate => "truncation",
            Rounding::Nearest => "rounding to nearest",
            Rounding::Stochastic => "stochastic",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_floors() {
        assert_eq!(Rounding::Truncate.round_scaled(3.99, 0.0), 3.0);
        assert_eq!(Rounding::Truncate.round_scaled(3.0, 0.0), 3.0);
    }

    #[test]
    fn nearest_rounds_half_up() {
        assert_eq!(Rounding::Nearest.round_scaled(3.5, 0.0), 4.0);
        assert_eq!(Rounding::Nearest.round_scaled(3.49, 0.0), 3.0);
        assert_eq!(Rounding::Nearest.round_scaled(3.51, 0.0), 4.0);
    }

    #[test]
    fn stochastic_uses_uniform_threshold() {
        // frac = 0.25: rounds up iff uniform < 0.25.
        assert_eq!(Rounding::Stochastic.round_scaled(3.25, 0.10), 4.0);
        assert_eq!(Rounding::Stochastic.round_scaled(3.25, 0.25), 3.0);
        assert_eq!(Rounding::Stochastic.round_scaled(3.25, 0.99), 3.0);
    }

    #[test]
    fn stochastic_on_grid_never_moves() {
        for u in [0.0, 0.5, 0.999_999] {
            assert_eq!(Rounding::Stochastic.round_scaled(5.0, u), 5.0);
        }
    }
}
