//! Property tests for the serving layer's admission-control invariants
//! (DESIGN.md §12.2): under randomly generated request/complete/shed
//! interleavings —
//!
//! * `accepted + shed == submitted`, always;
//! * the queue depth never exceeds its configured bound;
//! * a drain leaves no orphaned job: every accepted request is handed to
//!   exactly one worker and every ticket resolves.
//!
//! The first property drives the bare [`JobQueue`] with real producer and
//! consumer threads (the loom models in `src/loom_tests.rs` explore the
//! small schedules exhaustively; this layer throws randomized volume at
//! the same contract). The second drives a real [`SnnServer`] over a tiny
//! frozen network end to end.

use std::sync::Arc;

use proptest::prelude::*;
use snn_core::config::{NetworkConfig, Preset};
use snn_core::sim::EvalSnapshot;
use snn_core::synapse::SynapseMatrix;
use snn_learning::Classifier;
use snn_serve::queue::JobQueue;
use snn_serve::{Overloaded, ServeConfig, SnnServer};

const N_INPUTS: usize = 16;
const N_EXC: usize = 4;

fn tiny_network() -> NetworkConfig {
    NetworkConfig::from_preset(Preset::FullPrecision, N_INPUTS, N_EXC)
}

fn tiny_snapshot(seed: u64) -> EvalSnapshot {
    let cfg = tiny_network();
    EvalSnapshot::new(SynapseMatrix::new_random(&cfg, seed), vec![0.0; N_EXC])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Queue-level accounting under concurrent producers and consumers.
    #[test]
    fn queue_accounting_holds_under_random_interleavings(
        capacity in 1usize..6,
        producers in 1usize..4,
        per_producer in 0usize..24,
        consumers in 1usize..4,
        pause_first in proptest::bool::ANY,
    ) {
        let q = Arc::new(JobQueue::new(capacity));
        if pause_first {
            q.pause();
        }
        std::thread::scope(|scope| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for k in 0..per_producer {
                        let _ = q.try_push((p, k));
                        if k % 3 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(job) = q.steal() {
                            seen.push(job);
                        }
                        seen
                    })
                })
                .collect();
            if pause_first {
                q.resume();
            }
            // try_push never blocks, so "all producers done" is visible as
            // submitted == expected; a dedicated closer waits for that and
            // then closes, which releases the consumers' drain.
            let q2 = Arc::clone(&q);
            let expected = (producers * per_producer) as u64;
            scope.spawn(move || {
                while q2.stats().submitted < expected {
                    std::thread::yield_now();
                }
                q2.close();
            });
            let mut all = Vec::new();
            for h in handles {
                all.extend(h.join().expect("consumer never panics"));
            }
            let s = q.stats();
            prop_assert_eq!(s.submitted, expected);
            prop_assert_eq!(s.accepted + s.shed, s.submitted);
            prop_assert_eq!(s.shed_full + s.shed_closed, s.shed);
            // The closer waits for every producer, so no submission can
            // race the close: every shed here is a genuine capacity shed.
            prop_assert_eq!(s.shed_closed, 0, "no producer ran past the close");
            prop_assert_eq!(s.shed_full, s.shed);
            prop_assert!(s.max_depth <= capacity,
                "depth {} exceeded capacity {}", s.max_depth, capacity);
            prop_assert_eq!(s.stolen, s.accepted);
            prop_assert_eq!(all.len() as u64, s.accepted);
            // Exactly-once delivery: no job claimed twice.
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), all.len(), "a job was delivered twice");
            prop_assert_eq!(q.drain_remaining().len(), 0, "drain left an orphaned job");
            Ok(())
        })?;
    }

    /// Server-level accounting: every accepted request resolves exactly
    /// once, everything else is shed with a typed rejection.
    #[test]
    fn server_drain_leaves_no_orphaned_request(
        workers in 1usize..4,
        capacity in 1usize..5,
        burst in 1usize..12,
        paused in proptest::bool::ANY,
        seed in 1u64..1000,
    ) {
        let mut config = ServeConfig::new(tiny_network(), seed, 5.0);
        config.workers = workers;
        config.queue_capacity = capacity;
        config.start_paused = paused;
        let snapshot = tiny_snapshot(seed);
        let classifier = Classifier::new(vec![0, 1, 0, 1], 2);
        let server = SnnServer::start(config, &snapshot, classifier);

        let pixels = vec![128u8; N_INPUTS];
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for k in 0..burst {
            match server.submit(&pixels, k as u64) {
                Ok(t) => tickets.push(t),
                Err(Overloaded::QueueFull { .. }) => shed += 1,
                Err(Overloaded::ShuttingDown) => {
                    prop_assert!(false, "server shed as ShuttingDown before shutdown");
                }
            }
        }
        if paused {
            server.resume();
        }
        let accepted = tickets.len() as u64;
        // Every ticket resolves (graceful drain serves all accepted work).
        let classifications: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let report = server.shutdown();

        prop_assert_eq!(report.submitted, burst as u64);
        prop_assert_eq!(report.accepted, accepted);
        prop_assert_eq!(report.shed, shed);
        prop_assert_eq!(report.accepted + report.shed, report.submitted);
        // All sheds happened before shutdown began, so every one is a
        // capacity shed — none may leak into the shutdown bucket.
        prop_assert_eq!(report.shed_full, shed);
        prop_assert_eq!(report.shed_closed, 0);
        prop_assert_eq!(report.completed, accepted);
        prop_assert_eq!(report.panicked, 0);
        prop_assert!(report.max_queue_depth <= capacity);
        for c in &classifications {
            prop_assert_eq!(c.counts.len(), N_EXC);
            prop_assert_eq!(c.confidence.len(), 2);
            prop_assert!(c.replica < workers);
            prop_assert!(c.latency_ms >= 0.0);
        }
    }
}

/// One step of the single-threaded shed-attribution model.
#[derive(Debug, Clone, Copy)]
enum AdmissionOp {
    Push,
    Steal,
    Pause,
    Resume,
    Close,
}

fn admission_op() -> impl Strategy<Value = AdmissionOp> {
    prop_oneof![
        6 => Just(AdmissionOp::Push),
        3 => Just(AdmissionOp::Steal),
        1 => Just(AdmissionOp::Pause),
        1 => Just(AdmissionOp::Resume),
        1 => Just(AdmissionOp::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shed attribution against a reference model: under random
    /// push/steal/pause/resume/close sequences, every shed lands in
    /// exactly one bucket and the bucket matches its cause — a push into a
    /// closed queue is a `shed_closed` (shutdown, [`Rejected::Closed`] /
    /// `Overloaded::ShuttingDown`), a push into a full open queue is a
    /// `shed_full` (overload, [`Rejected::Full`]). In particular a
    /// pause-then-close drain sheds only into `shed_closed`: shutdown
    /// never pollutes the queue-full overload signal.
    #[test]
    fn shed_buckets_match_their_cause(
        capacity in 1usize..5,
        ops in proptest::collection::vec(admission_op(), 1..80),
    ) {
        use snn_serve::queue::Rejected;
        let q = JobQueue::new(capacity);
        let (mut depth, mut paused, mut closed) = (0usize, false, false);
        let (mut full, mut shut, mut accepted) = (0u64, 0u64, 0u64);
        for (k, op) in ops.into_iter().enumerate() {
            match op {
                AdmissionOp::Push => match q.try_push(k) {
                    Ok(_) => {
                        prop_assert!(!closed && depth < capacity, "accept at depth {depth}");
                        depth += 1;
                        accepted += 1;
                    }
                    Err(Rejected::Closed(_)) => {
                        prop_assert!(closed, "Closed rejection from an open queue");
                        shut += 1;
                    }
                    Err(Rejected::Full(_)) => {
                        prop_assert!(!closed && depth == capacity, "Full rejection below capacity");
                        full += 1;
                    }
                },
                // Steal only when it cannot block: paused queues hold jobs
                // back, open empty queues park the stealer.
                AdmissionOp::Steal if !paused && (depth > 0 || closed) => {
                    let got = q.steal();
                    prop_assert_eq!(got.is_some(), depth > 0);
                    depth = depth.saturating_sub(1);
                }
                AdmissionOp::Steal => {}
                AdmissionOp::Pause => {
                    q.pause();
                    paused = !closed; // a closed queue cannot pause
                }
                AdmissionOp::Resume => {
                    q.resume();
                    paused = false;
                }
                AdmissionOp::Close => {
                    q.close();
                    closed = true;
                    paused = false;
                }
            }
            let s = q.stats();
            prop_assert_eq!(s.shed_full + s.shed_closed, s.shed, "a shed fell in no bucket");
            prop_assert_eq!(s.shed_full, full);
            prop_assert_eq!(s.shed_closed, shut);
            prop_assert_eq!(s.accepted, accepted);
            prop_assert_eq!(s.accepted + s.shed, s.submitted);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch claims obey the same exactly-once contract as single steals:
    /// no claim exceeds its width, no job is delivered twice or orphaned,
    /// and `stolen == accepted` after a graceful drain.
    #[test]
    fn batch_claims_deliver_every_job_exactly_once(
        capacity in 1usize..6,
        producers in 1usize..4,
        per_producer in 0usize..24,
        consumers in 1usize..4,
        width in 1usize..5,
    ) {
        let q = Arc::new(JobQueue::new(capacity));
        std::thread::scope(|scope| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for k in 0..per_producer {
                        let _ = q.try_push((p, k));
                        if k % 3 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        let mut oversized = 0usize;
                        loop {
                            let claim = q.steal_many(width);
                            if claim.is_empty() {
                                break;
                            }
                            if claim.len() > width {
                                oversized += 1;
                            }
                            seen.extend(claim);
                        }
                        (seen, oversized)
                    })
                })
                .collect();
            let q2 = Arc::clone(&q);
            let expected = (producers * per_producer) as u64;
            scope.spawn(move || {
                while q2.stats().submitted < expected {
                    std::thread::yield_now();
                }
                q2.close();
            });
            let mut all = Vec::new();
            for h in handles {
                let (seen, oversized) = h.join().expect("consumer never panics");
                prop_assert_eq!(oversized, 0, "a claim exceeded its width");
                all.extend(seen);
            }
            let s = q.stats();
            prop_assert_eq!(s.stolen, s.accepted);
            prop_assert_eq!(all.len() as u64, s.accepted);
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), all.len(), "a job was delivered twice");
            prop_assert_eq!(q.drain_remaining().len(), 0, "drain left an orphaned job");
            Ok(())
        })?;
    }

    /// Server-level batch forming: with a lock-step batch width configured,
    /// every accepted request still resolves exactly once and the report
    /// accounting balances — batching changes dispatch shape, not the
    /// admission contract.
    #[test]
    fn batched_server_drain_leaves_no_orphaned_request(
        workers in 1usize..3,
        capacity in 1usize..8,
        burst in 1usize..12,
        width in 2usize..5,
        paused in proptest::bool::ANY,
        seed in 1u64..1000,
    ) {
        let mut config = ServeConfig::new(tiny_network(), seed, 5.0);
        config.workers = workers;
        config.queue_capacity = capacity;
        config.start_paused = paused;
        config.batch = width;
        let snapshot = tiny_snapshot(seed);
        let classifier = Classifier::new(vec![0, 1, 0, 1], 2);
        let server = SnnServer::start(config, &snapshot, classifier);

        let pixels = vec![128u8; N_INPUTS];
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for k in 0..burst {
            match server.submit(&pixels, k as u64) {
                Ok(t) => tickets.push(t),
                Err(Overloaded::QueueFull { .. }) => shed += 1,
                Err(Overloaded::ShuttingDown) => {
                    prop_assert!(false, "server shed as ShuttingDown before shutdown");
                }
            }
        }
        if paused {
            server.resume();
        }
        let accepted = tickets.len() as u64;
        let classifications: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let report = server.shutdown();

        prop_assert_eq!(report.submitted, burst as u64);
        prop_assert_eq!(report.accepted, accepted);
        prop_assert_eq!(report.shed, shed);
        prop_assert_eq!(report.shed_full + report.shed_closed, report.shed);
        prop_assert_eq!(report.shed_closed, 0, "no shutdown sheds before shutdown");
        prop_assert_eq!(report.completed, accepted);
        prop_assert_eq!(report.panicked, 0);
        for c in &classifications {
            prop_assert_eq!(c.counts.len(), N_EXC);
            prop_assert!(c.replica < workers);
        }
    }
}

/// Serves `requests` through a server configured with `shards` devices per
/// replica and returns the spike counts in submission order.
fn serve_counts(shards: usize, requests: &[(u64, Vec<u8>)]) -> Vec<Vec<u32>> {
    // A hotter variant of the tiny fixture so presentations actually spike.
    let mut network = tiny_network().with_frequency(20.0, 800.0);
    network.v_spike = 0.5;
    let snapshot = EvalSnapshot::new(
        SynapseMatrix::new_random(&network, 11),
        vec![0.0; N_EXC],
    );
    let mut config = ServeConfig::new(network, 11, 40.0);
    config.workers = 2;
    config.queue_capacity = requests.len();
    config.shards = shards;
    let classifier = Classifier::new(vec![0, 1, 0, 1], 2);
    let server = SnnServer::start(config, &snapshot, classifier);
    let tickets: Vec<_> = requests
        .iter()
        .map(|(key, pixels)| server.submit(pixels, *key).expect("queue sized for the burst"))
        .collect();
    let counts = tickets.into_iter().map(|t| t.wait().counts).collect();
    let report = server.shutdown();
    assert_eq!(report.panicked, 0, "sharded replicas must not panic");
    counts
}

/// Sharded serving identity (DESIGN.md §16): replicas that partition the
/// snapshot across multiple devices classify every request exactly as
/// single-device replicas do.
#[test]
fn sharded_serving_matches_single_device_replicas() {
    let requests: Vec<(u64, Vec<u8>)> = (0..8u64)
        .map(|k| (k, (0..N_INPUTS).map(|i| ((i as u64 * 37 + k * 101) % 256) as u8).collect()))
        .collect();
    let single = serve_counts(1, &requests);
    assert!(
        single.iter().flatten().map(|&c| u64::from(c)).sum::<u64>() > 0,
        "silent fixture cannot prove identity"
    );
    for shards in [2, 4] {
        assert_eq!(single, serve_counts(shards, &requests), "s{shards}: counts diverged");
    }
}
