//! Model-checked concurrency tests for the serving hand-off protocol,
//! compiled only under `RUSTFLAGS="--cfg loom"` (see `src/sync.rs` and
//! DESIGN.md §12.4).
//!
//! Each `snn_loom::model` call explores **every** schedule of the threads
//! it spawns (or every schedule within the stated preemption bound) and
//! fails on any data race, deadlock, panic, or leaked thread. These are
//! the machine-checked versions of the queue/distributor contract in
//! `queue.rs` and the panic hand-off in `slot.rs`:
//!
//! - admission accounting (`accepted + shed == submitted`, depth ≤
//!   capacity) holds under every producer/consumer interleaving;
//! - a close-and-drain hands every accepted job to exactly one stealer —
//!   never zero, never two — and stealers observe exhaustion afterwards;
//! - `poison` can never strand a stealer blocked on the condvar;
//! - the worker-panic path re-raises on the caller: a panic caught on the
//!   worker and routed through `Slot::fail` resumes inside the caller's
//!   `Slot::wait`, in every schedule;
//! - a poisoned queue's leftover jobs are reclaimable and their tickets
//!   failable, so drain leaves no orphaned waiter.

use std::sync::Arc;

use crate::queue::JobQueue;
use crate::slot::Slot;
use snn_loom::sync::atomic::{AtomicUsize, Ordering};
use snn_loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn admission_accounting_is_exhaustive() {
    // Two producers race one consumer over a capacity-1 queue. In every
    // schedule within the preemption bound (the 3-thread condvar protocol
    // exceeds the exhaustive budget): nothing blocks on admission, the
    // depth bound holds, and accepted + shed == submitted == 2.
    snn_loom::model_bounded(3, || {
        let q = Arc::new(JobQueue::new(1));
        let producers: Vec<_> = (0..2u32)
            .map(|i| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let _ = q.try_push(i);
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                // Drain until exhaustion; the accounting assertions below
                // check the counts, the model checks for hangs.
                while q.steal().is_some() {}
            })
        };
        for p in producers {
            p.join().expect("producer never panics");
        }
        q.close();
        consumer.join().expect("consumer never panics");
        let s = q.stats();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.accepted + s.shed, s.submitted);
        assert!(s.max_depth <= 1, "depth bound violated: {}", s.max_depth);
        assert_eq!(s.stolen, s.accepted, "drain left a job behind");
        assert_eq!(q.depth(), 0);
    });
}

#[test]
fn drain_hands_every_job_to_exactly_one_stealer() {
    // Two jobs, two competing stealers, queue already closed: every
    // schedule must deliver each job exactly once (the claimed set is a
    // partition) and both stealers must terminate.
    snn_loom::model(|| {
        let q = Arc::new(JobQueue::new(2));
        q.try_push(1u32).expect("fits");
        q.try_push(2u32).expect("fits");
        q.close();
        let claimed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let claimed = Arc::clone(&claimed);
                thread::spawn(move || {
                    while let Some(job) = q.steal() {
                        // Bit-set accumulation: job k sets bit k; a double
                        // delivery would be visible as a lost count below.
                        claimed.fetch_add(job as usize, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stealer never panics");
        }
        assert_eq!(claimed.load(Ordering::Relaxed), 3, "each of jobs {{1,2}} exactly once");
        assert_eq!(q.stats().stolen, 2);
    });
}

#[test]
fn poison_never_strands_a_blocked_stealer() {
    // A stealer parked on the empty-queue condvar must observe a poison
    // from any schedule point and return None — the no-hang half of the
    // worker-death contract.
    snn_loom::model(|| {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let stealer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.steal();
            })
        };
        let poisoner = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.poison())
        };
        poisoner.join().expect("poison never panics");
        stealer.join().expect("stealer never panics");
        assert!(q.is_poisoned());
    });
}

#[test]
fn worker_panic_re_raises_on_the_caller_in_every_schedule() {
    // The panic hand-off: the worker catches its own panic and routes the
    // payload through Slot::fail; the caller's wait re-raises it. Explored
    // against every interleaving of fail and wait (including wait-first,
    // which must block then re-raise).
    snn_loom::model(|| {
        let slot = Arc::new(Slot::<u32>::new());
        let caller = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let err = catch_unwind(AssertUnwindSafe(|| slot.wait()))
                    .expect_err("the worker panic must re-raise on the caller");
                let msg = err.downcast_ref::<&str>().expect("payload forwarded verbatim");
                assert_eq!(*msg, "replica panicked serving this request");
            })
        };
        let worker = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let payload =
                    catch_unwind(|| panic!("replica panicked serving this request"))
                        .expect_err("the probe panic fires");
                slot.fail(payload);
            })
        };
        worker.join().expect("worker survives its caught panic");
        caller.join().expect("caller assertion holds");
    });
}

#[test]
fn poisoned_drain_leaves_no_orphaned_waiter() {
    // A job is accepted, then its worker dies before serving it: the
    // poison + drain_remaining + Slot::fail path must resolve the waiting
    // ticket (by re-raising) in every schedule — never leave it parked.
    snn_loom::model_bounded(3, || {
        let q = Arc::new(JobQueue::new(1));
        let slot = Arc::new(Slot::<u32>::new());
        assert!(q.try_push(Arc::clone(&slot)).is_ok(), "fits");
        let waiter = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let err = catch_unwind(AssertUnwindSafe(|| slot.wait()))
                    .expect_err("orphaned ticket must fail, not hang");
                assert!(err.downcast_ref::<String>().is_some());
            })
        };
        let dying_worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.poison())
        };
        dying_worker.join().expect("poison never panics");
        // The shutdown path (SnnServer::finish): reclaim leftovers and
        // fail their tickets.
        for orphan in q.drain_remaining() {
            orphan.fail(Box::new("worker died before serving".to_string()));
        }
        waiter.join().expect("waiter resolved");
    });
}
