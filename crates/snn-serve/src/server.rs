//! The serving front door: a pool of frozen replica engines behind the
//! bounded admission queue.
//!
//! [`SnnServer::start`] mounts `workers` zero-copy [`WtaEngine`] replicas
//! on one Arc-shared [`EvalSnapshot`] (no weight copies — the PR-3
//! replication machinery) and parks each on the shared [`JobQueue`].
//! [`SnnServer::submit`] is the admission edge: it either accepts a
//! classification request and returns a [`Ticket`], or sheds it with a
//! typed [`Overloaded`] — never blocking, never dropping silently.
//! [`SnnServer::shutdown`] closes the queue, drains every accepted request
//! and reduces the run into a [`ServeReport`].
//!
//! **Identity contract** (tier-1 `tests/serving.rs`): a served request with
//! train key `k` is classified exactly as the serial evaluation loop
//! classifies presentation slot `k` — spike trains are generated from RNG
//! streams keyed by `(k, input, spike)` and a frozen presentation consumes
//! no engine RNG, so worker count, queue order and shed-free load are pure
//! wall-clock knobs.
//!
//! **Panic semantics:** a panic while serving a request is caught on the
//! worker and re-raised on the caller's [`Ticket::wait`]; the worker and
//! every other in-flight request keep going. A panic *outside* a request
//! (replica construction) poisons the queue, fails every still-queued
//! ticket, and re-raises on [`SnnServer::shutdown`].
//!
//! Telemetry flows into the `serve/*` namespace documented in DESIGN.md
//! §12.3 (enforced by the snn-lint `trace-schema` rule).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use gpu_device::{Device, DeviceConfig, DeviceManager};
use snn_core::config::{InhibitionMode, NetworkConfig};
use snn_core::sim::{
    BatchedEngine, EvalSnapshot, ShardedEngine, ShardedSnapshot, SpikeTrains, WtaEngine,
};
use snn_learning::Classifier;
use spike_encoding::{EvalTrainGenerator, RateEncoder};

use crate::queue::{JobQueue, Rejected};
use crate::slot::Slot;
use crate::stats::LatencyDigest;
use crate::sync::{JoinHandle, Mutex, ThreadBuilder};

/// Everything the server needs to mount its replicas; execution knobs
/// only — none of them can change what a request classifies as.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Network architecture the snapshot was trained under.
    pub network: NetworkConfig,
    /// Engine/trainer seed; keys the per-request spike-train generator, so
    /// `(seed, key)` fully determines a request's input spikes.
    pub seed: u64,
    /// Presentation duration per request (ms).
    pub t_present_ms: f64,
    /// Replica worker count (clamped to at least 1).
    pub workers: usize,
    /// Admission bound: jobs queued beyond this are shed with
    /// [`Overloaded::QueueFull`].
    pub queue_capacity: usize,
    /// Per-replica device request; [`Device::new_budgeted`] clamps the
    /// total worker budget to host parallelism.
    pub device: DeviceConfig,
    /// Test/bench hook: start with the queue paused so a test can fill it
    /// deterministically before releasing the workers.
    pub start_paused: bool,
    /// Lock-step batch width: each replica drains up to `batch` queued
    /// requests per claim and advances them together through a
    /// [`BatchedEngine`] (a partial queue yields a partial batch — the
    /// admission edge never waits to fill up, so a lone request is served
    /// immediately). `1` keeps the per-request serial path; networks
    /// outside [`BatchedEngine::supports`] fall back to it silently.
    /// Pure wall-clock knob: batched lanes are bit-identical to serial
    /// presentations, so classifications cannot change.
    pub batch: usize,
    /// Devices each replica shards the excitatory layer across
    /// ([`snn_core::sim::ShardedEngine`], DESIGN.md §16). `1` (the
    /// default) mounts classic single-device replicas; larger values are
    /// bit-identical to it — a capacity knob for snapshots too large for
    /// one device. Sharded replicas serve request-at-a-time, so `batch`
    /// is ignored when `shards > 1`. Requires implicit inhibition.
    pub shards: usize,
}

impl ServeConfig {
    /// A serving configuration with host-sized defaults: one replica per
    /// host thread and a queue of four jobs per replica.
    #[must_use]
    pub fn new(network: NetworkConfig, seed: u64, t_present_ms: f64) -> Self {
        let workers = DeviceConfig::host_parallelism();
        ServeConfig {
            network,
            seed,
            t_present_ms,
            workers,
            queue_capacity: 4 * workers,
            device: DeviceConfig::default(),
            start_paused: false,
            batch: 1,
            shards: 1,
        }
    }
}

/// Why [`SnnServer::submit`] refused a request. The typed rejection *is*
/// the backpressure signal — callers retry, redirect or report upstream;
/// the server never blocks them and never drops an accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overloaded {
    /// The admission queue is at capacity.
    QueueFull {
        /// The configured bound the queue is at.
        capacity: usize,
    },
    /// The server is shutting down (or a worker died); no new requests.
    ShuttingDown,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overloaded::QueueFull { capacity } => {
                write!(f, "serving queue is at capacity ({capacity}); request shed")
            }
            Overloaded::ShuttingDown => write!(f, "server is shutting down; request shed"),
        }
    }
}

impl std::error::Error for Overloaded {}

/// What one served request resolves to.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted class, `None` when no labeled neuron spiked (abstention).
    pub class: Option<u8>,
    /// Per-class confidence: mean spike count of each label group — the
    /// vote [`Classifier::predict`] takes the argmax of.
    pub confidence: Vec<f64>,
    /// Raw per-neuron spike counts of the presentation.
    pub counts: Vec<u32>,
    /// Which replica served the request.
    pub replica: usize,
    /// Queue + service latency, admission to completion (ms).
    pub latency_ms: f64,
}

/// One queued request: the caller's pixels, the train key that pins its
/// input spikes, and the slot its ticket waits on.
struct Job {
    key: u64,
    pixels: Vec<u8>,
    slot: Arc<Slot<Classification>>,
    enqueued: Instant,
}

/// The caller's handle on an accepted request.
pub struct Ticket {
    slot: Arc<Slot<Classification>>,
}

impl Ticket {
    /// Blocks until the request completes. A worker panic on this request
    /// re-raises here (see the module docs).
    #[must_use = "dropping a ticket discards the classification"]
    pub fn wait(self) -> Classification {
        self.slot.wait()
    }

    /// Non-blocking readiness probe.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

/// Per-worker accounting, merged into the report at shutdown.
struct WorkerLog {
    index: usize,
    completed: u64,
    panicked: u64,
    busy_ms: f64,
    latencies: LatencyDigest,
}

#[derive(Default)]
struct SharedState {
    logs: Mutex<Vec<WorkerLog>>,
    /// Panic payloads from worker deaths *outside* a request; re-raised by
    /// [`SnnServer::shutdown`].
    fatal: Mutex<Vec<crate::slot::PanicPayload>>,
}

/// What a full serve run amounted to; returned by [`SnnServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests offered to admission (accepted + shed).
    pub submitted: u64,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests shed by admission control
    /// (always `shed_full + shed_closed`).
    pub shed: u64,
    /// Requests shed because the queue was at capacity
    /// ([`Overloaded::QueueFull`]) — the true overload signal.
    pub shed_full: u64,
    /// Requests shed because shutdown had begun
    /// ([`Overloaded::ShuttingDown`]) — expected during a drain, never an
    /// overload symptom.
    pub shed_closed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests whose processing panicked (payload re-raised on the ticket).
    pub panicked: u64,
    /// Median request latency (admission → completion), ms.
    pub latency_p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub latency_p99_ms: f64,
    /// Mean request latency, ms.
    pub latency_mean_ms: f64,
    /// Worst request latency, ms.
    pub latency_max_ms: f64,
    /// Server lifetime, start to drained, seconds.
    pub wall_s: f64,
    /// Sustained throughput: completed requests per second of lifetime.
    pub qps: f64,
    /// Per-replica busy fraction (service time / server lifetime).
    pub replica_utilization: Vec<f64>,
    /// High-water queue depth (≤ the configured capacity, by construction).
    pub max_queue_depth: usize,
}

/// A running multi-tenant inference service over one frozen snapshot. See
/// the module docs for the admission, identity and panic contracts.
pub struct SnnServer {
    queue: Arc<JobQueue<Job>>,
    shared: Arc<SharedState>,
    handles: Vec<JoinHandle<()>>,
    started: Instant,
    n_inputs: usize,
    queue_capacity: usize,
    workers: usize,
}

impl SnnServer {
    /// Spawns `config.workers` replica threads over `snapshot` and starts
    /// accepting requests. The classifier is the one produced by the
    /// labeling phase (`snn_learning::label_snapshot` or
    /// `evaluate_snapshot`); serving applies it verbatim, which is what
    /// makes served classifications identical to offline evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the network configuration is invalid, the snapshot or
    /// classifier shapes do not match it, or a worker thread cannot spawn.
    #[must_use]
    pub fn start(config: ServeConfig, snapshot: &EvalSnapshot, classifier: Classifier) -> Self {
        config.network.validate().expect("invalid network configuration");
        assert_eq!(
            snapshot.synapses().n_pre(),
            config.network.n_inputs,
            "snapshot pre population does not match the network"
        );
        assert_eq!(
            snapshot.synapses().n_post(),
            config.network.n_excitatory,
            "snapshot post population does not match the network"
        );
        assert_eq!(
            classifier.labels().len(),
            config.network.n_excitatory,
            "classifier label vector does not match the excitatory population"
        );
        assert!(
            config.t_present_ms > 0.0 && config.t_present_ms.is_finite(),
            "presentation duration must be positive"
        );
        let shards = config.shards.max(1);
        let sharded = (shards > 1).then(|| {
            assert_eq!(
                config.network.inhibition,
                InhibitionMode::Implicit,
                "sharded serving requires implicit inhibition (DESIGN.md §16)"
            );
            Arc::new(ShardedSnapshot::new(snapshot, shards))
        });

        let workers = config.workers.max(1);
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        if config.start_paused {
            queue.pause();
        }
        let shared = Arc::new(SharedState::default());

        let handles = (0..workers)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                let network = config.network.clone();
                let device_cfg = config.device.clone();
                let snapshot = snapshot.clone();
                let sharded = sharded.clone();
                let classifier = classifier.clone();
                let (seed, t_present_ms) = (config.seed, config.t_present_ms);
                let batch = config.batch.max(1);
                ThreadBuilder::new()
                    .name(format!("snn-serve/{index}"))
                    .spawn(move || {
                        worker_main(
                            index,
                            workers,
                            batch,
                            &queue,
                            &shared,
                            &network,
                            device_cfg,
                            seed,
                            t_present_ms,
                            &snapshot,
                            sharded.as_deref(),
                            &classifier,
                        );
                    })
                    .expect("failed to spawn a serving worker")
            })
            .collect();

        SnnServer {
            queue,
            shared,
            handles,
            started: Instant::now(),
            n_inputs: config.network.n_inputs,
            queue_capacity: config.queue_capacity,
            workers,
        }
    }

    /// Offers one classification request to admission control. `key` pins
    /// the request's input spike trains (the identity contract: serving
    /// key `k` classifies exactly as evaluation slot `k`); callers that
    /// don't care about reproducibility can use any unique value.
    ///
    /// Never blocks: the request is either queued (returning a [`Ticket`])
    /// or shed with a typed [`Overloaded`].
    ///
    /// # Panics
    ///
    /// Panics if `pixels` does not match the network's input population.
    pub fn submit(&self, pixels: &[u8], key: u64) -> Result<Ticket, Overloaded> {
        assert_eq!(pixels.len(), self.n_inputs, "pixel vector does not match the input population");
        let slot = Arc::new(Slot::new());
        let job =
            Job { key, pixels: pixels.to_vec(), slot: Arc::clone(&slot), enqueued: Instant::now() };
        match self.queue.try_push(job) {
            Ok(depth) => {
                snn_trace::metrics().observe("serve/queue_depth", depth as f64);
                Ok(Ticket { slot })
            }
            Err(Rejected::Full(_)) => Err(Overloaded::QueueFull { capacity: self.queue_capacity }),
            Err(Rejected::Closed(_)) => Err(Overloaded::ShuttingDown),
        }
    }

    /// Test/bench hook: hold all queued jobs back from the replicas (see
    /// [`ServeConfig::start_paused`]). Admission stays open.
    pub fn pause(&self) {
        self.queue.pause();
    }

    /// Releases a [`SnnServer::pause`].
    pub fn resume(&self) {
        self.queue.resume();
    }

    /// Current admission-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful drain: stops admitting, serves every already-accepted
    /// request, joins the replicas and reduces the run into a
    /// [`ServeReport`] (also published to the `serve/*` metrics namespace).
    ///
    /// # Panics
    ///
    /// Re-raises the payload of a worker that died outside a request
    /// (after failing that worker's still-queued tickets).
    #[must_use = "the report carries the run's accounting; drop it explicitly if unwanted"]
    pub fn shutdown(mut self) -> ServeReport {
        self.finish().expect("finish() always reports on the first call")
    }

    /// Shared close-drain-join-reduce path for `shutdown` and `Drop`.
    fn finish(&mut self) -> Option<ServeReport> {
        if self.handles.is_empty() {
            return None; // already finished
        }
        let drain_start = Instant::now();
        self.queue.close();
        for handle in self.handles.drain(..) {
            // Workers never unwind out of worker_main (panics are routed
            // through the slot or the fatal list), so join errors are
            // impossible; tolerate them anyway rather than aborting a drop.
            let _ = handle.join();
        }
        snn_trace::record_span_at("serve/drain", "serve", drain_start, drain_start.elapsed());

        // A poisoned queue may still hold jobs whose worker died; fail
        // their tickets so no caller hangs.
        let orphans = self.queue.drain_remaining();
        let orphaned = orphans.len() as u64;
        for job in orphans {
            job.slot.fail(Box::new(
                "snn-serve: replica worker died before serving this request".to_string(),
            ));
        }

        let wall_s = self.started.elapsed().as_secs_f64();
        snn_trace::record_span_at("serve/run", "serve", self.started, self.started.elapsed());

        let logs = std::mem::take(&mut *self.shared.logs.lock());
        let mut latencies = LatencyDigest::new();
        let (mut completed, mut panicked) = (0u64, 0u64);
        let mut replica_utilization = vec![0.0; self.workers];
        for log in &logs {
            completed += log.completed;
            panicked += log.panicked;
            latencies.merge(&log.latencies);
            replica_utilization[log.index] = (log.busy_ms / 1e3 / wall_s.max(1e-9)).min(1.0);
        }
        let stats = self.queue.stats();
        debug_assert_eq!(
            completed + panicked + orphaned,
            stats.accepted,
            "drain accounting: every accepted request resolves exactly once"
        );

        let report = ServeReport {
            submitted: stats.submitted,
            accepted: stats.accepted,
            shed: stats.shed,
            shed_full: stats.shed_full,
            shed_closed: stats.shed_closed,
            completed,
            panicked,
            latency_p50_ms: latencies.quantile_ms(0.5),
            latency_p99_ms: latencies.quantile_ms(0.99),
            latency_mean_ms: latencies.mean_ms(),
            latency_max_ms: latencies.max_ms(),
            wall_s,
            qps: completed as f64 / wall_s.max(1e-9),
            replica_utilization,
            max_queue_depth: stats.max_depth,
        };
        publish_report(&report);

        // Worker death outside a request is fatal: surface it to the
        // operator once every ticket has been resolved.
        let mut fatal = self.shared.fatal.lock();
        if let Some(payload) = fatal.pop() {
            drop(fatal);
            std::panic::resume_unwind(payload);
        }
        Some(report)
    }
}

impl Drop for SnnServer {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            // Dropping without shutdown still drains gracefully; the
            // report is discarded and fatal payloads are swallowed (a
            // panicking drop during an unwind would abort).
            let _ = self.finish();
        }
    }
}

/// Publishes the shutdown report to the unified metrics hub under the
/// `serve/*` namespace (DESIGN.md §12.3).
fn publish_report(report: &ServeReport) {
    let hub = snn_trace::metrics();
    hub.set_counter("serve/submitted", report.submitted);
    hub.set_counter("serve/accepted", report.accepted);
    hub.set_counter("serve/shed", report.shed);
    hub.set_counter("serve/shed_full", report.shed_full);
    hub.set_counter("serve/shed_closed", report.shed_closed);
    hub.set_counter("serve/completed", report.completed);
    hub.set_value("serve/latency_p50_ms", report.latency_p50_ms);
    hub.set_value("serve/latency_p99_ms", report.latency_p99_ms);
    hub.set_value("serve/qps", report.qps);
    for &u in &report.replica_utilization {
        hub.observe("serve/replica_utilization", u);
    }
}

/// One replica thread: mount a frozen engine on the shared snapshot, then
/// steal-serve until the queue drains. Per-request panics are forwarded to
/// the requester's ticket; any other panic poisons the queue (failing
/// still-queued tickets falls to `finish`) and lands in the fatal list.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    index: usize,
    replicas: usize,
    batch: usize,
    queue: &JobQueue<Job>,
    shared: &SharedState,
    network: &NetworkConfig,
    device_cfg: DeviceConfig,
    seed: u64,
    t_present_ms: f64,
    snapshot: &EvalSnapshot,
    sharded: Option<&ShardedSnapshot>,
    classifier: &Classifier,
) {
    let mut log =
        WorkerLog { index, completed: 0, panicked: 0, busy_ms: 0.0, latencies: LatencyDigest::new() };
    let run = catch_unwind(AssertUnwindSafe(|| {
        let encoder = RateEncoder::new(network.frequency);
        let generator = EvalTrainGenerator::new(seed, network.dt_ms);
        if let Some(sliced) = sharded {
            // Multi-device replica: the snapshot is partitioned across a
            // manager's devices and each request runs the lock-step
            // shard exchange (bit-identical to a single-device replica;
            // DESIGN.md §16). Request-at-a-time: sharding and lock-step
            // batching are mutually exclusive execution strategies.
            let manager =
                DeviceManager::new_budgeted(sliced.n_shards(), device_cfg, replicas);
            let mut engine = ShardedEngine::replica(network.clone(), &manager, seed, sliced)
                .expect("validated in SnnServer::start");
            serve_serial(index, &mut log, queue, &encoder, &generator, t_present_ms, classifier, |t| {
                engine.present_frozen(t)
            });
            engine.publish_metrics();
            manager.publish_pool_metrics();
            return;
        }
        let device = Device::new_budgeted(device_cfg, replicas);
        if batch > 1 && BatchedEngine::supports(network) {
            let mut engine = BatchedEngine::new(network.clone(), &device, snapshot, batch)
                .expect("validated in SnnServer::start");
            serve_batched(
                index,
                &mut log,
                queue,
                &mut engine,
                &encoder,
                &generator,
                t_present_ms,
                classifier,
            );
            return;
        }
        let mut engine = WtaEngine::replica(network.clone(), &device, seed, snapshot)
            .expect("validated in SnnServer::start");
        serve_serial(index, &mut log, queue, &encoder, &generator, t_present_ms, classifier, |t| {
            engine.present_frozen(t)
        });
    }));
    if let Err(payload) = run {
        queue.poison();
        shared.fatal.lock().push(payload);
    }
    shared.logs.lock().push(log);
}

/// The request-at-a-time serving loop, generic over the engine: `present`
/// runs one frozen presentation and returns the per-neuron counts. Shared
/// by single-device and sharded replicas.
#[allow(clippy::too_many_arguments)]
fn serve_serial(
    index: usize,
    log: &mut WorkerLog,
    queue: &JobQueue<Job>,
    encoder: &RateEncoder,
    generator: &EvalTrainGenerator,
    t_present_ms: f64,
    classifier: &Classifier,
    mut present: impl FnMut(&SpikeTrains) -> Vec<u32>,
) {
    while let Some(job) = queue.steal() {
        let begin = Instant::now();
        let served = catch_unwind(AssertUnwindSafe(|| {
            let _span = snn_trace::span_cat("serve/request", "serve");
            let rates = encoder.rates(&job.pixels);
            let trains = generator.generate(job.key, &rates, t_present_ms);
            let counts = present(&trains);
            let confidence = classifier.scores(&counts);
            let class = classifier.predict(&counts);
            Classification { class, confidence, counts, replica: index, latency_ms: 0.0 }
        }));
        log.busy_ms += begin.elapsed().as_secs_f64() * 1e3;
        match served {
            Ok(mut result) => {
                let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                result.latency_ms = latency_ms;
                log.completed += 1;
                log.latencies.record(latency_ms);
                snn_trace::metrics().observe("serve/latency_ms", latency_ms);
                job.slot.fill(result);
            }
            Err(payload) => {
                // A request that panics its presentation may leave the
                // replica's transient state mid-flight; present_frozen
                // re-initializes all of it, so the worker serves on.
                log.panicked += 1;
                job.slot.fail(payload);
            }
        }
    }
}

/// The lock-step serving loop: claim up to the configured batch of queued
/// requests in one [`JobQueue::steal_many`], advance them together through
/// [`BatchedEngine::present_frozen_batch`], and resolve every ticket of
/// the dispatch. A panic anywhere in a dispatch fails *all* of its lanes
/// (the payload rides the first ticket, peers get a descriptive failure) —
/// lanes advance lock-step, so no lane's result is trustworthy after one
/// panics — and the worker serves on with the next claim.
#[allow(clippy::too_many_arguments)]
fn serve_batched(
    index: usize,
    log: &mut WorkerLog,
    queue: &JobQueue<Job>,
    engine: &mut BatchedEngine<'_>,
    encoder: &RateEncoder,
    generator: &EvalTrainGenerator,
    t_present_ms: f64,
    classifier: &Classifier,
) {
    loop {
        let jobs = queue.steal_many(engine.batch());
        if jobs.is_empty() {
            break;
        }
        let begin = Instant::now();
        let served = catch_unwind(AssertUnwindSafe(|| {
            let _span = snn_trace::span_cat("serve/batch", "serve");
            let trains: Vec<SpikeTrains> = jobs
                .iter()
                .map(|job| generator.generate(job.key, &encoder.rates(&job.pixels), t_present_ms))
                .collect();
            let refs: Vec<&SpikeTrains> = trains.iter().collect();
            engine
                .present_frozen_batch(&refs)
                .into_iter()
                .map(|counts| {
                    let confidence = classifier.scores(&counts);
                    let class = classifier.predict(&counts);
                    Classification { class, confidence, counts, replica: index, latency_ms: 0.0 }
                })
                .collect::<Vec<_>>()
        }));
        log.busy_ms += begin.elapsed().as_secs_f64() * 1e3;
        match served {
            Ok(results) => {
                snn_trace::metrics().observe("serve/batch_width", jobs.len() as f64);
                for (job, mut result) in jobs.into_iter().zip(results) {
                    let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                    result.latency_ms = latency_ms;
                    log.completed += 1;
                    log.latencies.record(latency_ms);
                    snn_trace::metrics().observe("serve/latency_ms", latency_ms);
                    job.slot.fill(result);
                }
            }
            Err(payload) => {
                log.panicked += jobs.len() as u64;
                let mut jobs = jobs.into_iter();
                if let Some(first) = jobs.next() {
                    first.slot.fail(payload);
                }
                for job in jobs {
                    job.slot.fail(Box::new(
                        "snn-serve: a lock-step batch peer panicked during this dispatch"
                            .to_string(),
                    ));
                }
            }
        }
    }
}
