//! The crate's single import point for concurrency primitives.
//!
//! Normal builds re-export the production primitives (`parking_lot`
//! mutexes/condvars, `std` threads). Under `RUSTFLAGS="--cfg loom"` every
//! one of them is swapped for its [`snn_loom`] model-checked double, which
//! lets `src/loom_tests.rs` exhaustively interleave the job-queue
//! hand-off protocol (enqueue vs. steal vs. drain vs. poison) and the
//! ticket slot's panic hand-off (see DESIGN.md §12.4).
//!
//! Everything that synchronizes in this crate must import from here — the
//! `snn-lint` `sync-shim` rule rejects direct `parking_lot::` or
//! `std::sync::Mutex`/`std::thread` use elsewhere in the crate — so the
//! model checker sees every primitive the production build uses.

#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::thread::{Builder as ThreadBuilder, JoinHandle};

#[cfg(loom)]
pub(crate) use snn_loom::sync::{Condvar, Mutex};
#[cfg(loom)]
#[allow(unused_imports)] // server.rs (the only spawner) is compiled out under loom
pub(crate) use snn_loom::thread::{Builder as ThreadBuilder, JoinHandle};
