//! The one-shot result hand-off between a replica worker and the caller
//! holding a ticket.
//!
//! A [`Slot`] is filled exactly once — with the classification, or with a
//! worker's panic payload — and [`Slot::wait`] blocks until then. The
//! panic path **re-raises on the caller**: a worker that panics while
//! processing a request does not take the server down, it forwards the
//! panic to the one caller who asked for that request (the same hand-off
//! the gpu-device worker pool uses for kernel panics, DESIGN.md §10).
//! The protocol is model-checked under `--cfg loom` in `src/loom_tests.rs`.

use std::any::Any;

use crate::sync::{Condvar, Mutex};

/// A worker panic payload, forwarded verbatim so the caller's unwind shows
/// the original message.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

enum State<T> {
    Pending,
    Done(T),
    Panicked(PanicPayload),
    Taken,
}

/// A one-shot, fill-exactly-once result cell. See the module docs.
pub struct Slot<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slot<T> {
    /// An empty (pending) slot.
    #[must_use]
    pub fn new() -> Self {
        Slot { state: Mutex::new(State::Pending), ready: Condvar::new() }
    }

    /// Fills the slot with a completed result and wakes the waiter.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already filled — the queue hands every job to
    /// exactly one worker, so a double fill is a protocol violation.
    pub fn fill(&self, value: T) {
        let mut g = self.state.lock();
        assert!(matches!(*g, State::Pending), "slot filled twice");
        *g = State::Done(value);
        drop(g);
        self.ready.notify_all();
    }

    /// Fills the slot with a worker's panic payload and wakes the waiter,
    /// which will re-raise it.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already filled.
    pub fn fail(&self, payload: PanicPayload) {
        let mut g = self.state.lock();
        assert!(matches!(*g, State::Pending), "slot filled twice");
        *g = State::Panicked(payload);
        drop(g);
        self.ready.notify_all();
    }

    /// Non-blocking probe: `true` once the slot has been filled (result or
    /// panic) and not yet consumed by [`Slot::wait`].
    #[must_use]
    pub fn is_ready(&self) -> bool {
        !matches!(*self.state.lock(), State::Pending)
    }

    /// Blocks until the slot is filled and takes the result. If the worker
    /// panicked on this request, the panic resumes here, on the caller.
    ///
    /// # Panics
    ///
    /// Re-raises the worker's panic payload; also panics if called twice
    /// (the serving API consumes the ticket, so this cannot happen there).
    pub fn wait(&self) -> T {
        let mut g = self.state.lock();
        loop {
            match std::mem::replace(&mut *g, State::Taken) {
                State::Pending => {
                    *g = State::Pending;
                    self.ready.wait(&mut g);
                }
                State::Done(value) => return value,
                State::Panicked(payload) => {
                    drop(g);
                    std::panic::resume_unwind(payload);
                }
                State::Taken => panic!("slot waited on twice"),
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fill_then_wait_round_trips() {
        let slot = Arc::new(Slot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        slot.fill(42u32);
        assert_eq!(waiter.join().expect("no panic"), 42);
    }

    #[test]
    fn worker_panic_re_raises_on_the_caller() {
        let slot = Arc::new(Slot::<u32>::new());
        slot.fail(Box::new("engine exploded".to_string()));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.wait()))
            .expect_err("wait must re-raise the worker panic");
        let msg = err.downcast_ref::<String>().expect("payload forwarded verbatim");
        assert_eq!(msg, "engine exploded");
    }

    #[test]
    #[should_panic(expected = "slot filled twice")]
    fn double_fill_is_a_protocol_violation() {
        let slot = Slot::new();
        slot.fill(1u32);
        slot.fill(2u32);
    }
}
