//! The bounded admission queue between the serving front door and the
//! replica workers.
//!
//! One [`JobQueue`] is shared by every producer (callers of
//! `SnnServer::submit`) and every consumer (replica worker threads). Its
//! contract, model-checked under `--cfg loom` in `src/loom_tests.rs` and
//! property-tested in `tests/admission.rs`:
//!
//! * **Admission is all-or-nothing.** [`JobQueue::try_push`] either accepts
//!   a job (queue depth strictly below capacity, queue open) or returns it
//!   to the caller in a typed [`Rejected`] — a full queue *sheds* load, it
//!   never blocks the producer and never drops a job silently.
//! * **Every accepted job is stolen exactly once.** Workers claim jobs
//!   through [`JobQueue::steal`], which blocks while the queue is open and
//!   empty and returns `None` only once the queue is closed *and* drained
//!   (or poisoned) — so a graceful shutdown serves everything it admitted.
//! * **Accounting is exact.** `accepted + shed == submitted` at all times,
//!   sheds are attributed to their cause
//!   (`shed_full + shed_closed == shed`, so a shutdown drain never pollutes
//!   the queue-full overload signal), and the observed depth never exceeds
//!   the configured capacity ([`QueueStats::max_depth`]).
//! * **Poisoning never hangs a peer.** [`JobQueue::poison`] (a worker died
//!   outside its per-job panic guard) wakes every blocked stealer; the
//!   leftovers are reclaimed with [`JobQueue::drain_remaining`] so their
//!   tickets can be failed instead of orphaned.
//!
//! The queue is deliberately engine-agnostic (`T` is opaque) so the loom
//! models can drive it with plain integers.

use std::collections::VecDeque;

use crate::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused a job; the job rides back to the
/// caller so nothing is dropped.
#[derive(Debug)]
pub enum Rejected<T> {
    /// The queue is at capacity — the caller should shed or retry later.
    Full(T),
    /// The queue has been closed (shutdown has begun) or poisoned.
    Closed(T),
}

impl<T> Rejected<T> {
    /// The rejected job itself.
    pub fn into_job(self) -> T {
        match self {
            Rejected::Full(job) | Rejected::Closed(job) => job,
        }
    }
}

/// A monotonic snapshot of the queue's accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Jobs offered to admission (accepted + shed).
    pub submitted: u64,
    /// Jobs admitted into the queue.
    pub accepted: u64,
    /// Jobs refused by admission control (full or closed);
    /// always `shed_full + shed_closed`.
    pub shed: u64,
    /// Jobs refused because the queue was at capacity — the overload
    /// signal an operator sizes capacity against.
    pub shed_full: u64,
    /// Jobs refused because the queue was closed or poisoned (shutdown in
    /// progress) — expected during a drain, not an overload symptom.
    pub shed_closed: u64,
    /// Jobs claimed by workers.
    pub stolen: u64,
    /// High-water queue depth ever observed.
    pub max_depth: usize,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    capacity: usize,
    /// Test/bench hook: a paused queue admits jobs but hands none out, so a
    /// test can fill the queue deterministically before resuming.
    paused: bool,
    /// Closed queues shed all new submissions; stealers drain what remains.
    closed: bool,
    /// Poisoned queues additionally stop handing out jobs at all.
    poisoned: bool,
    stats: QueueStats,
}

/// Bounded multi-producer multi-consumer job queue with load-shedding
/// admission control, pause/resume, graceful close-and-drain, and a poison
/// path for abnormal worker death. See the module docs for the contract.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    takers: Condvar,
}

impl<T> JobQueue<T> {
    /// An open queue admitting at most `capacity` queued jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue could never
    /// hand a job over.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity),
                capacity,
                paused: false,
                closed: false,
                poisoned: false,
                stats: QueueStats::default(),
            }),
            takers: Condvar::new(),
        }
    }

    /// Offers one job to admission control. Returns the depth after the
    /// push on acceptance; returns the job itself inside [`Rejected`] when
    /// the queue is full or closed. Never blocks.
    pub fn try_push(&self, job: T) -> Result<usize, Rejected<T>> {
        let mut g = self.inner.lock();
        g.stats.submitted += 1;
        if g.closed || g.poisoned {
            g.stats.shed += 1;
            g.stats.shed_closed += 1;
            return Err(Rejected::Closed(job));
        }
        if g.jobs.len() >= g.capacity {
            g.stats.shed += 1;
            g.stats.shed_full += 1;
            return Err(Rejected::Full(job));
        }
        g.jobs.push_back(job);
        g.stats.accepted += 1;
        let depth = g.jobs.len();
        g.stats.max_depth = g.stats.max_depth.max(depth);
        drop(g);
        self.takers.notify_one();
        Ok(depth)
    }

    /// Claims the next job, blocking while the queue is open but empty (or
    /// paused). Returns `None` once the queue is closed and fully drained,
    /// or as soon as it is poisoned — a stealer can never hang on a dead
    /// queue.
    pub fn steal(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if g.poisoned {
                return None;
            }
            if !g.paused {
                if let Some(job) = g.jobs.pop_front() {
                    g.stats.stolen += 1;
                    return Some(job);
                }
                if g.closed {
                    return None;
                }
            }
            self.takers.wait(&mut g);
        }
    }

    /// Claims up to `max` jobs in one critical section — the batch-forming
    /// admission edge of the lock-step serving path. Blocks exactly like
    /// [`JobQueue::steal`] while the queue is open but empty (or paused),
    /// then drains whatever is queued at that moment, never waiting for a
    /// full batch: latency of the first queued request always wins over
    /// batch occupancy. Returns an empty vector only once the queue is
    /// closed and drained, or as soon as it is poisoned.
    ///
    /// Accounting: the claimed jobs count into [`QueueStats::stolen`] the
    /// same as individual steals, so `stolen == accepted` after a graceful
    /// drain regardless of batch width.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero — an empty claim would be indistinguishable
    /// from queue exhaustion.
    pub fn steal_many(&self, max: usize) -> Vec<T> {
        assert!(max > 0, "batch claim width must be at least 1");
        let mut g = self.inner.lock();
        loop {
            if g.poisoned {
                return Vec::new();
            }
            if !g.paused {
                if !g.jobs.is_empty() {
                    let take = max.min(g.jobs.len());
                    let batch: Vec<T> = g.jobs.drain(..take).collect();
                    g.stats.stolen += batch.len() as u64;
                    return batch;
                }
                if g.closed {
                    return Vec::new();
                }
            }
            self.takers.wait(&mut g);
        }
    }

    /// Holds all jobs back from stealers (admission stays open). A closed
    /// queue cannot be paused — [`JobQueue::close`] always resumes so a
    /// drain can complete.
    pub fn pause(&self) {
        let mut g = self.inner.lock();
        if !g.closed {
            g.paused = true;
        }
    }

    /// Releases a [`JobQueue::pause`].
    pub fn resume(&self) {
        let mut g = self.inner.lock();
        g.paused = false;
        drop(g);
        self.takers.notify_all();
    }

    /// Begins a graceful drain: new submissions shed with
    /// [`Rejected::Closed`], stealers keep claiming until the queue is
    /// empty, then observe `None`. Clears any pause so the drain cannot
    /// stall.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        g.paused = false;
        drop(g);
        self.takers.notify_all();
    }

    /// Marks the queue dead after an abnormal worker exit: admission sheds,
    /// every blocked stealer wakes and observes `None`, and whatever jobs
    /// remain queued are reclaimable via [`JobQueue::drain_remaining`] so
    /// their tickets can be failed rather than orphaned.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        g.closed = true;
        g.paused = false;
        drop(g);
        self.takers.notify_all();
    }

    /// Whether [`JobQueue::poison`] has been called.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Whether [`JobQueue::close`] (or poison) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Takes every job still queued (normally empty after a graceful
    /// drain; non-empty only after a poison).
    #[must_use]
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut g = self.inner.lock();
        g.jobs.drain(..).collect()
    }

    /// Current queue depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// A snapshot of the accounting counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().stats
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_sheds_exactly_above_capacity() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1).expect("first fits"), 1);
        assert_eq!(q.try_push(2).expect("second fits"), 2);
        match q.try_push(3) {
            Err(Rejected::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full rejection, got {other:?}"),
        }
        let s = q.stats();
        assert_eq!((s.submitted, s.accepted, s.shed), (3, 2, 1));
        assert_eq!((s.shed_full, s.shed_closed), (1, 0), "a capacity shed is not a shutdown shed");
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn close_drains_then_signals_exhaustion() {
        let q = JobQueue::new(4);
        q.try_push(10).expect("accepted");
        q.try_push(11).expect("accepted");
        q.close();
        match q.try_push(12) {
            Err(Rejected::Closed(job)) => assert_eq!(job, 12),
            other => panic!("expected Closed rejection, got {other:?}"),
        }
        let s = q.stats();
        assert_eq!((s.shed, s.shed_full, s.shed_closed), (1, 0, 1), "a shutdown shed is not overload");
        assert_eq!(q.steal(), Some(10));
        assert_eq!(q.steal(), Some(11));
        assert_eq!(q.steal(), None);
        assert_eq!(q.stats().stolen, 2);
    }

    #[test]
    fn pause_holds_jobs_until_resume() {
        let q = Arc::new(JobQueue::new(4));
        q.pause();
        q.try_push(1).expect("paused queues still admit");
        let thief = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.steal())
        };
        // The stealer must block while paused; resume releases it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!thief.is_finished(), "steal must block on a paused queue");
        q.resume();
        assert_eq!(thief.join().expect("no panic"), Some(1));
    }

    #[test]
    fn poison_wakes_blocked_stealers_and_reclaims_jobs() {
        let q = Arc::new(JobQueue::new(4));
        q.pause();
        q.try_push(7).expect("accepted");
        let thief = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.steal())
        };
        q.poison();
        assert_eq!(thief.join().expect("no panic"), None);
        assert_eq!(q.drain_remaining(), vec![7]);
        assert!(q.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = JobQueue::<u32>::new(0);
    }

    #[test]
    fn steal_many_drains_at_most_max_in_queue_order() {
        let q = JobQueue::new(8);
        for k in 0..5 {
            q.try_push(k).expect("fits");
        }
        assert_eq!(q.steal_many(3), vec![0, 1, 2]);
        // A partial batch: takes what is there, never waits to fill up.
        assert_eq!(q.steal_many(3), vec![3, 4]);
        q.close();
        assert_eq!(q.steal_many(3), Vec::<i32>::new());
        assert_eq!(q.stats().stolen, 5);
    }

    #[test]
    fn steal_many_blocks_while_open_and_empty() {
        let q = Arc::new(JobQueue::new(4));
        let thief = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.steal_many(4))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!thief.is_finished(), "steal_many must block on an open empty queue");
        q.try_push(9).expect("accepted");
        assert_eq!(thief.join().expect("no panic"), vec![9]);
    }

    #[test]
    fn steal_many_returns_empty_on_poison() {
        let q = Arc::new(JobQueue::new(4));
        q.pause();
        q.try_push(1).expect("accepted");
        let thief = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.steal_many(2))
        };
        q.poison();
        assert_eq!(thief.join().expect("no panic"), Vec::<i32>::new());
        assert_eq!(q.drain_remaining(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "batch claim width must be at least 1")]
    fn a_zero_width_claim_is_rejected() {
        let q = JobQueue::<u32>::new(1);
        let _ = q.steal_many(0);
    }
}
