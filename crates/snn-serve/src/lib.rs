//! Multi-tenant inference serving over frozen
//! [`EvalSnapshot`](snn_core::sim::EvalSnapshot) replicas — the front door
//! the ROADMAP's "millions of users" direction calls for (DESIGN.md §12).
//!
//! The trained low-precision network is cheap to replicate: PR 3's
//! snapshot Arc-shares one synapse matrix across any number of zero-copy
//! frozen engines. This crate puts a request path on top:
//!
//! ```text
//!  submit ──► [JobQueue: bounded, load-shedding] ──► replica workers ──► Ticket
//!    │                (admission control)            (steal + serve)       │
//!    └── Overloaded (typed rejection, never a hang or a silent drop)  wait ┘
//! ```
//!
//! * [`SnnServer`] — the service: N replica engines on one snapshot, a
//!   work-stealing distributor over the shared [`queue::JobQueue`],
//!   graceful drain on [`SnnServer::shutdown`].
//! * [`queue`] — the bounded admission queue (enqueue / steal / drain /
//!   poison protocol; model-checked under `--cfg loom`, see DESIGN.md
//!   §12.4).
//! * [`Classification`] — class + per-class spike-count confidence, the
//!   paper's spike-count vote applied per request.
//! * [`stats`] — latency digests behind the `serve/latency_*` metrics.
//!
//! **Correctness contract, tested not asserted:** a served batch is
//! classification-identical to `snn_learning::evaluate_snapshot` over the
//! same images at any worker count, queue order and shed-free load
//! (tier-1 `tests/serving.rs`); admission accounting satisfies
//! `accepted + shed == submitted` with queue depth bounded by capacity
//! under arbitrary interleavings (proptest + loom).
//!
//! Latency/throughput telemetry flows into the `serve/*` namespace of the
//! unified [`MetricsHub`](snn_trace::MetricsHub) (schema: DESIGN.md §12.3,
//! lint-enforced); `bench --bin serving` records sustained QPS and tail
//! latency to `results/BENCH_serving.json`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;
mod slot;
pub mod stats;
mod sync;

// The server proper mounts real engines and spawns OS threads; under the
// model checker only the hand-off protocol (queue + slot) is compiled.
#[cfg(not(loom))]
mod server;

#[cfg(loom)]
mod loom_tests;

#[cfg(not(loom))]
pub use server::{Classification, Overloaded, ServeConfig, ServeReport, SnnServer, Ticket};
pub use slot::{PanicPayload, Slot};
