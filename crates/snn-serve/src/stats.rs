//! Latency accounting for the serving layer: per-request samples collected
//! by the replica workers, reduced to the percentile summary published as
//! `serve/latency_p50_ms` / `serve/latency_p99_ms` (DESIGN.md §12.3) and
//! recorded in `results/BENCH_serving.json` by the load generator.

/// A bag of latency samples (milliseconds) with percentile reduction.
/// Workers accumulate locally and merge once at exit, so the hot path
/// never contends on a shared histogram.
#[derive(Debug, Clone, Default)]
pub struct LatencyDigest {
    samples_ms: Vec<f64>,
}

impl LatencyDigest {
    /// An empty digest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency in milliseconds.
    pub fn record(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    /// Absorbs another digest (per-worker merge at exit).
    pub fn merge(&mut self, other: &LatencyDigest) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method on the
    /// sorted samples; `0.0` on an empty digest. `q = 0.5` is the median,
    /// `q = 0.99` the tail latency the serving bench reports.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any sample is NaN.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Arithmetic mean; `0.0` on an empty digest.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
    }

    /// Largest sample; `0.0` on an empty digest.
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        self.samples_ms.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut d = LatencyDigest::new();
        for ms in [5.0, 1.0, 3.0, 2.0, 4.0] {
            d.record(ms);
        }
        assert_eq!(d.len(), 5);
        assert!((d.quantile_ms(0.5) - 3.0).abs() < 1e-12);
        assert!((d.quantile_ms(0.99) - 5.0).abs() < 1e-12);
        assert!((d.quantile_ms(0.0) - 1.0).abs() < 1e-12);
        assert!((d.mean_ms() - 3.0).abs() < 1e-12);
        assert!((d.max_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_digest_reports_zero() {
        let d = LatencyDigest::new();
        assert!(d.is_empty());
        assert_eq!(d.quantile_ms(0.5), 0.0);
        assert_eq!(d.mean_ms(), 0.0);
        assert_eq!(d.max_ms(), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyDigest::new();
        a.record(1.0);
        let mut b = LatencyDigest::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.max_ms() - 9.0).abs() < 1e-12);
    }
}
