//! `determinism-taint`: prove that no RNG or wall-clock source is
//! transitively callable from a kernel/step entry point (DESIGN.md §15).
//!
//! Replaces the old `philox-only` path allow-list: instead of grepping a
//! hand-maintained list of files for forbidden substrings, this analysis
//! seeds the call graph at sink references *after `use`-alias resolution*
//! (`rand::…`, `thread_rng`, `from_entropy`, `Instant::now`,
//! `SystemTime`) and walks callers backwards. Any entry-point function —
//! matched structurally by `(owner, name)` glob, with **zero hand-listed
//! file paths** — that can reach a sink is a violation, reported with the
//! full call chain. The only escape hatch is an explicit, surfaced
//! function-level waiver: `// lint-allow: determinism-taint — <reason>`
//! on the `fn` line or within [`WAIVER_LOOKBACK`] lines above it, which
//! cuts that function (and anything only reachable through it) out of the
//! taint set. Waivers are listed in `--report` and as SARIF notes.

use crate::lex::SourceFile;
use crate::model::Model;
use crate::Violation;

/// Kernel/step entry points as `(owner glob, name glob)` pairs. `*`
/// matches any run of characters; owners match `None` only via a bare
/// `*`. These are *shapes*, not paths: a new engine or commit kernel
/// added anywhere in the workspace is picked up automatically.
pub const ENTRY_MATCHERS: &[(&str, &str)] = &[
    ("*Engine", "step*"),
    ("*Engine", "advance*"),
    ("*Engine", "present*"),
    ("*", "present_*"),
    ("*", "commit_*"),
];

/// How many lines above a `fn` head a `lint-allow: determinism-taint`
/// waiver comment may sit (doc comments in between are fine).
pub const WAIVER_LOOKBACK: usize = 3;

/// Matches `pat` (literal with `*` wildcards) against `s`.
pub fn glob_match(pat: &str, s: &str) -> bool {
    fn inner(p: &[u8], s: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (Some(b'*'), _) => inner(&p[1..], s) || (!s.is_empty() && inner(p, &s[1..])),
            (Some(&pc), Some(&sc)) if pc == sc => inner(&p[1..], &s[1..]),
            _ => false,
        }
    }
    inner(pat.as_bytes(), s.as_bytes())
}

/// Classifies an alias-expanded external path as a determinism sink.
/// Matching is segment-exact (never substring), so a workspace item that
/// merely *contains* `rand` in its name cannot false-positive.
fn sink_desc(path: &str) -> Option<String> {
    let segs: Vec<&str> = path.split("::").collect();
    if segs.contains(&"rand") {
        return Some(format!("`{path}` (rand crate)"));
    }
    if segs
        .iter()
        .any(|s| *s == "thread_rng" || *s == "from_entropy")
    {
        return Some(format!("`{path}` (ambient RNG)"));
    }
    if segs.windows(2).any(|w| w == ["Instant", "now"]) {
        return Some(format!("`{path}` (wall clock)"));
    }
    if segs.contains(&"SystemTime") {
        return Some(format!("`{path}` (wall clock)"));
    }
    None
}

/// Whether the function whose `fn` keyword sits on 0-based `line` of
/// `file` carries a determinism-taint waiver on its head.
fn fn_waived(file: &SourceFile, line: usize) -> bool {
    let lo = line.saturating_sub(WAIVER_LOOKBACK);
    (lo..=line).any(|i| {
        file.lines
            .get(i)
            .is_some_and(|l| l.comment.contains("lint-allow: determinism-taint"))
    })
}

/// Runs the analysis: reverse-BFS from sink-referencing functions, then
/// reports every matched entry point in the tainted set with its chain.
pub fn run(files: &[SourceFile], model: &Model, out: &mut Vec<Violation>) {
    let n = model.fns.len();
    // Per-function: Some((next hop toward the sink, sink description)).
    // next == usize::MAX marks a direct sink reference.
    let mut taint: Vec<Option<(usize, String)>> = (0..n).map(|_| None).collect();
    let mut queue: Vec<usize> = Vec::new();

    let waived: Vec<bool> = model
        .fns
        .iter()
        .map(|f| fn_waived(&files[f.file], f.line))
        .collect();

    for i in 0..n {
        let f = &model.fns[i];
        if f.is_test || waived[i] {
            continue;
        }
        if let Some(desc) = model.externals[i]
            .iter()
            .find_map(|e| sink_desc(&e.path).map(|d| (d, e.line)))
        {
            taint[i] = Some((usize::MAX, format!("{} at line {}", desc.0, desc.1 + 1)));
            queue.push(i);
        }
    }

    // Reverse adjacency.
    let mut rev: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
    for (caller, edges) in model.edges.iter().enumerate() {
        if model.fns[caller].is_test {
            continue;
        }
        for e in edges {
            if e.callee < n {
                rev[e.callee].push(caller);
            }
        }
    }

    while let Some(i) = queue.pop() {
        let sink = taint[i]
            .as_ref()
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        for &caller in &rev[i] {
            if taint[caller].is_none() && !waived[caller] && !model.fns[caller].is_test {
                taint[caller] = Some((i, sink.clone()));
                queue.push(caller);
            }
        }
    }

    for i in 0..n {
        let f = &model.fns[i];
        if f.is_test || !files[f.file].rel.contains("src/") {
            continue;
        }
        let owner = f.owner.as_deref().unwrap_or("");
        let is_entry = ENTRY_MATCHERS
            .iter()
            .any(|(op, np)| glob_match(np, &f.name) && (*op == "*" || glob_match(op, owner)));
        if !is_entry {
            continue;
        }
        if taint[i].is_some() {
            // Reconstruct the chain entry → … → sink.
            let mut chain = vec![display_name(model, i)];
            let mut cur = i;
            let mut sink = String::new();
            while let Some((next, s)) = &taint[cur] {
                if *next == usize::MAX || chain.len() > 64 {
                    sink = s.clone();
                    break;
                }
                chain.push(display_name(model, *next));
                cur = *next;
            }
            out.push(Violation {
                file: files[f.file].rel.clone(),
                line: f.line + 1,
                rule: "determinism-taint",
                msg: format!(
                    "entry point `{}` can reach a non-Philox randomness/time source: {} \
                     [{}] — all stochastic or time-like input on the step path must come \
                     from the (synapse, step)-keyed Philox streams; waive the cut point \
                     with `lint-allow: determinism-taint — <reason>` only if the value \
                     provably never feeds kernel state",
                    display_name(model, i),
                    chain.join(" → "),
                    sink,
                ),
            });
        }
    }
}

fn display_name(model: &Model, i: usize) -> String {
    let f = &model.fns[i];
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::SourceFile;
    use crate::model::Model;

    fn run_on(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
        let model = Model::build(&files);
        let mut out = Vec::new();
        run(&files, &model, &mut out);
        out
    }

    #[test]
    fn globs() {
        assert!(glob_match("*Engine", "BatchedEngine"));
        assert!(glob_match("step*", "step_core"));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("*Engine", "Trainer"));
        assert!(!glob_match("commit_*", "commit"));
    }

    /// The negative fixture from ISSUE 9: taint through a wrapper
    /// function. The entry point never names `Instant` itself — the sink
    /// is two hops away — yet the chain is found and reported.
    #[test]
    fn taint_flows_through_wrapper_fn() {
        let v = run_on(&[(
            "crates/snn-core/src/sim/engine.rs",
            "pub struct WtaEngine {}\nimpl WtaEngine {\n  pub fn step_core(&mut self) { helper(); }\n}\n\
             fn helper() { stamp(); }\nfn stamp() { let t = std::time::Instant::now(); }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "determinism-taint");
        assert!(v[0].msg.contains("step_core"), "{}", v[0].msg);
        assert!(
            v[0].msg.contains("helper"),
            "chain must show the wrapper: {}",
            v[0].msg
        );
        assert!(v[0].msg.contains("wall clock"), "{}", v[0].msg);
    }

    /// The alias-evasion fixture: `use std::time::Instant as T;` slipped
    /// past the old scanner's `Instant::now` substring grep (`T::now()`
    /// contains no forbidden token), but alias resolution catches it.
    #[test]
    fn alias_evasion_is_caught_where_the_old_scanner_missed_it() {
        let src = "use std::time::Instant as T;\npub struct WtaEngine {}\nimpl WtaEngine {\n  \
                   pub fn step_core(&mut self) { let t = T::now(); }\n}\n";
        // Old philox-only logic: substring scan of the masked line for the
        // forbidden-token list. `T::now()` matches none of them — evaded.
        const OLD_FORBIDDEN: &[&str] = &[
            "rand::",
            "thread_rng",
            "from_entropy",
            "SystemTime",
            "Instant::now",
        ];
        let evading_line = "let t = T::now();";
        assert!(
            OLD_FORBIDDEN.iter().all(|tok| !evading_line.contains(tok)),
            "fixture must actually evade the old scanner's logic"
        );
        // New analyzer: caught.
        let v = run_on(&[("crates/snn-core/src/sim/engine.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Instant"), "{}", v[0].msg);
    }

    #[test]
    fn waiver_on_the_cut_point_clears_and_is_function_scoped() {
        let v = run_on(&[(
            "crates/snn-core/src/sim/engine.rs",
            "pub struct WtaEngine {}\nimpl WtaEngine {\n  pub fn step_core(&mut self) { helper(); }\n}\n\
             /// Doc comment.\n// lint-allow: determinism-taint — profiling only, never feeds state\n\
             fn helper() { let t = std::time::Instant::now(); }\n",
        )]);
        assert!(v.is_empty(), "waived cut point must clear the entry: {v:?}");
    }

    #[test]
    fn rand_sink_and_rng_sinks_are_flagged() {
        let v = run_on(&[(
            "crates/gpu-device/src/fused.rs",
            "pub fn commit_block() { let x = rand::random::<u64>(); }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("rand"), "{}", v[0].msg);
        let v = run_on(&[(
            "crates/gpu-device/src/fused.rs",
            "pub fn commit_block() { let rng = StdRng::from_entropy(); }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unreachable_sinks_and_test_code_do_not_flag() {
        let v = run_on(&[(
            "crates/snn-learning/src/trainer.rs",
            "pub struct Trainer {}\nimpl Trainer {\n  pub fn run(&mut self) { let t = std::time::Instant::now(); }\n}\n\
             pub struct WtaEngine {}\nimpl WtaEngine { pub fn step_core(&mut self) {} }\n\
             #[cfg(test)]\nmod tests {\n  fn present_fake() { let t = std::time::Instant::now(); }\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fn_pointer_sink_reference_is_a_sink() {
        let v = run_on(&[(
            "crates/snn-trace/src/recorder.rs",
            "use std::time::Instant;\npub fn commit_epoch() { let e = EPOCH.get_or_init(Instant::now); }\n",
        )]);
        assert_eq!(
            v.len(),
            1,
            "fn-pointer position must still seed taint: {v:?}"
        );
    }
}
