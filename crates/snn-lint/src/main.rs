//! `snn-lint` CLI — thin driver over the [`snn_lint`] library.
//!
//! ```text
//! snn-lint [--root <dir>]            # lint; exit 1 on any violation
//! snn-lint --report                  # JSON unsafe inventory + waivers
//! snn-lint --sarif <path|->          # also write SARIF 2.1.0 output
//! snn-lint --write-baseline          # regenerate the unsafe ratchet baseline
//! ```

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_mode = false;
    let mut write_baseline = false;
    let mut sarif_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("snn-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--report" => report_mode = true,
            "--write-baseline" => write_baseline = true,
            "--sarif" => match args.next() {
                Some(p) => sarif_out = Some(p),
                None => {
                    eprintln!("snn-lint: --sarif requires a path (or `-` for stdout)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: snn-lint [--root <workspace-dir>] [--report] [--sarif <path|->] \
                     [--write-baseline]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("snn-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Auto-ascend to the workspace root (so `cargo run -p snn-lint` works
    // from anywhere inside the tree).
    let mut probe = root.clone();
    for _ in 0..6 {
        if probe.join("Cargo.toml").exists() && probe.join("crates").exists() {
            root = probe;
            break;
        }
        probe = probe.join("..");
    }
    let ws = match snn_lint::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("snn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if report_mode {
        print!("{}", snn_lint::report(&ws.files));
        return ExitCode::SUCCESS;
    }
    if write_baseline {
        let inv = snn_lint::unsafe_audit::inventory(&ws.files);
        let text = snn_lint::unsafe_audit::render_baseline(&inv);
        let path = ws.root.join(snn_lint::BASELINE_PATH);
        if let Err(e) = fs::write(&path, text) {
            eprintln!("snn-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("snn-lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    let (violations, waivers) = snn_lint::run_all(&ws);
    if let Some(dest) = sarif_out {
        let doc = snn_lint::sarif::render(&violations, &waivers);
        if dest == "-" {
            print!("{doc}");
        } else if let Err(e) = fs::write(&dest, doc) {
            eprintln!("snn-lint: writing {dest}: {e}");
            return ExitCode::from(2);
        }
    }
    if violations.is_empty() {
        eprintln!(
            "snn-lint: {} files clean ({} waiver(s) in effect)",
            ws.files.len(),
            waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.msg);
        }
        eprintln!("snn-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
