//! `snn-lint` — the repo-specific invariant lint of the ParallelSpikeSim
//! reproduction (DESIGN.md §10).
//!
//! `rustc` and clippy check language-level properties; this binary checks
//! the *project*-level invariants that keep the unsafe concurrency core and
//! the determinism contract honest. It is a plain-text scanner (comments
//! and string literals are masked before matching), deliberately
//! dependency-free so it runs in any environment that has `rustc`.
//!
//! Rules (each with a negative fixture test below):
//!
//! | rule | property |
//! |------|----------|
//! | `safety-comment` | every `unsafe` block / `unsafe impl` carries a `// SAFETY:` comment (a comment covers a contiguous cluster of unsafe statements) |
//! | `unsafe-surface` | `unsafe` appears only in the audited allow-list of files; leaf crates carry `#![forbid(unsafe_code)]`, unsafe crates carry `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | `philox-only` | kernel/step-path modules draw no randomness or wall-clock time outside the counter-based Philox streams |
//! | `transposed-coherence` | every function that mutates row-major conductances also refreshes (or rebuilds) the transposed mirror |
//! | `hash-iteration` | hot-path modules never *iterate* a `HashMap`/`HashSet` (iteration order is unordered ⇒ nondeterministic); keyed lookups are fine |
//! | `sync-shim` | the model-checked crates (gpu-device, snn-serve) use sync primitives only through their `src/sync.rs`, so `--cfg loom` swaps every primitive at once |
//! | `trace-schema` | every span/kernel/metric name passed as a literal to the telemetry APIs appears in the DESIGN.md §11–§13 schema tables (unlike other rules, string literals are *kept* for this scan) |
//! | `lane-width` | SWAR kernel files carry no literal shift amounts or hex bit masks — lane counts, lane widths, shifts and masks must derive from the `qformat` `QFormat`/`LaneLayout` constants, so a format change cannot silently desynchronize a kernel |
//! | `atomic-ordering` | commit-kernel files carry no raw `Ordering::` literals — every atomic memory ordering must come from the named allow-list constants in `gpu-device/src/commit.rs`, so the concurrent-commit soundness argument lives in exactly one audited place |
//!
//! A violation can be waived in place with a trailing or preceding comment
//! `lint-allow: <rule-name> — <reason>`; waivers are surfaced in `--report`.
//!
//! Usage:
//!
//! ```text
//! snn-lint [--root <workspace-dir>]   # lint; exit 1 on any violation
//! snn-lint --report                   # JSON unsafe-surface inventory on stdout
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Policy tables (paths are workspace-relative, forward slashes)
// ---------------------------------------------------------------------------

/// Files allowed to contain the token `unsafe` at all. Everything else in
/// the workspace must be (and is declared) safe code.
const UNSAFE_ALLOWED: &[&str] = &[
    "crates/gpu-device/src/",
    "crates/snn-loom/src/",
    "crates/snn-core/src/sim/engine.rs",
    "crates/snn-core/src/sim/batched.rs",
    "crates/snn-core/src/sim/generic.rs",
    // The curated sanitizer suite exists to *drive* the unsafe surface
    // (Miri/TSan CI jobs); see its header for the item -> test inventory.
    "crates/gpu-device/tests/unsafe_surface.rs",
];

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/qformat/src/lib.rs",
    "crates/spike-encoding/src/lib.rs",
    "crates/snn-datasets/src/lib.rs",
    "crates/snn-learning/src/lib.rs",
    "crates/reference-sim/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/snn-lint/src/main.rs",
    "crates/snn-trace/src/lib.rs",
    "crates/snn-serve/src/lib.rs",
    "src/lib.rs",
];

/// Crate roots that host unsafe code and must therefore carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` (no implicit unsafe scope inside
/// unsafe fns: every unsafe operation sits in its own commented block).
const UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/gpu-device/src/lib.rs",
    "crates/snn-core/src/lib.rs",
    "crates/snn-loom/src/lib.rs",
];

/// Modules on the kernel/step path: one Philox draw per (synapse, step) is
/// the *only* admissible stochastic or time-like input, which is what makes
/// runs bit-identical at any worker count. `gpu-device/src/device.rs` is
/// deliberately absent: its `timed()` profiler wrapper reads
/// `Instant::now`, which never feeds kernel results (the standing waiver).
const PHILOX_SCOPE: &[&str] = &[
    "crates/snn-core/src/sim/",
    "crates/snn-core/src/stdp/",
    "crates/snn-core/src/synapse.rs",
    "crates/gpu-device/src/fused.rs",
    "crates/gpu-device/src/grid.rs",
    "crates/gpu-device/src/pool.rs",
    "crates/gpu-device/src/philox.rs",
];

/// Tokens forbidden in [`PHILOX_SCOPE`] (non-test code).
const PHILOX_FORBIDDEN: &[&str] =
    &["rand::", "thread_rng", "from_entropy", "SystemTime", "Instant::now"];

/// Modules whose hot loops must not iterate hash containers.
const HASH_SCOPE: &[&str] = &[
    "crates/snn-core/src/sim/",
    "crates/snn-core/src/stdp/",
    "crates/gpu-device/src/fused.rs",
];

/// Files where functions mutating the row-major conductance matrix must
/// also touch the transposed-view coherence API.
const COHERENCE_SCOPE: &[&str] = &["crates/snn-core/src/sim/"];
/// Mutator tokens: raw mutable access to the conductance storage.
const COHERENCE_MUTATORS: &[&str] = &["as_flat_mut", "row_mut("];
/// Coherence tokens: any of these in the same function discharges the rule.
const COHERENCE_API: &[&str] = &["refresh(", "TransposedConductances::new"];

/// Model-checked crates: files (other than each crate's shim itself) must
/// reach sync primitives only through `crate::sync`, so `--cfg loom` swaps
/// them all. Pairs of (scope prefix, exempt shim path).
const SYNC_SHIM_SCOPES: &[(&str, &str)] = &[
    ("crates/gpu-device/src/", "crates/gpu-device/src/sync.rs"),
    ("crates/snn-serve/src/", "crates/snn-serve/src/sync.rs"),
];
const SYNC_FORBIDDEN: &[&str] = &[
    "parking_lot::",
    "crossbeam::",
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::Barrier",
    "std::sync::mpsc",
    "std::thread::spawn",
    "std::thread::Builder",
];

/// Telemetry call tokens whose literal first string argument is a span,
/// kernel or metric name. Every such name must appear backticked in the
/// DESIGN.md §11/§12 schema tables, so the documented schema can never drift
/// from what the code emits. Matching requires the token to start an
/// identifier boundary, so `record_gauge(` never double-counts as `gauge(`.
const TRACE_NAME_CALLS: &[&str] = &[
    // span recording (snn-trace)
    "span(",
    "span_cat(",
    "step_span(",
    "time_ms(",
    "record_span_at(",
    // kernel launches (gpu-device) — the name becomes a `kernel/<k>/*`
    // metric family and a span at Detail::Steps
    "launch(",
    "launch_mut(",
    "launch_slice_mut(",
    "launch_slice_mut_weighted(",
    "launch_weighted(",
    "launch_rows_mut(",
    "launch_fused(",
    "reduce(",
    // device-level counters/gauges → `device/<name>` metrics
    "bump_counter(",
    "record_gauge(",
    "record_gauge_stats(",
    "gauge(",
    "gauge_stats(",
    // MetricsHub publication
    "add_counter(",
    "set_counter(",
    "set_value(",
    "observe(",
    "merge_gauge(",
];

/// Files exempt from `trace-schema`: the recorder/hub implementation and
/// its fixtures, this lint's own fixtures, and the loom scenario file
/// (whose kernels exist only under `--cfg loom`).
const TRACE_SCHEMA_EXEMPT: &[&str] = &[
    "crates/snn-trace/",
    "crates/snn-lint/",
    "crates/gpu-device/src/loom_tests.rs",
];

/// SWAR kernel files the `lane-width` rule scopes to: bit-parallel code
/// whose lane counts, lane widths, shift amounts and masks must derive
/// from the `qformat` constants (`QFormat::lanes_per_u64`, `LaneLayout`),
/// never appear as numeric literals — a hand-written `>> 8` or
/// `0x00FF00FF` would silently desynchronize from a format change.
const LANE_WIDTH_SCOPE: &[&str] = &["crates/snn-core/src/sim/batched.rs"];

/// Commit-kernel files the `atomic-ordering` rule scopes to: the atomic
/// conductance grid of the shared-atomics training commit (DESIGN.md §14).
/// Raw `Ordering::` literals are forbidden here — every ordering must be
/// one of [`ATOMIC_ORDERING_CONSTS`], so weakening or strengthening an
/// ordering is a reviewed edit to one documented table, never a drive-by
/// change buried in a kernel body.
const ATOMIC_ORDERING_SCOPE: &[&str] = &["crates/gpu-device/src/commit.rs"];

/// The named ordering constants of the commit kernel; the only lines in
/// [`ATOMIC_ORDERING_SCOPE`] allowed to spell `Ordering::` are their
/// definitions.
const ATOMIC_ORDERING_CONSTS: &[&str] =
    &["COMMIT_LOAD", "COMMIT_CAS_SUCCESS", "COMMIT_CAS_FAILURE", "COMMIT_STATS"];

/// How many non-unsafe lines may separate two unsafe statements that share
/// one `// SAFETY:` comment (a "cluster"), and how far above the cluster
/// head the comment may sit.
const SAFETY_CLUSTER_GAP: usize = 2;
const SAFETY_LOOKBACK: usize = 4;

// ---------------------------------------------------------------------------
// Source model: one file, comment/string-masked, with test regions marked
// ---------------------------------------------------------------------------

struct Line {
    /// Source text with comments and string/char-literal *contents* blanked.
    code: String,
    /// Source text with comments blanked but string contents *kept* — the
    /// view the `trace-schema` rule scans for telemetry name literals.
    full: String,
    /// Concatenated comment text of this line.
    comment: String,
    /// Inside an item gated on `#[cfg(test)]` / `#[cfg(all(test, ...))]`.
    in_test: bool,
}

struct SourceFile {
    rel: String,
    lines: Vec<Line>,
}

impl SourceFile {
    fn parse(rel: &str, text: &str) -> SourceFile {
        let mut lines: Vec<Line> = Vec::new();
        let mut code = String::new();
        let mut full = String::new();
        let mut comment = String::new();

        #[derive(PartialEq)]
        enum St {
            Code,
            Line,
            Block(u32),
            Str,
            RawStr(usize),
            Char,
        }
        let mut st = St::Code;
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                if st == St::Line {
                    st = St::Code;
                }
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    full: std::mem::take(&mut full),
                    comment: std::mem::take(&mut comment),
                    in_test: false,
                });
                i += 1;
                continue;
            }
            match st {
                St::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        st = St::Line;
                        i += 2;
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        st = St::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == 'r'
                        && matches!(chars.get(i + 1), Some(&'"') | Some(&'#'))
                        && !prev_is_ident(&chars, i)
                    {
                        // raw string: r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            st = St::RawStr(hashes);
                            code.push('"');
                            full.push('"');
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '"' {
                        st = St::Str;
                        code.push('"');
                        full.push('"');
                        i += 1;
                        continue;
                    }
                    if c == '\'' && is_char_literal(&chars, i) {
                        st = St::Char;
                        code.push('\'');
                        full.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    full.push(c);
                    i += 1;
                }
                St::Line => {
                    comment.push(c);
                    i += 1;
                }
                St::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                St::Str => {
                    if c == '\\' {
                        full.push('\\');
                        if let Some(&e) = chars.get(i + 1) {
                            full.push(e);
                        }
                        i += 2;
                    } else if c == '"' {
                        st = St::Code;
                        code.push('"');
                        full.push('"');
                        i += 1;
                    } else {
                        full.push(c);
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                        st = St::Code;
                        code.push('"');
                        full.push('"');
                        i += hashes + 1;
                    } else {
                        full.push(c);
                        i += 1;
                    }
                }
                St::Char => {
                    if c == '\\' {
                        full.push('\\');
                        if let Some(&e) = chars.get(i + 1) {
                            full.push(e);
                        }
                        i += 2;
                    } else if c == '\'' {
                        st = St::Code;
                        code.push('\'');
                        full.push('\'');
                        i += 1;
                    } else {
                        full.push(c);
                        i += 1;
                    }
                }
            }
        }
        if !code.is_empty() || !comment.is_empty() {
            lines.push(Line { code, full, comment, in_test: false });
        }

        mark_test_regions(&mut lines);
        SourceFile { rel: rel.to_string(), lines }
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// `'` at `chars[i]` starts a char literal (vs a lifetime) if the closing
/// quote appears within a few characters.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    if chars.get(i + 1) == Some(&'\\') {
        return true;
    }
    // 'x'   (one char, then the closing quote)
    chars.get(i + 2) == Some(&'\'')
}

/// Marks every line inside a `#[cfg(test)]`-gated item as test code, by
/// brace matching from the attribute to the end of the item it gates.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending_attr = false;
    let mut region_depth: Option<i64> = None; // depth *before* the region opened
    let mut depth: i64 = 0;
    for idx in 0..lines.len() {
        let code = lines[idx].code.clone();
        if code.contains("#[cfg(test)") || code.contains("#[cfg(all(test") {
            pending_attr = true;
        }
        let mut line_in_test = region_depth.is_some() || pending_attr;
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_attr {
                        region_depth = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                        line_in_test = true; // closing brace still in region
                    }
                }
                ';' => {
                    // attribute gated a braceless item (`use`, `fn;` etc.)
                    if pending_attr {
                        pending_attr = false;
                    }
                }
                _ => {}
            }
        }
        if region_depth.is_some() {
            line_in_test = true;
        }
        lines[idx].in_test = line_in_test;
    }
}

// ---------------------------------------------------------------------------
// Violations & waivers
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize, // 1-based
    rule: &'static str,
    msg: String,
}

/// A `lint-allow: <rule>` waiver on this line or the line above.
fn waived(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let tag = format!("lint-allow: {rule}");
    file.lines[idx].comment.contains(&tag)
        || (idx > 0 && file.lines[idx - 1].comment.contains(&tag))
}

/// Every rule a waiver may name. A `lint-allow:` whose first token is not
/// in this list is prose *about* the mechanism (docs, examples), not a
/// waiver, and is excluded from the `--report` inventory.
const RULE_NAMES: &[&str] = &[
    "safety-comment",
    "unsafe-surface",
    "philox-only",
    "transposed-coherence",
    "hash-iteration",
    "sync-shim",
    "trace-schema",
    "lane-width",
    "atomic-ordering",
];

fn collect_waivers(files: &[SourceFile]) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    for f in files {
        for (i, l) in f.lines.iter().enumerate() {
            if let Some(pos) = l.comment.find("lint-allow:") {
                let rest = l.comment[pos + "lint-allow:".len()..].trim();
                let named_rule = rest.split_whitespace().next().unwrap_or("");
                if RULE_NAMES.contains(&named_rule) {
                    out.push((f.rel.clone(), i + 1, rest.to_string()));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

/// Whether `code` contains an occurrence of the `unsafe` keyword that opens
/// a block or an `unsafe impl` (declarations `unsafe fn`/`unsafe trait`
/// document their contract in `# Safety` docs instead).
fn unsafe_kind(code: &str) -> Option<&'static str> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("unsafe") {
        let at = search + pos;
        search = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        let after = &code[at + "unsafe".len()..];
        if !before_ok || after.starts_with(|c: char| is_ident_char(c)) {
            continue; // part of a longer identifier e.g. `unsafe_code`
        }
        let rest = after.trim_start();
        if rest.starts_with("impl") {
            return Some("unsafe impl");
        }
        if rest.starts_with("fn") || rest.starts_with("trait") || rest.starts_with("extern") {
            continue;
        }
        // `unsafe {`, `unsafe{`, or `unsafe` at end of line (block opens on
        // the next line).
        return Some("unsafe block");
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn rule_safety_comment(file: &SourceFile, out: &mut Vec<Violation>) {
    // Cluster consecutive unsafe lines (gap <= SAFETY_CLUSTER_GAP) and
    // require a SAFETY comment within SAFETY_LOOKBACK lines above the
    // cluster head (or on the head itself).
    let unsafe_lines: Vec<(usize, &'static str)> = file
        .lines
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.code.contains("#!") && !l.code.contains("#["))
        .filter_map(|(i, l)| unsafe_kind(&l.code).map(|k| (i, k)))
        .collect();
    let mut cluster_head: Option<usize> = None;
    let mut prev: Option<usize> = None;
    for &(idx, kind) in &unsafe_lines {
        let new_cluster = match prev {
            Some(p) => idx - p > SAFETY_CLUSTER_GAP + 1,
            None => true,
        };
        if new_cluster {
            cluster_head = Some(idx);
            let head = idx;
            // Walk upward: comment-only / blank lines are free (a multi-line
            // SAFETY comment counts however long it is); each line with code
            // consumes one unit of the lookback budget.
            let mut covered = file.lines[head].comment.contains("SAFETY")
                || waived(file, head, "safety-comment");
            let mut budget = SAFETY_LOOKBACK;
            let mut j = head;
            while !covered && budget > 0 && j > 0 {
                j -= 1;
                let l = &file.lines[j];
                if l.comment.contains("SAFETY") {
                    covered = true;
                }
                if !l.code.trim().is_empty() {
                    budget -= 1;
                }
            }
            if !covered {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: head + 1,
                    rule: "safety-comment",
                    msg: format!(
                        "{kind} without a `// SAFETY:` comment within {SAFETY_LOOKBACK} \
                         lines above"
                    ),
                });
            }
        }
        let _ = cluster_head;
        prev = Some(idx);
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-surface
// ---------------------------------------------------------------------------

fn rule_unsafe_surface(files: &[SourceFile], out: &mut Vec<Violation>) {
    for f in files {
        let allowed = UNSAFE_ALLOWED.iter().any(|p| f.rel.starts_with(p));
        if !allowed {
            for (i, l) in f.lines.iter().enumerate() {
                // Attribute mentions (`forbid(unsafe_code)`) are fine.
                if l.code.contains("unsafe")
                    && unsafe_kind(&l.code).is_some()
                    && !l.code.contains("#!")
                    && !waived(f, i, "unsafe-surface")
                {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: i + 1,
                        rule: "unsafe-surface",
                        msg: "unsafe code outside the audited allow-list \
                              (see snn-lint UNSAFE_ALLOWED)"
                            .into(),
                    });
                }
            }
        }
    }
    for root in FORBID_UNSAFE_ROOTS {
        check_root_attr(files, root, "#![forbid(unsafe_code)]", out);
    }
    for root in UNSAFE_OP_ROOTS {
        check_root_attr(files, root, "#![deny(unsafe_op_in_unsafe_fn)]", out);
    }
}

fn check_root_attr(files: &[SourceFile], root: &str, attr: &str, out: &mut Vec<Violation>) {
    let Some(f) = files.iter().find(|f| f.rel == root) else {
        out.push(Violation {
            file: root.to_string(),
            line: 1,
            rule: "unsafe-surface",
            msg: "expected crate root is missing".into(),
        });
        return;
    };
    if !f.lines.iter().any(|l| l.code.contains(attr)) {
        out.push(Violation {
            file: f.rel.clone(),
            line: 1,
            rule: "unsafe-surface",
            msg: format!("crate root must declare `{attr}`"),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: philox-only
// ---------------------------------------------------------------------------

fn rule_philox_only(file: &SourceFile, out: &mut Vec<Violation>) {
    if !PHILOX_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "philox-only") {
            continue;
        }
        for tok in PHILOX_FORBIDDEN {
            if l.code.contains(tok) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "philox-only",
                    msg: format!(
                        "`{tok}` on the kernel/step path: all randomness and time \
                         must come from the (synapse, step)-keyed Philox streams"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: transposed-coherence
// ---------------------------------------------------------------------------

/// `fn` item spans `(head_line, body_start..body_end)` (0-based, inclusive),
/// found by brace matching from each `fn` keyword.
fn fn_spans(file: &SourceFile) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        let code = &file.lines[i].code;
        if let Some(pos) = find_fn_keyword(code) {
            // find the opening brace of the body (skipping the signature)
            let mut depth = 0i64;
            let mut started = false;
            let mut j = i;
            let mut col = pos;
            'outer: while j < n {
                let lc = &file.lines[j].code;
                for ch in lc.chars().skip(if j == i { col } else { 0 }) {
                    match ch {
                        ';' if !started && depth == 0 => break 'outer, // fn decl w/o body
                        '{' => {
                            started = true;
                            depth += 1;
                        }
                        '}' => {
                            depth -= 1;
                            if started && depth == 0 {
                                spans.push((i, i, j));
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
                col = 0;
            }
            i = i + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn find_fn_keyword(code: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("fn ") {
        let at = search + pos;
        search = at + 3;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        if before_ok {
            return Some(at);
        }
    }
    None
}

fn rule_transposed_coherence(file: &SourceFile, out: &mut Vec<Violation>) {
    if !COHERENCE_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (head, start, end) in fn_spans(file) {
        if file.lines[head].in_test {
            continue;
        }
        let mut mutator_line = None;
        let mut coherent = false;
        for idx in start..=end {
            let code = &file.lines[idx].code;
            if mutator_line.is_none() && COHERENCE_MUTATORS.iter().any(|m| code.contains(m)) {
                mutator_line = Some(idx);
            }
            if COHERENCE_API.iter().any(|a| code.contains(a)) {
                coherent = true;
            }
        }
        if let Some(m) = mutator_line {
            if !coherent && !waived(file, m, "transposed-coherence") && !waived(file, head, "transposed-coherence") {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: m + 1,
                    rule: "transposed-coherence",
                    msg: "conductance mutator without a transposed-view refresh/rebuild \
                          in the same function (sparse delivery would read stale currents)"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hash-iteration
// ---------------------------------------------------------------------------

fn rule_hash_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HASH_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    // Collect identifiers bound to hash containers anywhere in the file.
    let mut names: Vec<String> = Vec::new();
    for l in &file.lines {
        let code = &l.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: ...Hash{Map,Set}` or `name: Hash{Map,Set}` field
        if let Some(let_pos) = code.find("let ") {
            let rest = code[let_pos + 4..].trim_start().trim_start_matches("mut ");
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                names.push(name);
            }
        } else if let Some(colon) = code.find(':') {
            let name: String = code[..colon]
                .trim_end()
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() && code[colon..].contains("Hash") {
                names.push(name);
            }
        }
    }
    if names.is_empty() {
        return;
    }
    const ITER_SUFFIXES: &[&str] = &[".iter()", ".keys()", ".values()", ".drain(", ".into_iter()", ".retain("];
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "hash-iteration") {
            continue;
        }
        let code = &l.code;
        for name in &names {
            let direct_iter = ITER_SUFFIXES.iter().any(|s| {
                code.contains(&format!("{name}{s}"))
            });
            let for_iter = code.contains("for ")
                && code.contains(" in ")
                && (code.contains(&format!("in &{name}")) || code.contains(&format!("in {name}")));
            if direct_iter || for_iter {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "hash-iteration",
                    msg: format!(
                        "iteration over hash container `{name}` on a hot path: \
                         unordered iteration is nondeterministic; iterate a sorted \
                         key list or a Vec instead (lookups are fine)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: sync-shim
// ---------------------------------------------------------------------------

fn rule_sync_shim(file: &SourceFile, out: &mut Vec<Violation>) {
    let in_scope = SYNC_SHIM_SCOPES
        .iter()
        .any(|(scope, exempt)| file.rel.starts_with(scope) && file.rel != *exempt);
    if !in_scope {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        // Unit tests drive the protocol with real threads deliberately
        // (e.g. blocking-steal tests); only production lines must route
        // through the shim.
        if l.in_test || waived(file, i, "sync-shim") {
            continue;
        }
        for tok in SYNC_FORBIDDEN {
            if l.code.contains(tok) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "sync-shim",
                    msg: format!(
                        "`{tok}` used directly: import it through `crate::sync` so \
                         `--cfg loom` swaps every primitive for the model checker"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: lane-width
// ---------------------------------------------------------------------------

fn rule_lane_width(file: &SourceFile, out: &mut Vec<Violation>) {
    if !LANE_WIDTH_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "lane-width") {
            continue;
        }
        let code = l.code.as_str();
        // Literal shift amounts: `<< 8`, `>>= 2`, … Shifts by an
        // expression (a lane-layout accessor, a loop variable) are fine.
        for op in ["<<", ">>"] {
            let mut rest = code;
            while let Some(pos) = rest.find(op) {
                let tail = rest[pos + op.len()..].trim_start_matches('=').trim_start();
                if tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    out.push(Violation {
                        file: file.rel.clone(),
                        line: i + 1,
                        rule: "lane-width",
                        msg: format!(
                            "literal shift amount after `{op}` in a SWAR kernel: derive \
                             shifts from `LaneLayout::lane_bits()` / `QFormat` widths so a \
                             format change cannot desynchronize the kernel"
                        ),
                    });
                    break; // one violation per line per operator is plenty
                }
                rest = &rest[pos + op.len()..];
            }
        }
        // Hex bit-mask literals: lane and value masks come from
        // `LaneLayout::lane_mask()` / `splat`, never hand-packed.
        if let Some(pos) = code.find("0x") {
            let prev = code[..pos].chars().next_back();
            if !prev.is_some_and(is_ident_char) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "lane-width",
                    msg: "hex mask literal in a SWAR kernel: build lane/value masks \
                          with `LaneLayout::lane_mask()`/`splat` instead of hand-packed \
                          constants"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering
// ---------------------------------------------------------------------------

fn rule_atomic_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    if !ATOMIC_ORDERING_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "atomic-ordering") {
            continue;
        }
        let code = l.code.as_str();
        if !code.contains("Ordering::") {
            continue;
        }
        // The definitions of the named constants are the one place a
        // literal ordering may appear (`pub const COMMIT_LOAD: Ordering =
        // Ordering::Relaxed;`).
        let defines_allowed = ATOMIC_ORDERING_CONSTS
            .iter()
            .any(|c| code.contains(&format!("const {c}:")));
        if defines_allowed {
            continue;
        }
        out.push(Violation {
            file: file.rel.clone(),
            line: i + 1,
            rule: "atomic-ordering",
            msg: "raw `Ordering::` literal in the commit-kernel scope: use one of \
                  the named constants (COMMIT_LOAD / COMMIT_CAS_SUCCESS / \
                  COMMIT_CAS_FAILURE / COMMIT_STATS) so the soundness argument \
                  stays in one audited place"
                .into(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: trace-schema
// ---------------------------------------------------------------------------

/// Extracts the set of backticked names from the `## 11` telemetry,
/// `## 12` serving, `## 13` batched-execution and `## 14` parallel-training
/// sections of DESIGN.md. Returns `None` when all sections are missing
/// entirely (a violation in itself — the schema reference is load-bearing).
fn design_schema_names(design: &str) -> Option<Vec<String>> {
    let mut in_section = false;
    let mut found = false;
    let mut names = Vec::new();
    for line in design.lines() {
        if line.starts_with("## ") {
            in_section = line.starts_with("## 11")
                || line.starts_with("## 12")
                || line.starts_with("## 13")
                || line.starts_with("## 14");
            found |= in_section;
            continue;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let name = &tail[..close];
            if !name.is_empty() {
                names.push(name.to_string());
            }
            rest = &tail[close + 1..];
        }
    }
    found.then_some(names)
}

/// Scans a file's comment-masked (strings kept) text for telemetry calls
/// whose first argument is a string literal; yields `(line_idx, name)`.
/// Calls that pass a variable or `format!` as the name are skipped — only
/// literals can be checked against the schema statically.
fn trace_names(file: &SourceFile) -> Vec<(usize, String)> {
    let mut text = String::new();
    let mut starts = Vec::with_capacity(file.lines.len());
    for l in &file.lines {
        starts.push(text.len());
        text.push_str(&l.full);
        text.push('\n');
    }
    let line_of = |off: usize| match starts.binary_search(&off) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    let mut out = Vec::new();
    for tok in TRACE_NAME_CALLS {
        let mut search = 0;
        while let Some(pos) = text[search..].find(tok) {
            let at = search + pos;
            search = at + tok.len();
            if at > 0 && is_ident_char(text.as_bytes()[at - 1] as char) {
                continue; // suffix of a longer identifier (e.g. `step_span(`)
            }
            let rest = text[at + tok.len()..].trim_start();
            let rest = rest.strip_prefix('&').unwrap_or(rest);
            let Some(lit) = rest.strip_prefix('"') else { continue };
            let Some(end) = lit.find('"') else { continue };
            if end > 0 {
                out.push((line_of(at), lit[..end].to_string()));
            }
        }
    }
    out
}

fn rule_trace_schema(file: &SourceFile, schema: &[String], out: &mut Vec<Violation>) {
    let in_src = file.rel.starts_with("src/") || file.rel.contains("/src/");
    if !in_src || TRACE_SCHEMA_EXEMPT.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (idx, name) in trace_names(file) {
        if file.lines[idx].in_test || waived(file, idx, "trace-schema") {
            continue;
        }
        // Device counters/gauges are published under `device/<name>`;
        // kernel and span names are documented verbatim.
        let device_form = format!("device/{name}");
        if schema.iter().any(|s| *s == name || *s == device_form) {
            continue;
        }
        out.push(Violation {
            file: file.rel.clone(),
            line: idx + 1,
            rule: "trace-schema",
            msg: format!(
                "telemetry name `{name}` is not documented in the DESIGN.md §11/§12 \
                 schema tables (add a row there, or waive with lint-allow)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Report mode: unsafe-surface inventory as JSON
// ---------------------------------------------------------------------------

fn report(files: &[SourceFile]) -> String {
    #[derive(Default)]
    struct Entry {
        blocks: Vec<usize>,
        impls: Vec<usize>,
        fns: Vec<usize>,
    }
    let mut entries: Vec<(String, Entry)> = Vec::new();
    for f in files {
        let mut e = Entry::default();
        for (i, l) in f.lines.iter().enumerate() {
            if l.code.contains("#!") || l.code.contains("#[") {
                continue;
            }
            match unsafe_kind(&l.code) {
                Some("unsafe impl") => e.impls.push(i + 1),
                Some("unsafe block") => e.blocks.push(i + 1),
                _ => {}
            }
            if l.code.contains("unsafe fn ") {
                e.fns.push(i + 1);
            }
        }
        if !(e.blocks.is_empty() && e.impls.is_empty() && e.fns.is_empty()) {
            entries.push((f.rel.clone(), e));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let waivers = collect_waivers(files);

    let mut s = String::from("{\n  \"generated_by\": \"snn-lint --report\",\n  \"files\": [\n");
    let (mut tb, mut ti, mut tf) = (0, 0, 0);
    for (n, (rel, e)) in entries.iter().enumerate() {
        tb += e.blocks.len();
        ti += e.impls.len();
        tf += e.fns.len();
        let _ = write!(
            s,
            "    {{\"path\": \"{rel}\", \"unsafe_blocks\": {}, \"unsafe_impls\": {}, \
             \"unsafe_fns\": {}, \"block_lines\": {:?}, \"impl_lines\": {:?}, \
             \"fn_lines\": {:?}}}{}\n",
            e.blocks.len(),
            e.impls.len(),
            e.fns.len(),
            e.blocks,
            e.impls,
            e.fns,
            if n + 1 < entries.len() { "," } else { "" },
        );
    }
    let _ = write!(
        s,
        "  ],\n  \"totals\": {{\"files_with_unsafe\": {}, \"unsafe_blocks\": {tb}, \
         \"unsafe_impls\": {ti}, \"unsafe_fns\": {tf}}},\n  \"waivers\": [\n",
        entries.len(),
    );
    for (n, (rel, line, what)) in waivers.iter().enumerate() {
        let what = what.replace('"', "'");
        let _ = write!(
            s,
            "    {{\"path\": \"{rel}\", \"line\": {line}, \"waiver\": \"{what}\"}}{}\n",
            if n + 1 < waivers.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = fs::read_dir(&dir) else { continue };
        for entry in rd.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn run_rules(files: &[SourceFile], schema: Option<&[String]>) -> Vec<Violation> {
    let mut out = Vec::new();
    rule_unsafe_surface(files, &mut out);
    if schema.is_none() {
        out.push(Violation {
            file: "DESIGN.md".into(),
            line: 1,
            rule: "trace-schema",
            msg: "missing the `## 11` telemetry schema section that documents \
                  every span and metric name"
                .into(),
        });
    }
    for f in files {
        rule_safety_comment(f, &mut out);
        rule_philox_only(f, &mut out);
        rule_transposed_coherence(f, &mut out);
        rule_hash_iteration(f, &mut out);
        rule_sync_shim(f, &mut out);
        rule_lane_width(f, &mut out);
        rule_atomic_ordering(f, &mut out);
        if let Some(schema) = schema {
            rule_trace_schema(f, schema, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!("{} is not a workspace root (no Cargo.toml)", root.display()));
    }
    let mut files = Vec::new();
    for path in collect_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("snn-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--report" => report_mode = true,
            "--help" | "-h" => {
                eprintln!("usage: snn-lint [--root <workspace-dir>] [--report]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("snn-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Auto-ascend to the workspace root (so `cargo run -p snn-lint` works
    // from anywhere inside the tree).
    let mut probe = root.clone();
    for _ in 0..6 {
        if probe.join("Cargo.toml").exists() && probe.join("crates").exists() {
            root = probe;
            break;
        }
        probe = probe.join("..");
    }
    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("snn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if report_mode {
        print!("{}", report(&files));
        return ExitCode::SUCCESS;
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let schema = design_schema_names(&design);
    let violations = run_rules(&files, schema.as_deref());
    if violations.is_empty() {
        eprintln!("snn-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.msg);
        }
        eprintln!("snn-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Tests: one clean and one violating fixture per rule
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn single(rel: &str, text: &str) -> Vec<SourceFile> {
        vec![SourceFile::parse(rel, text)]
    }

    fn rules_on(rel: &str, text: &str) -> Vec<Violation> {
        let files = single(rel, text);
        let mut out = Vec::new();
        for f in &files {
            rule_safety_comment(f, &mut out);
            rule_philox_only(f, &mut out);
            rule_transposed_coherence(f, &mut out);
            rule_hash_iteration(f, &mut out);
            rule_sync_shim(f, &mut out);
            rule_lane_width(f, &mut out);
            rule_atomic_ordering(f, &mut out);
        }
        out
    }

    // -- masking ----------------------------------------------------------

    #[test]
    fn comments_and_strings_are_masked() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"unsafe { in a string }\"; // unsafe in a comment\nlet c = 'x';\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe in a comment"));
        assert!(f.lines[1].code.contains("let c ="));
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x } // ok\n");
        assert!(f.lines[0].code.contains("-> &'a str"));
        assert!(f.lines[0].comment.contains("ok"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn hot2() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    // -- safety-comment ---------------------------------------------------

    #[test]
    fn safety_comment_flags_uncommented_unsafe_block() {
        let v = rules_on("crates/gpu-device/src/x.rs", "fn f() {\n    unsafe { work() };\n}\n");
        assert!(v.iter().any(|v| v.rule == "safety-comment"), "{v:?}");
    }

    #[test]
    fn safety_comment_accepts_commented_block_and_cluster() {
        let src = "fn f() {\n    // SAFETY: disjoint indices.\n    unsafe { a() };\n    \
                   unsafe { b() };\n    let x = 1;\n    unsafe { c() };\n}\n";
        let v = rules_on("crates/gpu-device/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "safety-comment"), "{v:?}");
    }

    #[test]
    fn safety_comment_flags_uncommented_unsafe_impl() {
        let v = rules_on("crates/gpu-device/src/x.rs", "unsafe impl Send for X {}\n");
        assert!(v.iter().any(|v| v.rule == "safety-comment"));
        let ok = rules_on(
            "crates/gpu-device/src/x.rs",
            "// SAFETY: X owns no thread-bound state.\nunsafe impl Send for X {}\n",
        );
        assert!(ok.iter().all(|v| v.rule != "safety-comment"));
    }

    #[test]
    fn safety_comment_ignores_unsafe_fn_declarations() {
        let v = rules_on(
            "crates/gpu-device/src/x.rs",
            "/// # Safety\n/// caller checks i.\npub unsafe fn get(i: usize) -> f64;\n",
        );
        assert!(v.iter().all(|v| v.rule != "safety-comment"), "{v:?}");
    }

    // -- unsafe-surface ---------------------------------------------------

    #[test]
    fn unsafe_surface_flags_unsafe_outside_allow_list() {
        let files = single("crates/snn-learning/src/x.rs", "fn f() { unsafe { boom() } }\n");
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(out.iter().any(|v| v.rule == "unsafe-surface"));
    }

    #[test]
    fn unsafe_surface_accepts_allow_listed_files() {
        let files = single(
            "crates/gpu-device/src/device.rs",
            "fn f() {\n    // SAFETY: fine.\n    unsafe { ok() }\n}\n",
        );
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(out.iter().all(|v| v.file != "crates/gpu-device/src/device.rs"));
    }

    // -- philox-only ------------------------------------------------------

    #[test]
    fn philox_only_flags_wall_clock_and_rand_on_step_path() {
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn step() { let t = Instant::now(); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "philox-only"));
        let v = rules_on(
            "crates/snn-core/src/stdp/rule.rs",
            "fn draw() { let r = rand::random::<f64>(); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "philox-only"));
    }

    #[test]
    fn philox_only_ignores_tests_waivers_and_out_of_scope_files() {
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "philox-only"), "{v:?}");
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "// lint-allow: philox-only — profiling only, never feeds results\n\
             fn step() { let t = Instant::now(); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "philox-only"), "{v:?}");
        // device.rs is out of scope (the timed() waiver).
        let v = rules_on(
            "crates/gpu-device/src/device.rs",
            "fn timed() { let t = Instant::now(); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "philox-only"), "{v:?}");
    }

    // -- transposed-coherence ---------------------------------------------

    #[test]
    fn coherence_flags_mutation_without_refresh() {
        let src = "impl E {\n    fn learn(&mut self) {\n        let g = self.synapses.as_flat_mut();\n        g[0] = 1.0;\n    }\n}\n";
        let v = rules_on("crates/snn-core/src/sim/engine.rs", src);
        assert!(v.iter().any(|v| v.rule == "transposed-coherence"), "{v:?}");
    }

    #[test]
    fn coherence_accepts_mutation_with_refresh_or_rebuild() {
        let src = "impl E {\n    fn learn(&mut self) {\n        self.synapses.as_flat_mut()[0] = 1.0;\n        self.view.refresh(&self.synapses, None, None);\n    }\n    fn swap(&mut self) {\n        self.synapses.row_mut(0)[0] = 1.0;\n        self.view = TransposedConductances::new(&self.synapses);\n    }\n}\n";
        let v = rules_on("crates/snn-core/src/sim/engine.rs", src);
        assert!(v.iter().all(|v| v.rule != "transposed-coherence"), "{v:?}");
    }

    // -- hash-iteration ---------------------------------------------------

    #[test]
    fn hash_iteration_flags_hot_path_iteration() {
        let src = "fn hot() {\n    let mut seen: std::collections::HashMap<u32, f64> = Default::default();\n    for (k, v) in &seen { use_it(k, v); }\n}\n";
        let v = rules_on("crates/snn-core/src/sim/engine.rs", src);
        assert!(v.iter().any(|v| v.rule == "hash-iteration"), "{v:?}");
    }

    #[test]
    fn hash_iteration_accepts_keyed_lookups() {
        let src = "fn hot() {\n    let mut seen: std::collections::HashMap<u32, f64> = Default::default();\n    seen.insert(1, 2.0);\n    let v = seen.get(&1);\n}\n";
        let v = rules_on("crates/snn-core/src/sim/engine.rs", src);
        assert!(v.iter().all(|v| v.rule != "hash-iteration"), "{v:?}");
    }

    // -- sync-shim --------------------------------------------------------

    #[test]
    fn sync_shim_flags_direct_primitive_imports() {
        let v = rules_on("crates/gpu-device/src/pool.rs", "use parking_lot::Mutex;\n");
        assert!(v.iter().any(|v| v.rule == "sync-shim"));
        let v = rules_on("crates/gpu-device/src/buffer.rs", "use std::sync::Barrier;\n");
        assert!(v.iter().any(|v| v.rule == "sync-shim"));
    }

    #[test]
    fn sync_shim_exempts_the_shim_and_other_crates() {
        let v = rules_on("crates/gpu-device/src/sync.rs", "pub use parking_lot::Mutex;\n");
        assert!(v.iter().all(|v| v.rule != "sync-shim"), "{v:?}");
        let v = rules_on("crates/snn-core/src/lib.rs", "use parking_lot::Mutex;\n");
        assert!(v.iter().all(|v| v.rule != "sync-shim"), "{v:?}");
    }

    // -- trace-schema -----------------------------------------------------

    fn schema(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_string()).collect()
    }

    fn trace_rule_on(rel: &str, text: &str, names: &[&str]) -> Vec<Violation> {
        let files = single(rel, text);
        let mut out = Vec::new();
        rule_trace_schema(&files[0], &schema(names), &mut out);
        out
    }

    #[test]
    fn design_schema_extracts_backticked_names_from_section_11() {
        let md = "## 10. Other\n`not/this`\n## 11. Telemetry\nSpans: `engine/step` \
                  and `device/active_fraction` (gauge).\n### 11.2 More\n| `train/images` | count |\n";
        let names = design_schema_names(md).expect("section present");
        assert!(names.contains(&"engine/step".to_string()));
        assert!(names.contains(&"device/active_fraction".to_string()));
        assert!(names.contains(&"train/images".to_string()));
        assert!(!names.contains(&"not/this".to_string()));
        assert!(design_schema_names("## 10. Other\nno telemetry section\n").is_none());
    }

    #[test]
    fn trace_schema_flags_undocumented_names() {
        let v = trace_rule_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn f() { let _s = snn_trace::span_cat(\"engine/mystery\", \"engine\"); }\n",
            &["engine/step"],
        );
        assert!(v.iter().any(|v| v.rule == "trace-schema" && v.msg.contains("engine/mystery")));
    }

    #[test]
    fn trace_schema_accepts_documented_and_device_prefixed_names() {
        // Spans match verbatim; device counters/gauges match under the
        // `device/<name>` form they are published as; multi-line launch
        // calls put the literal on the line after the token.
        let src = "fn f(d: &D) {\n    let _s = snn_trace::span_cat(\"engine/step\", \"engine\");\n    \
                   d.bump_counter(\"delivery_blocks\", 1);\n    d.launch_rows_mut(\n        \
                   \"normalize_weights\",\n        buf,\n    );\n}\n";
        let v = trace_rule_on(
            "crates/snn-core/src/sim/engine.rs",
            src,
            &["engine/step", "device/delivery_blocks", "normalize_weights"],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn trace_schema_skips_tests_waivers_exempt_files_and_non_literals() {
        let v = trace_rule_on(
            "crates/snn-core/src/sim/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(d: &D) { d.launch(\"k1\", 1, |_| {}); }\n}\n",
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
        let v = trace_rule_on(
            "crates/snn-core/src/sim/engine.rs",
            "// lint-allow: trace-schema — experimental probe, not part of the schema\n\
             fn f() { let _s = snn_trace::span_cat(\"scratch/span\", \"x\"); }\n",
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
        let v = trace_rule_on(
            "crates/snn-trace/src/recorder.rs",
            "fn f() { let _s = span_cat(\"internal/fixture\", \"x\"); }\n",
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
        // A variable or format! name cannot be checked statically: skipped.
        let v = trace_rule_on(
            "crates/gpu-device/src/device.rs",
            "fn f(name: &str) { record_span_at(name, \"kernel\", s, e); }\n",
            &[],
        );
        assert!(v.iter().all(|v| !v.msg.contains("kernel")), "{v:?}");
    }

    #[test]
    fn trace_schema_comments_do_not_count_as_uses() {
        let v = trace_rule_on(
            "crates/snn-core/src/sim/engine.rs",
            "/// Example: `span_cat(\"doc/only\", \"x\")` in prose.\nfn f() {}\n",
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    // -- lane-width -------------------------------------------------------

    #[test]
    fn lane_width_flags_literal_shifts_and_hex_masks_in_swar_kernels() {
        let v = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "fn f(w: u64) -> u64 {\n    let lo = w & 0x00FF_00FF;\n    (lo << 8) | (w >> 8)\n}\n",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "lane-width").count(), 3, "{v:?}");
        assert!(v.iter().any(|v| v.msg.contains("hex mask")));
        assert!(v.iter().any(|v| v.msg.contains("`<<`")));
        assert!(v.iter().any(|v| v.msg.contains("`>>`")));
    }

    #[test]
    fn lane_width_accepts_derived_shifts_and_out_of_scope_files() {
        // Shifts by a lane-layout accessor or a variable are the point of
        // the rule — only numeric literals are flagged.
        let v = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "fn f(w: u64, p: &LaneLayout, jj: usize) -> u64 {\n    \
             let m = p.lane_mask();\n    (w & m) << p.lane_bits() | (w >> jj)\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "lane-width"), "{v:?}");
        // The same literals outside the SWAR scope are another rule's
        // business (e.g. the stream-id constants in snn-core/src/lib.rs).
        let v = rules_on(
            "crates/snn-core/src/lib.rs",
            "pub const INPUT: u64 = 1 << 40;\n",
        );
        assert!(v.iter().all(|v| v.rule != "lane-width"), "{v:?}");
    }

    #[test]
    fn lane_width_skips_tests_and_waivers() {
        let v = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() -> u64 { 0xFF << 8 }\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "lane-width"), "{v:?}");
        let v = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "// lint-allow: lane-width — fixture demonstrating the forbidden shape\n\
             fn f(w: u64) -> u64 { w << 8 }\n",
        );
        assert!(v.iter().all(|v| v.rule != "lane-width"), "{v:?}");
    }

    // -- atomic-ordering --------------------------------------------------

    #[test]
    fn atomic_ordering_flags_raw_literals_in_commit_scope() {
        let v = rules_on(
            "crates/gpu-device/src/commit.rs",
            "fn fold(cell: &AtomicU64) -> u64 {\n    cell.load(Ordering::Acquire)\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == "atomic-ordering"), "{v:?}");
        let v = rules_on(
            "crates/gpu-device/src/commit.rs",
            "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "atomic-ordering"), "{v:?}");
    }

    #[test]
    fn atomic_ordering_accepts_named_constants_and_their_definitions() {
        let src = "pub const COMMIT_LOAD: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_CAS_SUCCESS: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_CAS_FAILURE: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_STATS: Ordering = Ordering::Relaxed;\n\
                   fn fold(cell: &AtomicU64) -> u64 {\n    cell.load(COMMIT_LOAD)\n}\n";
        let v = rules_on("crates/gpu-device/src/commit.rs", src);
        assert!(v.iter().all(|v| v.rule != "atomic-ordering"), "{v:?}");
    }

    #[test]
    fn atomic_ordering_skips_tests_waivers_and_out_of_scope_files() {
        let v = rules_on(
            "crates/gpu-device/src/commit.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::SeqCst); }\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "atomic-ordering"), "{v:?}");
        let v = rules_on(
            "crates/gpu-device/src/commit.rs",
            "// lint-allow: atomic-ordering — fixture demonstrating the forbidden shape\n\
             fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "atomic-ordering"), "{v:?}");
        // The pool's SeqCst counters are another file's business.
        let v = rules_on(
            "crates/gpu-device/src/pool.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "atomic-ordering"), "{v:?}");
    }

    // -- report -----------------------------------------------------------

    #[test]
    fn report_counts_blocks_impls_and_fns() {
        let files = single(
            "crates/gpu-device/src/x.rs",
            "// SAFETY: a.\nunsafe impl Send for X {}\nfn f() {\n    // SAFETY: b.\n    \
             unsafe { g() };\n}\npub unsafe fn h() {}\n",
        );
        let json = report(&files);
        assert!(json.contains("\"unsafe_blocks\": 1"), "{json}");
        assert!(json.contains("\"unsafe_impls\": 1"), "{json}");
        assert!(json.contains("\"unsafe_fns\": 1"), "{json}");
        assert!(json.contains("\"files_with_unsafe\": 1"), "{json}");
    }
}
