//! `atomic-protocol`: structurally verify that each `COMMIT_*` ordering
//! constant is used only in its documented operation kind (DESIGN.md
//! §14.2). The older `atomic-ordering` rule only forbids *raw*
//! `Ordering::` literals in the commit kernel; this analysis goes
//! further and checks the named constants are not mis-wired — e.g.
//! `fetch_add(1, COMMIT_LOAD)` or a `COMMIT_CAS_FAILURE` in the success
//! slot of a `compare_exchange` both fail, even though neither spells a
//! raw ordering.
//!
//! Implementation: a token walk with a call-frame stack. Every `(`
//! pushes a frame recording the callee identifier immediately before it
//! (if any) and counts top-level commas, so when a `COMMIT_*` token is
//! reached the enclosing `(callee, argument index)` is known exactly —
//! across line breaks, through nested calls, and never inside strings
//! or comments (those aren't significant tokens).

use crate::lex::{SourceFile, TokKind};
use crate::Violation;

/// One protocol row: constant name, allowed `(operation, argument
/// index)` positions, and a human rendering for messages.
pub type ProtocolRow = (&'static str, &'static [(&'static str, usize)], &'static str);

/// The documented protocol (DESIGN.md §14.2), one row per constant.
pub const COMMIT_PROTOCOL: &[ProtocolRow] = &[
    (
        "COMMIT_LOAD",
        &[("load", 0)],
        "the ordering of `load` (optimistic/in-loop re-read)",
    ),
    (
        "COMMIT_CAS_SUCCESS",
        &[("compare_exchange", 2), ("compare_exchange_weak", 2)],
        "the success ordering (arg 3) of `compare_exchange[_weak]`",
    ),
    (
        "COMMIT_CAS_FAILURE",
        &[("compare_exchange", 3), ("compare_exchange_weak", 3)],
        "the failure ordering (arg 4) of `compare_exchange[_weak]`",
    ),
    (
        "COMMIT_STATS",
        &[("fetch_add", 1), ("load", 0)],
        "the ordering of stats-counter `fetch_add`/`load`",
    ),
];

struct Frame {
    /// Callee ident right before the `(`; `None` for grouping parens,
    /// tuples, `[`/`{` regions.
    callee: Option<String>,
    arg: usize,
    open: char,
}

/// Runs the protocol check over every workspace file.
pub fn run(files: &[SourceFile], out: &mut Vec<Violation>) {
    for f in files {
        check_file(f, out);
    }
}

fn check_file(f: &SourceFile, out: &mut Vec<Violation>) {
    let sig = f.sig();
    let text = |k: usize| -> &str { sig.get(k).map(|&i| f.toks[i].text.as_str()).unwrap_or("") };
    let kind = |k: usize| sig.get(k).map(|&i| f.toks[i].kind);
    let line = |k: usize| sig.get(k).map(|&i| f.toks[i].line).unwrap_or(0);

    let mut stack: Vec<Frame> = Vec::new();
    let mut in_use = false;
    for k in 0..sig.len() {
        let t = text(k);
        match t {
            "use" => in_use = true,
            ";" => in_use = false,
            "(" | "[" | "{" => {
                let callee = if t == "(" && kind(k.wrapping_sub(1)) == Some(TokKind::Ident) {
                    Some(text(k - 1).to_string())
                } else {
                    None
                };
                stack.push(Frame {
                    callee,
                    arg: 0,
                    open: t.chars().next().unwrap(),
                });
            }
            ")" | "]" | "}" => {
                stack.pop();
            }
            "," => {
                if let Some(fr) = stack.last_mut() {
                    fr.arg += 1;
                }
            }
            _ => {}
        }
        let Some((_, allowed, doc)) = COMMIT_PROTOCOL.iter().find(|(name, _, _)| *name == t) else {
            continue;
        };
        let li = line(k);
        if f.lines.get(li).map(|l| l.in_test).unwrap_or(false) {
            continue;
        }
        // Allowed non-argument contexts: the constant's own definition
        // (`const COMMIT_LOAD: Ordering = …`) and `use` re-exports.
        if text(k.wrapping_sub(1)) == "const" || in_use {
            continue;
        }
        if crate::waived(f, li, "atomic-protocol") {
            continue;
        }
        // Find the innermost *call* frame; `(`-frames without a callee
        // (grouping) are transparent, `[`/`{` frames are opaque — an
        // ordering constant in an array or struct literal is mis-use.
        let mut ctx: Option<(&str, usize)> = None;
        for fr in stack.iter().rev() {
            match (fr.open, &fr.callee) {
                ('(', Some(c)) => {
                    ctx = Some((c.as_str(), fr.arg));
                    break;
                }
                ('(', None) => continue,
                _ => break,
            }
        }
        match ctx {
            Some((callee, arg)) if allowed.iter().any(|(op, ai)| *op == callee && *ai == arg) => {}
            Some((callee, arg)) => out.push(Violation {
                file: f.rel.clone(),
                line: li + 1,
                rule: "atomic-protocol",
                msg: format!(
                    "`{t}` used as argument {} of `{callee}`: DESIGN.md §14.2 documents it \
                     only as {doc} — mis-wiring an ordering constant silently changes the \
                     commit kernel's memory-ordering contract",
                    arg + 1,
                ),
            }),
            None => out.push(Violation {
                file: f.rel.clone(),
                line: li + 1,
                rule: "atomic-protocol",
                msg: format!(
                    "`{t}` referenced outside a call position: DESIGN.md §14.2 documents it \
                     only as {doc}",
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::SourceFile;

    fn check(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("crates/gpu-device/src/commit.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn documented_uses_are_clean_including_multiline() {
        let src = "pub const COMMIT_LOAD: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_CAS_SUCCESS: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_CAS_FAILURE: Ordering = Ordering::Relaxed;\n\
                   pub const COMMIT_STATS: Ordering = Ordering::Relaxed;\n\
                   fn f(slot: &AtomicU64) {\n    let old = slot.load(COMMIT_LOAD);\n    \
                   let _ = slot.compare_exchange_weak(\n        old,\n        1,\n        \
                   COMMIT_CAS_SUCCESS,\n        COMMIT_CAS_FAILURE,\n    );\n    \
                   stats.applied.fetch_add(1, COMMIT_STATS);\n    \
                   let n = stats.applied.load(COMMIT_STATS);\n}\n";
        let v = check(src);
        assert!(v.is_empty(), "{v:?}");
    }

    /// The mis-kinded negative fixture from ISSUE 9: the constant is
    /// *named* (so the old raw-`Ordering::` rule sees nothing wrong) but
    /// wired into the wrong operation kind.
    #[test]
    fn miskinded_constant_is_flagged() {
        let v = check("fn f(s: &AtomicU64) { s.fetch_add(1, COMMIT_LOAD); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "atomic-protocol");
        assert!(v[0].msg.contains("fetch_add"), "{}", v[0].msg);
        // Old rule's logic: no raw `Ordering::` literal on the line → it
        // would have passed this exact mis-use.
        assert!(!"s.fetch_add(1, COMMIT_LOAD);".contains("Ordering::"));
    }

    #[test]
    fn swapped_cas_slots_are_flagged() {
        let v = check(
            "fn f(s: &AtomicU64) { let _ = s.compare_exchange(0, 1, COMMIT_CAS_FAILURE, \
             COMMIT_CAS_SUCCESS); }\n",
        );
        assert_eq!(v.len(), 2, "both swapped slots flag: {v:?}");
    }

    #[test]
    fn store_with_load_ordering_is_flagged() {
        let v = check("fn f(s: &AtomicU64) { s.store(1, COMMIT_LOAD); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("store"), "{}", v[0].msg);
    }

    #[test]
    fn non_call_reference_is_flagged_but_def_use_test_are_not() {
        let v = check("fn f() { let x = [COMMIT_LOAD]; }\n");
        assert_eq!(v.len(), 1, "array literal is a non-call context: {v:?}");
        let v = check("pub const COMMIT_LOAD: Ordering = Ordering::Relaxed;\n");
        assert!(v.is_empty(), "{v:?}");
        let v = check("use crate::commit::COMMIT_LOAD;\n");
        assert!(v.is_empty(), "{v:?}");
        let v = check(
            "#[cfg(test)]\nmod tests {\n    fn t(s: &AtomicU64) { s.store(1, COMMIT_LOAD); }\n}\n",
        );
        assert!(v.is_empty(), "test code exempt: {v:?}");
    }

    #[test]
    fn grouping_parens_are_transparent() {
        let v = check("fn f(s: &AtomicU64) { let _ = s.load((COMMIT_LOAD)); }\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
