//! The token-level invariant rules, ported from the original line
//! scanner onto the [`crate::lex`] views (DESIGN.md §15). The views are
//! built from the lossless token stream, so literals inside macros and
//! calls split across lines are handled exactly; the rule logic itself
//! is unchanged where it was already sound.
//!
//! The old `philox-only` path-list rule is gone — its property is now
//! *proved* by the call-graph [`crate::taint`] analysis.

use crate::lex::SourceFile;
use crate::{waived, Violation};

// ---------------------------------------------------------------------------
// Policy tables (paths are workspace-relative, forward slashes)
// ---------------------------------------------------------------------------

/// Files allowed to contain the token `unsafe` at all. Everything else in
/// the workspace must be (and is declared) safe code.
pub const UNSAFE_ALLOWED: &[&str] = &[
    "crates/gpu-device/src/",
    "crates/snn-loom/src/",
    "crates/snn-core/src/sim/engine.rs",
    "crates/snn-core/src/sim/batched.rs",
    "crates/snn-core/src/sim/generic.rs",
    // The curated sanitizer suite exists to *drive* the unsafe surface
    // (Miri/TSan CI jobs); see its header for the item -> test inventory.
    "crates/gpu-device/tests/unsafe_surface.rs",
];

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/qformat/src/lib.rs",
    "crates/spike-encoding/src/lib.rs",
    "crates/snn-datasets/src/lib.rs",
    "crates/snn-learning/src/lib.rs",
    "crates/reference-sim/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/snn-lint/src/lib.rs",
    "crates/snn-trace/src/lib.rs",
    "crates/snn-serve/src/lib.rs",
    "src/lib.rs",
];

/// Crate roots that host unsafe code and must therefore carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` (no implicit unsafe scope inside
/// unsafe fns: every unsafe operation sits in its own commented block).
pub const UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/gpu-device/src/lib.rs",
    "crates/snn-core/src/lib.rs",
    "crates/snn-loom/src/lib.rs",
];

/// Modules whose hot loops must not iterate hash containers.
pub const HASH_SCOPE: &[&str] = &[
    "crates/snn-core/src/sim/",
    "crates/snn-core/src/stdp/",
    "crates/gpu-device/src/fused.rs",
];

/// Files where functions mutating the row-major conductance matrix must
/// also touch the transposed-view coherence API.
pub const COHERENCE_SCOPE: &[&str] = &["crates/snn-core/src/sim/"];
/// Mutator tokens: raw mutable access to the conductance storage.
pub const COHERENCE_MUTATORS: &[&str] = &["as_flat_mut", "row_mut("];
/// Coherence tokens: any of these in the same function discharges the rule.
pub const COHERENCE_API: &[&str] = &["refresh(", "TransposedConductances::new"];

/// Model-checked crates: files (other than each crate's shim itself) must
/// reach sync primitives only through `crate::sync`, so `--cfg loom` swaps
/// them all. Pairs of (scope prefix, exempt shim path).
pub const SYNC_SHIM_SCOPES: &[(&str, &str)] = &[
    ("crates/gpu-device/src/", "crates/gpu-device/src/sync.rs"),
    ("crates/snn-serve/src/", "crates/snn-serve/src/sync.rs"),
];
/// Sync-primitive tokens forbidden outside the shim.
pub const SYNC_FORBIDDEN: &[&str] = &[
    "parking_lot::",
    "crossbeam::",
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::Barrier",
    "std::sync::mpsc",
    "std::thread::spawn",
    "std::thread::Builder",
];

/// Telemetry call tokens whose literal first string argument is a span,
/// kernel or metric name. Every such name must appear backticked in the
/// DESIGN.md §11/§12 schema tables, so the documented schema can never drift
/// from what the code emits. Matching requires the token to start an
/// identifier boundary, so `record_gauge(` never double-counts as `gauge(`.
pub const TRACE_NAME_CALLS: &[&str] = &[
    // span recording (snn-trace)
    "span(",
    "span_cat(",
    "step_span(",
    "time_ms(",
    "record_span_at(",
    // kernel launches (gpu-device) — the name becomes a `kernel/<k>/*`
    // metric family and a span at Detail::Steps
    "launch(",
    "launch_mut(",
    "launch_slice_mut(",
    "launch_slice_mut_weighted(",
    "launch_weighted(",
    "launch_rows_mut(",
    "launch_fused(",
    "reduce(",
    // device-level counters/gauges → `device/<name>` metrics
    "bump_counter(",
    "record_gauge(",
    "record_gauge_stats(",
    "gauge(",
    "gauge_stats(",
    // MetricsHub publication
    "add_counter(",
    "set_counter(",
    "set_value(",
    "observe(",
    "merge_gauge(",
];

/// Files exempt from `trace-schema`: the recorder/hub implementation and
/// its fixtures, this lint's own fixtures, and the loom scenario file
/// (whose kernels exist only under `--cfg loom`).
pub const TRACE_SCHEMA_EXEMPT: &[&str] = &[
    "crates/snn-trace/",
    "crates/snn-lint/",
    "crates/gpu-device/src/loom_tests.rs",
];

/// SWAR kernel files the `lane-width` rule scopes to: bit-parallel code
/// whose lane counts, lane widths, shift amounts and masks must derive
/// from the `qformat` constants (`QFormat::lanes_per_u64`, `LaneLayout`),
/// never appear as numeric literals — a hand-written `>> 8` or
/// `0x00FF00FF` would silently desynchronize from a format change.
pub const LANE_WIDTH_SCOPE: &[&str] = &["crates/snn-core/src/sim/batched.rs"];

/// Commit-kernel files the `atomic-ordering` rule scopes to: the atomic
/// conductance grid of the shared-atomics training commit (DESIGN.md §14).
/// Raw `Ordering::` literals are forbidden here — every ordering must be
/// one of [`ATOMIC_ORDERING_CONSTS`], so weakening or strengthening an
/// ordering is a reviewed edit to one documented table, never a drive-by
/// change buried in a kernel body. (The companion `atomic-protocol`
/// analysis additionally checks the constants land in the right
/// operation kind — see [`crate::atomics`].)
pub const ATOMIC_ORDERING_SCOPE: &[&str] = &["crates/gpu-device/src/commit.rs"];

/// The named ordering constants of the commit kernel; the only lines in
/// [`ATOMIC_ORDERING_SCOPE`] allowed to spell `Ordering::` are their
/// definitions.
pub const ATOMIC_ORDERING_CONSTS: &[&str] = &[
    "COMMIT_LOAD",
    "COMMIT_CAS_SUCCESS",
    "COMMIT_CAS_FAILURE",
    "COMMIT_STATS",
];

/// How many non-unsafe lines may separate two unsafe statements that share
/// one `// SAFETY:` comment (a "cluster").
pub const SAFETY_CLUSTER_GAP: usize = 2;
/// How far above the cluster head the comment may sit.
pub const SAFETY_LOOKBACK: usize = 4;

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

/// Whether `code` contains an occurrence of the `unsafe` keyword that opens
/// a block or an `unsafe impl` (declarations `unsafe fn`/`unsafe trait`
/// document their contract in `# Safety` docs instead).
pub fn unsafe_kind(code: &str) -> Option<&'static str> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("unsafe") {
        let at = search + pos;
        search = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        let after = &code[at + "unsafe".len()..];
        if !before_ok || after.starts_with(|c: char| is_ident_char(c)) {
            continue; // part of a longer identifier e.g. `unsafe_code`
        }
        let rest = after.trim_start();
        if rest.starts_with("impl") {
            return Some("unsafe impl");
        }
        if rest.starts_with("fn") || rest.starts_with("trait") || rest.starts_with("extern") {
            continue;
        }
        // `unsafe {`, `unsafe{`, or `unsafe` at end of line (block opens on
        // the next line).
        return Some("unsafe block");
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn rule_safety_comment(file: &SourceFile, out: &mut Vec<Violation>) {
    // Cluster consecutive unsafe lines (gap <= SAFETY_CLUSTER_GAP) and
    // require a SAFETY comment within SAFETY_LOOKBACK lines above the
    // cluster head (or on the head itself).
    let unsafe_lines: Vec<(usize, &'static str)> = file
        .lines
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.code.contains("#!") && !l.code.contains("#["))
        .filter_map(|(i, l)| unsafe_kind(&l.code).map(|k| (i, k)))
        .collect();
    let mut prev: Option<usize> = None;
    for &(idx, kind) in &unsafe_lines {
        let new_cluster = match prev {
            Some(p) => idx - p > SAFETY_CLUSTER_GAP + 1,
            None => true,
        };
        if new_cluster {
            let head = idx;
            // Walk upward: comment-only / blank lines are free (a multi-line
            // SAFETY comment counts however long it is); each line with code
            // consumes one unit of the lookback budget.
            let mut covered =
                file.lines[head].comment.contains("SAFETY") || waived(file, head, "safety-comment");
            let mut budget = SAFETY_LOOKBACK;
            let mut j = head;
            while !covered && budget > 0 && j > 0 {
                j -= 1;
                let l = &file.lines[j];
                if l.comment.contains("SAFETY") {
                    covered = true;
                }
                if !l.code.trim().is_empty() {
                    budget -= 1;
                }
            }
            if !covered {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: head + 1,
                    rule: "safety-comment",
                    msg: format!(
                        "{kind} without a `// SAFETY:` comment within {SAFETY_LOOKBACK} \
                         lines above"
                    ),
                });
            }
        }
        prev = Some(idx);
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-surface
// ---------------------------------------------------------------------------

fn rule_unsafe_surface(files: &[SourceFile], out: &mut Vec<Violation>) {
    for f in files {
        let allowed = UNSAFE_ALLOWED.iter().any(|p| f.rel.starts_with(p));
        if !allowed {
            for (i, l) in f.lines.iter().enumerate() {
                // Attribute mentions (`forbid(unsafe_code)`) are fine.
                if l.code.contains("unsafe")
                    && unsafe_kind(&l.code).is_some()
                    && !l.code.contains("#!")
                    && !waived(f, i, "unsafe-surface")
                {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: i + 1,
                        rule: "unsafe-surface",
                        msg: "unsafe code outside the audited allow-list \
                              (see snn-lint UNSAFE_ALLOWED)"
                            .into(),
                    });
                }
            }
        }
    }
    for root in FORBID_UNSAFE_ROOTS {
        check_root_attr(files, root, "#![forbid(unsafe_code)]", out);
    }
    for root in UNSAFE_OP_ROOTS {
        check_root_attr(files, root, "#![deny(unsafe_op_in_unsafe_fn)]", out);
    }
}

fn check_root_attr(files: &[SourceFile], root: &str, attr: &str, out: &mut Vec<Violation>) {
    let Some(f) = files.iter().find(|f| f.rel == root) else {
        // Only report a missing root when the crate's directory is part of
        // the scanned set (fixture runs lint a handful of files; the real
        // workspace walk always includes every crate directory).
        let dir = root.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
        if files.iter().any(|f| f.rel.starts_with(dir)) {
            out.push(Violation {
                file: root.to_string(),
                line: 1,
                rule: "unsafe-surface",
                msg: "expected crate root is missing".into(),
            });
        }
        return;
    };
    if !f.lines.iter().any(|l| l.code.contains(attr)) {
        out.push(Violation {
            file: f.rel.clone(),
            line: 1,
            rule: "unsafe-surface",
            msg: format!("crate root must declare `{attr}`"),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: transposed-coherence
// ---------------------------------------------------------------------------

/// `fn` item spans `(head_line, body_start..body_end)` (0-based, inclusive),
/// found by brace matching from each `fn` keyword.
fn fn_spans(file: &SourceFile) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        let code = &file.lines[i].code;
        if let Some(pos) = find_fn_keyword(code) {
            // find the opening brace of the body (skipping the signature)
            let mut depth = 0i64;
            let mut started = false;
            let mut j = i;
            let mut col = pos;
            'outer: while j < n {
                let lc = &file.lines[j].code;
                for ch in lc.chars().skip(if j == i { col } else { 0 }) {
                    match ch {
                        ';' if !started && depth == 0 => break 'outer, // fn decl w/o body
                        '{' => {
                            started = true;
                            depth += 1;
                        }
                        '}' => {
                            depth -= 1;
                            if started && depth == 0 {
                                spans.push((i, i, j));
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
                col = 0;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn find_fn_keyword(code: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("fn ") {
        let at = search + pos;
        search = at + 3;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        if before_ok {
            return Some(at);
        }
    }
    None
}

fn rule_transposed_coherence(file: &SourceFile, out: &mut Vec<Violation>) {
    if !COHERENCE_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (head, start, end) in fn_spans(file) {
        if file.lines[head].in_test {
            continue;
        }
        let mut mutator_line = None;
        let mut coherent = false;
        for idx in start..=end {
            let code = &file.lines[idx].code;
            if mutator_line.is_none() && COHERENCE_MUTATORS.iter().any(|m| code.contains(m)) {
                mutator_line = Some(idx);
            }
            if COHERENCE_API.iter().any(|a| code.contains(a)) {
                coherent = true;
            }
        }
        if let Some(m) = mutator_line {
            if !coherent
                && !waived(file, m, "transposed-coherence")
                && !waived(file, head, "transposed-coherence")
            {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: m + 1,
                    rule: "transposed-coherence",
                    msg: "conductance mutator without a transposed-view refresh/rebuild \
                          in the same function (sparse delivery would read stale currents)"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hash-iteration
// ---------------------------------------------------------------------------

fn rule_hash_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HASH_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    // Collect identifiers bound to hash containers anywhere in the file.
    let mut names: Vec<String> = Vec::new();
    for l in &file.lines {
        let code = &l.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: ...Hash{Map,Set}` or `name: Hash{Map,Set}` field
        if let Some(let_pos) = code.find("let ") {
            let rest = code[let_pos + 4..].trim_start().trim_start_matches("mut ");
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                names.push(name);
            }
        } else if let Some(colon) = code.find(':') {
            let name: String = code[..colon]
                .trim_end()
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() && code[colon..].contains("Hash") {
                names.push(name);
            }
        }
    }
    if names.is_empty() {
        return;
    }
    const ITER_SUFFIXES: &[&str] = &[
        ".iter()",
        ".keys()",
        ".values()",
        ".drain(",
        ".into_iter()",
        ".retain(",
    ];
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "hash-iteration") {
            continue;
        }
        let code = &l.code;
        for name in &names {
            let direct_iter = ITER_SUFFIXES
                .iter()
                .any(|s| code.contains(&format!("{name}{s}")));
            let for_iter = code.contains("for ")
                && code.contains(" in ")
                && (code.contains(&format!("in &{name}")) || code.contains(&format!("in {name}")));
            if direct_iter || for_iter {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "hash-iteration",
                    msg: format!(
                        "iteration over hash container `{name}` on a hot path: \
                         unordered iteration is nondeterministic; iterate a sorted \
                         key list or a Vec instead (lookups are fine)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: sync-shim
// ---------------------------------------------------------------------------

fn rule_sync_shim(file: &SourceFile, out: &mut Vec<Violation>) {
    let in_scope = SYNC_SHIM_SCOPES
        .iter()
        .any(|(scope, exempt)| file.rel.starts_with(scope) && file.rel != *exempt);
    if !in_scope {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        // Unit tests drive the protocol with real threads deliberately
        // (e.g. blocking-steal tests); only production lines must route
        // through the shim.
        if l.in_test || waived(file, i, "sync-shim") {
            continue;
        }
        for tok in SYNC_FORBIDDEN {
            if l.code.contains(tok) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "sync-shim",
                    msg: format!(
                        "`{tok}` used directly: import it through `crate::sync` so \
                         `--cfg loom` swaps every primitive for the model checker"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: lane-width
// ---------------------------------------------------------------------------

fn rule_lane_width(file: &SourceFile, out: &mut Vec<Violation>) {
    if !LANE_WIDTH_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "lane-width") {
            continue;
        }
        let code = l.code.as_str();
        // Literal shift amounts: `<< 8`, `>>= 2`, … Shifts by an
        // expression (a lane-layout accessor, a loop variable) are fine.
        for op in ["<<", ">>"] {
            let mut rest = code;
            while let Some(pos) = rest.find(op) {
                let tail = rest[pos + op.len()..].trim_start_matches('=').trim_start();
                if tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    out.push(Violation {
                        file: file.rel.clone(),
                        line: i + 1,
                        rule: "lane-width",
                        msg: format!(
                            "literal shift amount after `{op}` in a SWAR kernel: derive \
                             shifts from `LaneLayout::lane_bits()` / `QFormat` widths so a \
                             format change cannot desynchronize the kernel"
                        ),
                    });
                    break; // one violation per line per operator is plenty
                }
                rest = &rest[pos + op.len()..];
            }
        }
        // Hex bit-mask literals: lane and value masks come from
        // `LaneLayout::lane_mask()` / `splat`, never hand-packed.
        if let Some(pos) = code.find("0x") {
            let prev = code[..pos].chars().next_back();
            if !prev.is_some_and(is_ident_char) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: i + 1,
                    rule: "lane-width",
                    msg: "hex mask literal in a SWAR kernel: build lane/value masks \
                          with `LaneLayout::lane_mask()`/`splat` instead of hand-packed \
                          constants"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering
// ---------------------------------------------------------------------------

fn rule_atomic_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    if !ATOMIC_ORDERING_SCOPE
        .iter()
        .any(|p| file.rel.starts_with(p))
    {
        return;
    }
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test || waived(file, i, "atomic-ordering") {
            continue;
        }
        let code = l.code.as_str();
        if !code.contains("Ordering::") {
            continue;
        }
        // The definitions of the named constants are the one place a
        // literal ordering may appear (`pub const COMMIT_LOAD: Ordering =
        // Ordering::Relaxed;`).
        let defines_allowed = ATOMIC_ORDERING_CONSTS
            .iter()
            .any(|c| code.contains(&format!("const {c}:")));
        if defines_allowed {
            continue;
        }
        out.push(Violation {
            file: file.rel.clone(),
            line: i + 1,
            rule: "atomic-ordering",
            msg: "raw `Ordering::` literal in the commit-kernel scope: use one of \
                  the named constants (COMMIT_LOAD / COMMIT_CAS_SUCCESS / \
                  COMMIT_CAS_FAILURE / COMMIT_STATS) so the soundness argument \
                  stays in one audited place"
                .into(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: trace-schema
// ---------------------------------------------------------------------------

/// Extracts the set of backticked names from the `## 11` telemetry,
/// `## 12` serving, `## 13` batched-execution, `## 14` parallel-training
/// and `## 16` sharding/memory-pool sections of DESIGN.md. Returns `None`
/// when all sections are missing entirely (a violation in itself — the
/// schema reference is load-bearing).
pub fn design_schema_names(design: &str) -> Option<Vec<String>> {
    let mut in_section = false;
    let mut found = false;
    let mut names = Vec::new();
    for line in design.lines() {
        if line.starts_with("## ") {
            in_section = line.starts_with("## 11")
                || line.starts_with("## 12")
                || line.starts_with("## 13")
                || line.starts_with("## 14")
                || line.starts_with("## 16");
            found |= in_section;
            continue;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let name = &tail[..close];
            if !name.is_empty() {
                names.push(name.to_string());
            }
            rest = &tail[close + 1..];
        }
    }
    found.then_some(names)
}

/// Scans a file's comment-masked (strings kept) text for telemetry calls
/// whose first argument is a string literal; yields `(line_idx, name)`.
/// Calls that pass a variable or `format!` as the name are skipped — only
/// literals can be checked against the schema statically.
fn trace_names(file: &SourceFile) -> Vec<(usize, String)> {
    let mut text = String::new();
    let mut starts = Vec::with_capacity(file.lines.len());
    for l in &file.lines {
        starts.push(text.len());
        text.push_str(&l.full);
        text.push('\n');
    }
    let line_of = |off: usize| match starts.binary_search(&off) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    let mut out = Vec::new();
    for tok in TRACE_NAME_CALLS {
        let mut search = 0;
        while let Some(pos) = text[search..].find(tok) {
            let at = search + pos;
            search = at + tok.len();
            if at > 0 && is_ident_char(text.as_bytes()[at - 1] as char) {
                continue; // suffix of a longer identifier (e.g. `step_span(`)
            }
            let rest = text[at + tok.len()..].trim_start();
            let rest = rest.strip_prefix('&').unwrap_or(rest);
            let Some(lit) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = lit.find('"') else { continue };
            if end > 0 {
                out.push((line_of(at), lit[..end].to_string()));
            }
        }
    }
    out
}

fn rule_trace_schema(file: &SourceFile, schema: &[String], out: &mut Vec<Violation>) {
    let in_src = file.rel.starts_with("src/") || file.rel.contains("/src/");
    if !in_src || TRACE_SCHEMA_EXEMPT.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for (idx, name) in trace_names(file) {
        if file.lines[idx].in_test || waived(file, idx, "trace-schema") {
            continue;
        }
        // Device counters/gauges are published under `device/<name>`;
        // kernel and span names are documented verbatim.
        let device_form = format!("device/{name}");
        if schema.iter().any(|s| *s == name || *s == device_form) {
            continue;
        }
        out.push(Violation {
            file: file.rel.clone(),
            line: idx + 1,
            rule: "trace-schema",
            msg: format!(
                "telemetry name `{name}` is not documented in the DESIGN.md §11/§12/§16 \
                 schema tables (add a row there, or waive with lint-allow)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Entry point for the ported rule set
// ---------------------------------------------------------------------------

/// Runs the eight ported token-level rules over the workspace.
pub fn run(files: &[SourceFile], schema: Option<&[String]>, out: &mut Vec<Violation>) {
    rule_unsafe_surface(files, out);
    if schema.is_none() {
        out.push(Violation {
            file: "DESIGN.md".into(),
            line: 1,
            rule: "trace-schema",
            msg: "missing the `## 11` telemetry schema section that documents \
                  every span and metric name"
                .into(),
        });
    }
    for f in files {
        rule_safety_comment(f, out);
        rule_transposed_coherence(f, out);
        rule_hash_iteration(f, out);
        rule_sync_shim(f, out);
        rule_lane_width(f, out);
        rule_atomic_ordering(f, out);
        if let Some(schema) = schema {
            rule_trace_schema(f, schema, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(rel: &str, text: &str) -> Vec<SourceFile> {
        vec![SourceFile::parse(rel, text)]
    }

    fn rules_on(rel: &str, text: &str) -> Vec<Violation> {
        let files = single(rel, text);
        let mut out = Vec::new();
        for f in &files {
            rule_safety_comment(f, &mut out);
            rule_transposed_coherence(f, &mut out);
            rule_hash_iteration(f, &mut out);
            rule_sync_shim(f, &mut out);
            rule_lane_width(f, &mut out);
            rule_atomic_ordering(f, &mut out);
        }
        out
    }

    // -- safety-comment ---------------------------------------------------

    #[test]
    fn safety_comment_flags_uncommented_unsafe_block() {
        let v = rules_on(
            "crates/gpu-device/src/x.rs",
            "fn f() {\n    unsafe { work() };\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == "safety-comment"), "{v:?}");
    }

    #[test]
    fn safety_comment_accepts_commented_block_and_cluster() {
        let src = "fn f() {\n    // SAFETY: disjoint indices.\n    unsafe { a() };\n    \
                   unsafe { b() };\n    let x = 1;\n    unsafe { c() };\n}\n";
        let v = rules_on("crates/gpu-device/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "safety-comment"), "{v:?}");
    }

    #[test]
    fn safety_comment_flags_uncommented_unsafe_impl() {
        let v = rules_on("crates/gpu-device/src/x.rs", "unsafe impl Send for X {}\n");
        assert!(v.iter().any(|v| v.rule == "safety-comment"));
        let ok = rules_on(
            "crates/gpu-device/src/x.rs",
            "// SAFETY: X owns no thread-bound state.\nunsafe impl Send for X {}\n",
        );
        assert!(ok.iter().all(|v| v.rule != "safety-comment"));
    }

    #[test]
    fn safety_comment_ignores_unsafe_fn_declarations() {
        let v = rules_on(
            "crates/gpu-device/src/x.rs",
            "/// # Safety\n/// caller checks i.\npub unsafe fn get(i: usize) -> f64;\n",
        );
        assert!(v.iter().all(|v| v.rule != "safety-comment"), "{v:?}");
    }

    // -- unsafe-surface ---------------------------------------------------

    #[test]
    fn unsafe_surface_flags_unsafe_outside_allow_list() {
        let files = single(
            "crates/snn-learning/src/x.rs",
            "fn f() { unsafe { boom() } }\n",
        );
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(out.iter().any(|v| v.rule == "unsafe-surface"));
    }

    #[test]
    fn unsafe_surface_accepts_allow_listed_files() {
        let files = single(
            "crates/gpu-device/src/device.rs",
            "fn f() {\n    // SAFETY: fine.\n    unsafe { ok() }\n}\n",
        );
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(out
            .iter()
            .all(|v| v.file != "crates/gpu-device/src/device.rs"));
    }

    /// The string-literal-waiver evasion fixture from ISSUE 9: the old
    /// scanner's *reported* behavior was comment-only waivers, but any
    /// scanner that greps raw lines for `lint-allow:` (the natural naive
    /// implementation) honors a waiver smuggled inside a string literal.
    /// The token-stream views make that structurally impossible: string
    /// contents never reach the `comment` view `waived()` consults.
    #[test]
    fn waiver_inside_string_literal_is_not_honored() {
        let src = "fn f() {\n    let s = \"lint-allow: unsafe-surface — smuggled\";\n    \
                   unsafe { boom() }\n}\n";
        // Naive raw-line logic (what a line grep would do): sees the tag.
        assert!(
            src.lines()
                .any(|l| l.contains("lint-allow: unsafe-surface")),
            "fixture must contain the tag in a raw-line view"
        );
        // New analyzer: the tag sits in a Str token, not a comment — the
        // unsafe block on the next line still flags.
        let files = single("crates/snn-learning/src/x.rs", src);
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(
            out.iter().any(|v| v.rule == "unsafe-surface"),
            "string-literal waiver must not suppress: {out:?}"
        );
        // A real comment waiver on the line above *does* suppress.
        let files = single(
            "crates/snn-learning/src/x.rs",
            "fn f() {\n    // lint-allow: unsafe-surface — justified here\n    unsafe { ok() }\n}\n",
        );
        let mut out = Vec::new();
        rule_unsafe_surface(&files, &mut out);
        assert!(
            out.iter().all(|v| v.file != "crates/snn-learning/src/x.rs"),
            "{out:?}"
        );
    }

    // -- transposed-coherence ---------------------------------------------

    #[test]
    fn coherence_flags_mutator_without_refresh() {
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn mutate(&mut self) {\n    let g = self.g.as_flat_mut();\n    g[0] = 1.0;\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == "transposed-coherence"), "{v:?}");
    }

    #[test]
    fn coherence_accepts_mutator_with_refresh() {
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn mutate(&mut self) {\n    let g = self.g.as_flat_mut();\n    g[0] = 1.0;\n    \
             self.transposed.refresh(&self.g);\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "transposed-coherence"), "{v:?}");
    }

    // -- hash-iteration ---------------------------------------------------

    #[test]
    fn hash_iteration_flags_iteration_not_lookup() {
        let v = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn f() {\n    let mut m: HashMap<u32, f64> = HashMap::new();\n    \
             for (k, v) in m.iter() { use_it(k, v); }\n}\n",
        );
        assert!(v.iter().any(|v| v.rule == "hash-iteration"), "{v:?}");
        let ok = rules_on(
            "crates/snn-core/src/sim/engine.rs",
            "fn f() {\n    let m: HashMap<u32, f64> = HashMap::new();\n    \
             let x = m.get(&3);\n}\n",
        );
        assert!(ok.iter().all(|v| v.rule != "hash-iteration"), "{ok:?}");
    }

    // -- sync-shim --------------------------------------------------------

    #[test]
    fn sync_shim_flags_direct_primitives_outside_shim() {
        let v = rules_on(
            "crates/gpu-device/src/pool.rs",
            "fn f() { let m = parking_lot::Mutex::new(()); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "sync-shim"), "{v:?}");
        let ok = rules_on(
            "crates/gpu-device/src/sync.rs",
            "pub use parking_lot::Mutex;\n",
        );
        assert!(ok.iter().all(|v| v.rule != "sync-shim"), "{ok:?}");
    }

    // -- lane-width -------------------------------------------------------

    #[test]
    fn lane_width_flags_literal_shifts_and_hex_masks() {
        let v = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "fn f(x: u64) -> u64 { (x >> 8) & 0x00FF00FF }\n",
        );
        assert!(
            v.iter().filter(|v| v.rule == "lane-width").count() >= 2,
            "{v:?}"
        );
        let ok = rules_on(
            "crates/snn-core/src/sim/batched.rs",
            "fn f(x: u64, l: LaneLayout) -> u64 { (x >> l.lane_bits()) & l.lane_mask() }\n",
        );
        assert!(ok.iter().all(|v| v.rule != "lane-width"), "{ok:?}");
    }

    // -- atomic-ordering --------------------------------------------------

    #[test]
    fn atomic_ordering_flags_raw_literals_outside_const_defs() {
        let v = rules_on(
            "crates/gpu-device/src/commit.rs",
            "fn f(s: &AtomicU64) { s.load(Ordering::Relaxed); }\n",
        );
        assert!(v.iter().any(|v| v.rule == "atomic-ordering"), "{v:?}");
        let ok = rules_on(
            "crates/gpu-device/src/commit.rs",
            "pub const COMMIT_LOAD: Ordering = Ordering::Relaxed;\n",
        );
        assert!(ok.iter().all(|v| v.rule != "atomic-ordering"), "{ok:?}");
    }

    // -- trace-schema -----------------------------------------------------

    #[test]
    fn trace_schema_checks_literal_names_against_design() {
        let design =
            "## 11. Telemetry\n| `step/deliver` | span |\n| `device/launches` | counter |\n";
        let schema = design_schema_names(design).expect("schema found");
        let f = SourceFile::parse(
            "crates/gpu-device/src/device.rs",
            "fn f(t: &Trace) {\n    t.span(\"step/deliver\");\n    t.bump_counter(\"launches\");\n    \
             t.span(\"undocumented/name\");\n}\n",
        );
        let mut out = Vec::new();
        rule_trace_schema(&f, &schema, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("undocumented/name"), "{}", out[0].msg);
    }

    /// The sharding/memory-pool section (§16) feeds the schema exactly as
    /// the telemetry sections do: names documented only there are in
    /// scope, and intervening non-schema sections close the scan.
    #[test]
    fn trace_schema_reads_section_16() {
        let design = "## 11. Telemetry\n| `step/deliver` | span |\n\
                      ## 15. Roadmap\n| `not/a/name` | prose |\n\
                      ## 16. Sharding\n| `shard/count` | counter |\n| `device/pool_live_bytes` | gauge |\n";
        let schema = design_schema_names(design).expect("schema found");
        assert!(schema.iter().any(|s| s == "shard/count"), "{schema:?}");
        assert!(!schema.iter().any(|s| s == "not/a/name"), "{schema:?}");
        let f = SourceFile::parse(
            "crates/snn-core/src/sim/sharded.rs",
            "fn f(m: &Hub) {\n    m.set_counter(\"shard/count\", 1);\n}\n",
        );
        let mut out = Vec::new();
        rule_trace_schema(&f, &schema, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    /// Multi-line calls were a blind spot of the line scanner: the name
    /// literal sits on the line after the call token. The concatenated
    /// `full` view scans across lines, so it is found now.
    #[test]
    fn trace_schema_sees_multiline_calls() {
        let design = "## 11. Telemetry\n| `step/deliver` | span |\n";
        let schema = design_schema_names(design).expect("schema");
        let f = SourceFile::parse(
            "crates/gpu-device/src/device.rs",
            "fn f(t: &Trace) {\n    t.span(\n        \"not/in/schema\",\n    );\n}\n",
        );
        let mut out = Vec::new();
        rule_trace_schema(&f, &schema, &mut out);
        assert_eq!(
            out.len(),
            1,
            "multi-line call literal must be checked: {out:?}"
        );
    }
}
