//! `unsafe-ratchet`: classify every `unsafe` occurrence in the workspace
//! by kind and diff the result against the committed baseline
//! (`results/ANALYSIS_unsafe_audit.json`). The surface may shrink freely;
//! any growth — a new kind in an audited file, or any unsafe in a file
//! not in the baseline at all — fails the lint until the baseline is
//! regenerated (`snn-lint --write-baseline`) in the same change, which
//! makes every unsafe-surface expansion an explicit, reviewable diff.
//!
//! Classification runs on the significant-token stream, so `unsafe`
//! inside strings, comments or `forbid(unsafe_code)` attributes can
//! never count.

use crate::json::{self, Value};
use crate::lex::{SourceFile, TokKind};
use crate::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The unsafe-surface kinds the classifier distinguishes.
pub const KINDS: &[&str] = &[
    "block_transmute",
    "block_raw_deref",
    "block_other",
    "impl_send_sync",
    "impl_trait",
    "unsafe_fn",
    "unsafe_trait",
    "ffi",
];

/// Per-file classified counts: `file → kind → count`.
pub type Inventory = BTreeMap<String, BTreeMap<String, usize>>;

/// Idents inside an unsafe block that mark raw-pointer dereference
/// territory (beyond a literal unary `*`).
const RAW_MARKERS: &[&str] = &[
    "from_raw_parts",
    "from_raw_parts_mut",
    "get_unchecked",
    "get_unchecked_mut",
    "read_volatile",
    "write_volatile",
    "as_mut_ptr",
    "as_ptr",
];

/// Classifies every unsafe occurrence in `files`.
pub fn inventory(files: &[SourceFile]) -> Inventory {
    let mut inv = Inventory::new();
    for f in files {
        let counts = classify_file(f);
        if !counts.is_empty() {
            inv.insert(f.rel.clone(), counts);
        }
    }
    inv
}

fn classify_file(f: &SourceFile) -> BTreeMap<String, usize> {
    let sig = f.sig();
    let text = |k: usize| -> &str { sig.get(k).map(|&i| f.toks[i].text.as_str()).unwrap_or("") };
    let kind_of = |k: usize| sig.get(k).map(|&i| f.toks[i].kind);
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let bump = |counts: &mut BTreeMap<String, usize>, k: &str| {
        *counts.entry(k.to_string()).or_insert(0) += 1;
    };
    for k in 0..sig.len() {
        if text(k) != "unsafe" || kind_of(k) != Some(TokKind::Ident) {
            continue;
        }
        match text(k + 1) {
            "impl" => {
                // Scan the header to `{`: `unsafe impl Send for X`.
                let mut j = k + 2;
                let mut send_sync = false;
                while j < sig.len() && text(j) != "{" {
                    if matches!(text(j), "Send" | "Sync") {
                        send_sync = true;
                    }
                    j += 1;
                }
                bump(
                    &mut counts,
                    if send_sync {
                        "impl_send_sync"
                    } else {
                        "impl_trait"
                    },
                );
            }
            "fn" => bump(&mut counts, "unsafe_fn"),
            "trait" => bump(&mut counts, "unsafe_trait"),
            "extern" => bump(&mut counts, "ffi"),
            "{" => {
                // Unsafe block: classify by body content.
                let mut depth = 0i64;
                let mut j = k + 1;
                let mut transmute = false;
                let mut raw = false;
                while j < sig.len() {
                    match text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "transmute" | "transmute_copy" => transmute = true,
                        t if RAW_MARKERS.contains(&t) => raw = true,
                        // `.add(` / `.offset(` pointer arithmetic.
                        "add" | "offset" if text(j.wrapping_sub(1)) == "." => raw = true,
                        // Unary `*` deref: `*ptr` where `*` follows a
                        // non-value token.
                        "*" if kind_of(j + 1) == Some(TokKind::Ident)
                            && matches!(
                                text(j.wrapping_sub(1)),
                                "=" | "(" | "," | "{" | ";" | "&" | "return"
                            ) =>
                        {
                            raw = true
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let kind = if transmute {
                    "block_transmute"
                } else if raw {
                    "block_raw_deref"
                } else {
                    "block_other"
                };
                bump(&mut counts, kind);
            }
            _ => {
                // `unsafe` followed by something else (e.g. an attribute
                // token sequence): count conservatively as a block.
                bump(&mut counts, "block_other");
            }
        }
    }
    counts
}

/// Serializes an inventory as the baseline JSON document, with the
/// update workflow documented in its header.
pub fn render_baseline(inv: &Inventory) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"_how_to_update\": [\n");
    s.push_str(
        "    \"This file is the ratchet baseline for snn-lint's unsafe-surface analysis\",\n",
    );
    s.push_str("    \"(rule `unsafe-ratchet`, DESIGN.md SS15). The lint fails whenever the\",\n");
    s.push_str(
        "    \"classified unsafe surface grows past these counts. To accept a deliberate\",\n",
    );
    s.push_str("    \"expansion, regenerate with:  cargo run --release -p snn-lint -- --write-baseline\",\n");
    s.push_str(
        "    \"and commit the diff in the same change, so every unsafe-surface growth is\",\n",
    );
    s.push_str("    \"an explicit, reviewable edit. Never hand-edit the counts.\"\n");
    s.push_str("  ],\n");
    s.push_str("  \"version\": 2,\n");
    s.push_str("  \"generated_by\": \"snn-lint --write-baseline\",\n");
    s.push_str("  \"files\": {\n");
    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for (n, (file, counts)) in inv.iter().enumerate() {
        let _ = write!(s, "    \"{}\": {{", json::esc(file));
        for (m, (k, c)) in counts.iter().enumerate() {
            *totals.entry(k.as_str()).or_insert(0) += c;
            let _ = write!(
                s,
                "\"{}\": {c}{}",
                json::esc(k),
                if m + 1 < counts.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(s, "}}{}", if n + 1 < inv.len() { "," } else { "" });
    }
    s.push_str("  },\n  \"totals\": {");
    for (m, (k, c)) in totals.iter().enumerate() {
        let _ = write!(
            s,
            "\"{k}\": {c}{}",
            if m + 1 < totals.len() { ", " } else { "" }
        );
    }
    s.push_str("}\n}\n");
    s
}

/// Parses a baseline document into an inventory. Accepts only the v2
/// format this module writes.
pub fn parse_baseline(text: &str) -> Result<Inventory, String> {
    let v = json::parse(text).map_err(|e| format!("baseline JSON: {e}"))?;
    if v.get("version").and_then(Value::as_i64) != Some(2) {
        return Err("baseline is not version 2 — regenerate with --write-baseline".into());
    }
    let files = v
        .get("files")
        .and_then(Value::as_obj)
        .ok_or("baseline missing `files` object")?;
    let mut inv = Inventory::new();
    for (file, counts) in files {
        let obj = counts
            .as_obj()
            .ok_or_else(|| format!("bad counts for {file}"))?;
        let mut m = BTreeMap::new();
        for (k, c) in obj {
            m.insert(k.clone(), c.as_i64().unwrap_or(0).max(0) as usize);
        }
        inv.insert(file.clone(), m);
    }
    Ok(inv)
}

/// The ratchet: every `(file, kind)` whose current count exceeds the
/// baseline — or any unsafe in a file absent from the baseline — is a
/// violation.
pub fn ratchet(current: &Inventory, baseline: &Inventory, out: &mut Vec<Violation>) {
    for (file, counts) in current {
        let base = baseline.get(file);
        for (kind, &cur) in counts {
            let base_count = base.and_then(|b| b.get(kind)).copied().unwrap_or(0);
            if cur > base_count {
                out.push(Violation {
                    file: file.clone(),
                    line: 1,
                    rule: "unsafe-ratchet",
                    msg: format!(
                        "unsafe surface grew: {cur} `{kind}` (baseline {base_count}{}) — if \
                         deliberate, regenerate results/ANALYSIS_unsafe_audit.json with \
                         `snn-lint --write-baseline` and commit it in the same change",
                        if base.is_none() {
                            ", file not in baseline"
                        } else {
                            ""
                        },
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::SourceFile;

    fn inv_of(srcs: &[(&str, &str)]) -> Inventory {
        let files: Vec<SourceFile> = srcs.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
        inventory(&files)
    }

    #[test]
    fn classifies_kinds() {
        let inv = inv_of(&[(
            "crates/gpu-device/src/x.rs",
            "fn a(p: *mut f64) {\n  unsafe { *p = 1.0; }\n  \
             unsafe { std::mem::transmute::<u64, f64>(0) };\n  \
             unsafe { helper() };\n}\n\
             unsafe impl Send for X {}\nunsafe impl Widget for X {}\n\
             unsafe fn raw() {}\nunsafe trait Marker {}\n\
             unsafe extern \"C\" fn cb() {}\n",
        )]);
        let c = &inv["crates/gpu-device/src/x.rs"];
        assert_eq!(c.get("block_raw_deref"), Some(&1), "{c:?}");
        assert_eq!(c.get("block_transmute"), Some(&1), "{c:?}");
        assert_eq!(c.get("block_other"), Some(&1), "{c:?}");
        assert_eq!(c.get("impl_send_sync"), Some(&1), "{c:?}");
        assert_eq!(c.get("impl_trait"), Some(&1), "{c:?}");
        assert_eq!(c.get("unsafe_fn"), Some(&1), "{c:?}");
        assert_eq!(c.get("unsafe_trait"), Some(&1), "{c:?}");
        assert_eq!(c.get("ffi"), Some(&1), "{c:?}");
    }

    #[test]
    fn strings_comments_attrs_never_count() {
        let inv = inv_of(&[(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\n// unsafe { in a comment }\n\
             const S: &str = \"unsafe { in a string }\";\n",
        )]);
        assert!(inv.is_empty(), "{inv:?}");
    }

    /// The un-baselined negative fixture from ISSUE 9: an artificially
    /// added unsafe block fails the ratchet until the baseline is
    /// regenerated.
    #[test]
    fn ratchet_fails_on_growth_until_baseline_updated() {
        let before = inv_of(&[(
            "crates/gpu-device/src/x.rs",
            "fn a() {\n  // SAFETY: fine.\n  unsafe { helper() };\n}\n",
        )]);
        let after = inv_of(&[(
            "crates/gpu-device/src/x.rs",
            "fn a() {\n  // SAFETY: fine.\n  unsafe { helper() };\n  unsafe { helper2() };\n}\n",
        )]);
        let mut v = Vec::new();
        ratchet(&after, &before, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-ratchet");
        // Regenerating the baseline (= accepting `after`) clears it.
        let mut v2 = Vec::new();
        ratchet(&after, &after, &mut v2);
        assert!(v2.is_empty(), "{v2:?}");
        // Shrinking is always fine.
        let mut v3 = Vec::new();
        ratchet(&before, &after, &mut v3);
        assert!(v3.is_empty(), "{v3:?}");
    }

    #[test]
    fn unbaselined_file_fails() {
        let cur = inv_of(&[(
            "crates/snn-learning/src/new_kernel.rs",
            "fn a() { unsafe { boom() } }\n",
        )]);
        let mut v = Vec::new();
        ratchet(&cur, &Inventory::new(), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("not in baseline"), "{}", v[0].msg);
    }

    #[test]
    fn baseline_roundtrips_through_render_and_parse() {
        let inv = inv_of(&[(
            "crates/gpu-device/src/x.rs",
            "unsafe impl Send for X {}\nfn a(p: *const u8) { unsafe { p.add(1); } }\n",
        )]);
        let text = render_baseline(&inv);
        let back = parse_baseline(&text).expect("parse back");
        assert_eq!(inv, back, "render/parse must round-trip\n{text}");
        assert!(
            text.contains("--write-baseline"),
            "update workflow documented in header"
        );
    }
}
