//! `snn-lint` — the workspace dataflow analyzer of the ParallelSpikeSim
//! reproduction (DESIGN.md §10 prong 3, §15).
//!
//! `rustc` and clippy check language-level properties; this crate checks
//! the *project*-level invariants that keep the unsafe concurrency core
//! and the determinism contract honest. It is deliberately
//! dependency-free so it runs in any environment that has `rustc`.
//!
//! The analysis core is a lossless Rust tokenizer ([`lex`]) and an item
//! extractor + conservative call graph ([`model`]). On top of it run
//! three whole-workspace analyses and eight token-level rules:
//!
//! | rule | property | engine |
//! |------|----------|--------|
//! | `determinism-taint` | no RNG/wall-clock sink is transitively callable from a kernel/step entry point (`*Engine::step*`/`advance*`/`present*`, `commit_*`, `present_*`) — alias-resolved, zero hand-listed paths | call graph ([`taint`]) |
//! | `atomic-protocol` | each `COMMIT_*` ordering constant is used only in its documented operation kind per DESIGN.md §14.2 | token frames ([`atomics`]) |
//! | `unsafe-ratchet` | the classified unsafe surface (transmute / raw-deref / `unsafe impl Send/Sync` / FFI / …) never grows past `results/ANALYSIS_unsafe_audit.json` without a baseline update | classifier ([`unsafe_audit`]) |
//! | `safety-comment` | every `unsafe` block / `unsafe impl` carries a `// SAFETY:` comment | line views ([`rules`]) |
//! | `unsafe-surface` | `unsafe` appears only in the audited allow-list of files; leaf crates carry `#![forbid(unsafe_code)]`, unsafe crates `#![deny(unsafe_op_in_unsafe_fn)]` | line views |
//! | `transposed-coherence` | every function that mutates row-major conductances also refreshes the transposed mirror | line views |
//! | `hash-iteration` | hot-path modules never *iterate* a `HashMap`/`HashSet` | line views |
//! | `sync-shim` | model-checked crates reach sync primitives only through `src/sync.rs` | line views |
//! | `trace-schema` | every literal telemetry name is documented in DESIGN.md §11–§14 | line views |
//! | `lane-width` | SWAR kernels carry no literal shifts/hex masks | line views |
//! | `atomic-ordering` | no raw `Ordering::` literals in the commit kernel | line views |
//!
//! A violation can be waived in place with a comment
//! `lint-allow: <rule-name> — <reason>` on the line or the line above
//! (function-head placement for `determinism-taint`); waivers are
//! surfaced in `--report` and as SARIF `note` results — string literals
//! that merely *contain* the tag are never honored, because waiver
//! lookup reads the comment projection of the token stream.
//!
//! Output modes: human text (default), `--report` (JSON inventory),
//! `--sarif <path|->` (SARIF 2.1.0), `--write-baseline` (regenerate the
//! unsafe ratchet baseline).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

pub mod atomics;
pub mod json;
pub mod lex;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod unsafe_audit;

use lex::SourceFile;

/// One finding: file, 1-based line, rule id and message.
#[derive(Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

/// One surfaced `lint-allow:` waiver.
#[derive(Debug)]
pub struct Waiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number of the waiver comment.
    pub line: usize,
    /// The rule the waiver names.
    pub rule: String,
    /// The full waiver text (rule + reason).
    pub text: String,
}

/// Every rule id with a one-line description (drives SARIF
/// `reportingDescriptor`s and waiver validation).
pub const RULES: &[(&str, &str)] = &[
    (
        "determinism-taint",
        "No RNG or wall-clock sink is transitively callable from a kernel/step entry point \
         (call-graph reachability after use-alias resolution)",
    ),
    (
        "atomic-protocol",
        "Each COMMIT_* ordering constant is used only in its documented operation kind \
         (DESIGN.md 14.2)",
    ),
    (
        "unsafe-ratchet",
        "The classified unsafe surface never grows past the committed baseline \
         results/ANALYSIS_unsafe_audit.json",
    ),
    (
        "safety-comment",
        "Every unsafe block / unsafe impl carries a SAFETY comment",
    ),
    (
        "unsafe-surface",
        "unsafe appears only in the audited allow-list; leaf crates forbid unsafe_code",
    ),
    (
        "transposed-coherence",
        "Functions mutating row-major conductances also refresh the transposed mirror",
    ),
    (
        "hash-iteration",
        "Hot-path modules never iterate a HashMap/HashSet",
    ),
    (
        "sync-shim",
        "Model-checked crates reach sync primitives only through src/sync.rs",
    ),
    (
        "trace-schema",
        "Every literal telemetry name is documented in DESIGN.md 11-14",
    ),
    (
        "lane-width",
        "SWAR kernels carry no literal shift amounts or hex masks",
    ),
    (
        "atomic-ordering",
        "No raw Ordering:: literals in the commit kernel",
    ),
];

/// A `lint-allow: <rule>` waiver comment on this line or the line above.
pub fn waived(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let tag = format!("lint-allow: {rule}");
    file.lines[idx].comment.contains(&tag)
        || (idx > 0 && file.lines[idx - 1].comment.contains(&tag))
}

/// Collects every waiver comment naming a real rule. A `lint-allow:`
/// whose first token is not a rule id is prose *about* the mechanism
/// (docs, examples), not a waiver, and is excluded.
pub fn collect_waivers(files: &[SourceFile]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for f in files {
        for (i, l) in f.lines.iter().enumerate() {
            if let Some(pos) = l.comment.find("lint-allow:") {
                let rest = l.comment[pos + "lint-allow:".len()..].trim();
                let named_rule = rest.split_whitespace().next().unwrap_or("");
                if RULES.iter().any(|(r, _)| *r == named_rule) {
                    out.push(Waiver {
                        file: f.rel.clone(),
                        line: i + 1,
                        rule: named_rule.to_string(),
                        text: rest.to_string(),
                    });
                }
            }
        }
    }
    out
}

/// The loaded workspace: parsed sources plus the DESIGN.md text and the
/// committed unsafe baseline (when present).
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Parsed `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// DESIGN.md contents (empty when absent).
    pub design: String,
    /// Raw text of `results/ANALYSIS_unsafe_audit.json`, when present.
    pub baseline: Option<String>,
}

/// Workspace-relative path of the unsafe ratchet baseline.
pub const BASELINE_PATH: &str = "results/ANALYSIS_unsafe_audit.json";

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = fs::read_dir(&dir) else { continue };
        for entry in rd.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Loads and parses every workspace `.rs` file plus DESIGN.md and the
/// unsafe baseline.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} is not a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for path in collect_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push(SourceFile::parse(&rel, &text));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let baseline = fs::read_to_string(root.join(BASELINE_PATH)).ok();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        design,
        baseline,
    })
}

/// Runs every rule and analysis over a loaded workspace; returns sorted
/// violations and the surfaced waivers.
pub fn run_all(ws: &Workspace) -> (Vec<Violation>, Vec<Waiver>) {
    let mut out = Vec::new();
    let schema = rules::design_schema_names(&ws.design);
    rules::run(&ws.files, schema.as_deref(), &mut out);
    let m = model::Model::build(&ws.files);
    taint::run(&ws.files, &m, &mut out);
    atomics::run(&ws.files, &mut out);
    let inv = unsafe_audit::inventory(&ws.files);
    match &ws.baseline {
        Some(text) => match unsafe_audit::parse_baseline(text) {
            Ok(base) => unsafe_audit::ratchet(&inv, &base, &mut out),
            Err(e) => out.push(Violation {
                file: BASELINE_PATH.into(),
                line: 1,
                rule: "unsafe-ratchet",
                msg: e,
            }),
        },
        None => out.push(Violation {
            file: BASELINE_PATH.into(),
            line: 1,
            rule: "unsafe-ratchet",
            msg: "baseline missing — generate it with `snn-lint --write-baseline`".into(),
        }),
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (out, collect_waivers(&ws.files))
}

/// `--report`: the classified unsafe inventory plus all waivers, as JSON.
pub fn report(files: &[SourceFile]) -> String {
    let inv = unsafe_audit::inventory(files);
    let waivers = collect_waivers(files);
    let mut s = String::from("{\n  \"generated_by\": \"snn-lint --report\",\n  \"files\": {\n");
    for (n, (file, counts)) in inv.iter().enumerate() {
        let _ = write!(s, "    \"{}\": {{", json::esc(file));
        for (m, (k, c)) in counts.iter().enumerate() {
            let _ = write!(
                s,
                "\"{k}\": {c}{}",
                if m + 1 < counts.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(s, "}}{}", if n + 1 < inv.len() { "," } else { "" });
    }
    s.push_str("  },\n  \"waivers\": [\n");
    for (n, w) in waivers.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"waiver\": \"{}\"}}{}",
            json::esc(&w.file),
            w.line,
            json::esc(&w.rule),
            json::esc(&w.text),
            if n + 1 < waivers.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_collection_names_real_rules_only() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// lint-allow: determinism-taint — profiler only\nfn a() {}\n\
             // lint-allow: not-a-rule whatever\nfn b() {}\n",
        );
        let w = collect_waivers(&[f]);
        assert_eq!(w.len(), 1, "{w:?}");
        assert_eq!(w[0].rule, "determinism-taint");
        assert_eq!(w[0].line, 1);
    }

    #[test]
    fn report_is_valid_json_with_waivers() {
        let f = SourceFile::parse(
            "crates/gpu-device/src/x.rs",
            "// SAFETY: ok. lint-allow: unsafe-surface — fixture\nunsafe impl Send for X {}\n",
        );
        let doc = report(&[f]);
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("report JSON: {e}\n{doc}"));
        assert!(v.get("files").is_some());
        assert_eq!(
            v.get("waivers").and_then(|w| w.as_arr()).map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn rules_table_covers_all_rule_names() {
        for name in [
            "determinism-taint",
            "atomic-protocol",
            "unsafe-ratchet",
            "safety-comment",
            "unsafe-surface",
            "transposed-coherence",
            "hash-iteration",
            "sync-shim",
            "trace-schema",
            "lane-width",
            "atomic-ordering",
        ] {
            assert!(RULES.iter().any(|(r, _)| *r == name), "missing {name}");
        }
        assert_eq!(RULES.len(), 11);
    }
}
