//! Minimal dependency-free JSON: a value parser (for the unsafe-ratchet
//! baseline and the SARIF shape test) and a string escaper (for every
//! emitter). Not a general-purpose library — just enough of RFC 8259 for
//! the documents this tool reads and writes.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects keep sorted key order (`BTreeMap`) so
/// re-serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
    /// Element lookup on an array.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(v) => v.get(i),
            _ => None,
        }
    }
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The numeric payload as `i64`, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n as i64),
            _ => None,
        }
    }
    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a JSON document. Returns `Err` with a byte offset on malformed
/// input.
pub fn parse(src: &str) -> Result<Value, String> {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let v = parse_value(&b, &mut i)?;
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing characters at {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], i: &mut usize) {
    while *i < b.len() && b[*i].is_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[char], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some('{') => {
            *i += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let k = match parse_value(b, i)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key must be a string at {i}")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                let v = parse_value(b, i)?;
                m.insert(k, v);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {i}")),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut v = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Value::Arr(v));
            }
            loop {
                v.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Value::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at {i}")),
                }
            }
        }
        Some('"') => {
            *i += 1;
            let mut s = String::new();
            while *i < b.len() {
                match b[*i] {
                    '"' => {
                        *i += 1;
                        return Ok(Value::Str(s));
                    }
                    '\\' => {
                        *i += 1;
                        match b.get(*i) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                let hex: String = b[*i + 1..(*i + 5).min(b.len())].iter().collect();
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape at {i}: {e}"))?;
                                s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                *i += 4;
                            }
                            Some(&c) => s.push(c),
                            None => return Err("unterminated escape".into()),
                        }
                        *i += 1;
                    }
                    c => {
                        s.push(c);
                        *i += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *i;
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | 'e' | 'E' | '+' | '-'))
            {
                *i += 1;
            }
            let s: String = b[start..*i].iter().collect();
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number at {start}: {e}"))
        }
        Some('t') if b[*i..].starts_with(&['t', 'r', 'u', 'e']) => {
            *i += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if b[*i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *i += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if b[*i..].starts_with(&['n', 'u', 'l', 'l']) => {
            *i += 4;
            Ok(Value::Null)
        }
        _ => Err(format!("unexpected character at {i}")),
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not added).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.idx(1)), Some(&Value::Num(2.5)));
        assert_eq!(
            v.get("a").and_then(|a| a.idx(2)).and_then(|s| s.as_str()),
            Some("x\n")
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|n| n.as_i64()),
            Some(-3)
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "a\"b\\c\nd\te";
        let doc = format!("\"{}\"", esc(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
