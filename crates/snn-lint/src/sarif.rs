//! SARIF 2.1.0 emission (`--sarif`): one run, one driver (`snn-lint`),
//! one `reportingDescriptor` per rule, one `result` per violation, and
//! one `level: note` result per surfaced waiver — so CI can upload the
//! log as an artifact and code-scanning UIs can annotate PRs.

use crate::json::esc;
use crate::{Violation, Waiver, RULES};
use std::fmt::Write as _;

/// Renders violations + waivers as a SARIF 2.1.0 document.
pub fn render(violations: &[Violation], waivers: &[Waiver]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"snn-lint\",\n          \
         \"informationUri\": \"https://example.invalid/snn-lint\",\n          \"rules\": [\n",
    );
    for (n, (name, desc)) in RULES.iter().enumerate() {
        let _ = writeln!(
            s,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            esc(name),
            esc(desc),
            if n + 1 < RULES.len() { "," } else { "" },
        );
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    let total = violations.len() + waivers.len();
    let mut n = 0usize;
    for v in violations {
        n += 1;
        let _ = writeln!(
            s,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}",
            esc(v.rule),
            esc(&v.msg),
            esc(&v.file),
            v.line.max(1),
            if n < total { "," } else { "" },
        );
    }
    for w in waivers {
        n += 1;
        let _ = writeln!(
            s,
            "        {{\"ruleId\": \"{}\", \"level\": \"note\", \"message\": {{\"text\": \
             \"waiver: {}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}",
            esc(&w.rule),
            esc(&w.text),
            esc(&w.file),
            w.line.max(1),
            if n < total { "," } else { "" },
        );
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample() -> String {
        render(
            &[
                Violation {
                    file: "crates/x/src/lib.rs".into(),
                    line: 3,
                    rule: "determinism-taint",
                    msg: "entry `step` reaches `Instant::now` — \"quoted\"".into(),
                },
                Violation {
                    file: "crates/y/src/lib.rs".into(),
                    line: 9,
                    rule: "unsafe-ratchet",
                    msg: "surface grew".into(),
                },
            ],
            &[Waiver {
                file: "crates/gpu-device/src/device.rs".into(),
                line: 733,
                rule: "determinism-taint".into(),
                text: "determinism-taint — profiler wall-clock never feeds kernels".into(),
            }],
        )
    }

    /// The SARIF 2.1.0 shape test from ISSUE 9: the emitted document must
    /// parse as JSON and expose the spec-required structure.
    #[test]
    fn sarif_shape_is_valid() {
        let doc = sample();
        let v = parse(&doc).unwrap_or_else(|e| panic!("SARIF must be valid JSON: {e}\n{doc}"));
        assert_eq!(
            v.get("$schema").and_then(Value::as_str),
            Some("https://json.schemastore.org/sarif-2.1.0.json")
        );
        assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = v.get("runs").and_then(|r| r.idx(0)).expect("one run");
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("snn-lint"));
        let rules = driver
            .get("rules")
            .and_then(Value::as_arr)
            .expect("rules array");
        assert!(!rules.is_empty());
        for r in rules {
            assert!(r.get("id").and_then(Value::as_str).is_some(), "rule id");
            assert!(
                r.get("shortDescription")
                    .and_then(|d| d.get("text"))
                    .is_some(),
                "rule shortDescription.text"
            );
        }
        let results = run
            .get("results")
            .and_then(Value::as_arr)
            .expect("results array");
        assert_eq!(results.len(), 3, "two errors + one waiver note");
        for r in results {
            let rule_id = r.get("ruleId").and_then(Value::as_str).expect("ruleId");
            assert!(
                rules
                    .iter()
                    .any(|ru| ru.get("id").and_then(Value::as_str) == Some(rule_id)),
                "every result ruleId is declared by the driver: {rule_id}"
            );
            assert!(matches!(
                r.get("level").and_then(Value::as_str),
                Some("error" | "note")
            ));
            assert!(r.get("message").and_then(|m| m.get("text")).is_some());
            let loc = r
                .get("locations")
                .and_then(|l| l.idx(0))
                .and_then(|l| l.get("physicalLocation"))
                .expect("physicalLocation");
            assert!(
                loc.get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .is_some(),
                "artifactLocation.uri"
            );
            let line = loc
                .get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_i64)
                .expect("region.startLine");
            assert!(line >= 1, "startLine is 1-based");
        }
    }

    #[test]
    fn empty_input_is_still_valid() {
        let doc = render(&[], &[]);
        let v = parse(&doc).expect("valid JSON");
        let results = v
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(Value::as_arr)
            .expect("results");
        assert!(results.is_empty());
    }
}
